#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <iostream>
#include <map>
#include <mutex>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_id.h"

namespace tradefl {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<bool> g_timestamps{false};
std::atomic<bool> g_thread_ids{false};
std::mutex g_sink_mutex;

/// Epoch for the "[+1.234s]" prefix: started on the first log call.
const Stopwatch& log_epoch() {
  static const Stopwatch epoch;
  return epoch;
}
std::function<void(LogLevel, const std::string&)>& sink_ref() {
  static std::function<void(LogLevel, const std::string&)> sink;
  return sink;
}

void default_sink(LogLevel level, const std::string& message) {
  std::cerr << "[" << log_level_name(level) << "] " << message << "\n";
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_timestamps(bool on) { g_timestamps.store(on, std::memory_order_relaxed); }
bool log_timestamps() { return g_timestamps.load(std::memory_order_relaxed); }

void set_log_thread_ids(bool on) { g_thread_ids.store(on, std::memory_order_relaxed); }
bool log_thread_ids() { return g_thread_ids.load(std::memory_order_relaxed); }

void set_log_sink(std::function<void(LogLevel, const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  sink_ref() = std::move(sink);
}

void reset_log_sink() {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  sink_ref() = nullptr;
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::string line;
  if (log_timestamps()) {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "[+%.3fs] ", log_epoch().elapsed_seconds());
    line += stamp;
  }
  if (log_thread_ids()) {
    line += "[t" + std::to_string(thread_index()) + "] ";
  }
  line += message;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (sink_ref()) {
    sink_ref()(level, line);
  } else {
    default_sink(level, line);
  }
}

namespace detail {

bool log_every_n_site(const char* file, int line, std::uint64_t n) {
  // Keyed by the __FILE__ pointer (stable per call site) + line.
  static std::mutex mutex;
  static std::map<std::pair<const void*, int>, std::uint64_t> counts;
  std::lock_guard<std::mutex> lock(mutex);
  const std::uint64_t occurrence = counts[{static_cast<const void*>(file), line}]++;
  return n <= 1 || occurrence % n == 0;
}

}  // namespace detail

}  // namespace tradefl
