#include "common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace tradefl {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;
std::function<void(LogLevel, const std::string&)>& sink_ref() {
  static std::function<void(LogLevel, const std::string&)> sink;
  return sink;
}

void default_sink(LogLevel level, const std::string& message) {
  std::cerr << "[" << log_level_name(level) << "] " << message << "\n";
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_sink(std::function<void(LogLevel, const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  sink_ref() = std::move(sink);
}

void reset_log_sink() {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  sink_ref() = nullptr;
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (sink_ref()) {
    sink_ref()(level, message);
  } else {
    default_sink(level, message);
  }
}

}  // namespace tradefl
