#include "common/faults.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/string_util.h"

namespace tradefl {
namespace {

/// Depth of nested CrashContainmentScopes on this thread (server workers).
thread_local int t_crash_containment_depth = 0;

/// Stream seed for one (kind, round, target) cell. Chained derivations keep
/// each coordinate independent: changing the round of a query can never
/// collide with changing its target.
std::uint64_t cell_seed(std::uint64_t base, FaultKind kind, std::uint64_t round,
                        std::uint64_t target) {
  std::uint64_t seed = Rng::derive_stream_seed(base, static_cast<std::uint64_t>(kind));
  seed = Rng::derive_stream_seed(seed, round);
  return Rng::derive_stream_seed(seed, target);
}

void append_rate(std::ostringstream& out, const char* key, double rate) {
  if (rate > 0.0) out << (out.tellp() > 0 ? "," : "") << key << ":" << rate;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kClientDropout: return "dropout";
    case FaultKind::kStragglerDelay: return "straggler";
    case FaultKind::kUpdateCorruption: return "corruption";
    case FaultKind::kTxRevert: return "revert";
    case FaultKind::kTxGasExhaustion: return "gas_exhaustion";
    case FaultKind::kTxSubmitFailure: return "submit_failure";
    case FaultKind::kSolverPerturbation: return "solver_perturbation";
    case FaultKind::kProcessCrash: return "crash";
    case FaultKind::kPhaseHang: return "hang";
    case FaultKind::kSignFlip: return "signflip";
    case FaultKind::kScaleAttack: return "scale_attack";
    case FaultKind::kFreeRide: return "freeride";
    case FaultKind::kCollude: return "collude";
  }
  return "unknown";
}

bool FaultPlan::empty() const {
  return dropout_rate <= 0.0 && straggler_rate <= 0.0 && corrupt_rate <= 0.0 &&
         revert_rate <= 0.0 && gas_exhaustion_rate <= 0.0 && submit_failure_rate <= 0.0 &&
         solver_perturb_rate <= 0.0 && collude_silos == 0 && signflip_silos == 0 &&
         scale_silos == 0 && freeride_silos == 0 && events.empty();
}

bool FaultPlan::has_attacks() const {
  if (collude_silos > 0 || signflip_silos > 0 || scale_silos > 0 || freeride_silos > 0) {
    return true;
  }
  for (const FaultEvent& event : events) {
    switch (event.kind) {
      case FaultKind::kSignFlip:
      case FaultKind::kScaleAttack:
      case FaultKind::kFreeRide:
      case FaultKind::kCollude:
        return true;
      default:
        break;
    }
  }
  return false;
}

std::string FaultPlan::spec_string(bool include_crashes) const {
  // %.17g survives a stod round-trip for every double, so a plan parsed from
  // this spec decides bit-identically to the original.
  const auto number = [](double value) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return std::string(buffer);
  };
  std::ostringstream out;
  const auto emit = [&out](const std::string& key, const std::string& value) {
    out << (out.tellp() > 0 ? "," : "") << key << ":" << value;
  };
  emit("seed", std::to_string(seed));
  if (dropout_rate > 0.0) emit("drop", number(dropout_rate));
  if (straggler_rate > 0.0) emit("straggle", number(straggler_rate));
  if (straggler_scale != 3.0) emit("scale", number(straggler_scale));
  if (corrupt_rate > 0.0) emit("corrupt", number(corrupt_rate));
  if (corrupt_noise > 0.0) emit("noise", number(corrupt_noise));
  if (revert_rate > 0.0) emit("revert", number(revert_rate));
  if (gas_exhaustion_rate > 0.0) emit("gas", number(gas_exhaustion_rate));
  if (submit_failure_rate > 0.0) emit("submit", number(submit_failure_rate));
  if (solver_perturb_rate > 0.0) emit("solver", number(solver_perturb_rate));
  if (collude_silos > 0) emit("collude", std::to_string(collude_silos));
  if (collude_shift != 4.0) emit("colludex", number(collude_shift));
  if (signflip_silos > 0) emit("signflip", std::to_string(signflip_silos));
  if (scale_silos > 0) emit("amplify", std::to_string(scale_silos));
  if (scale_factor != 8.0) emit("amplifyx", number(scale_factor));
  if (freeride_silos > 0) emit("freeride", std::to_string(freeride_silos));
  for (const FaultEvent& event : events) {
    if (event.kind == FaultKind::kProcessCrash && include_crashes) {
      emit("crash", std::to_string(event.round));
    } else if (event.kind == FaultKind::kPhaseHang) {
      emit("hang", std::to_string(event.round));
    }
    // Other event kinds have no spec syntax (see header); they only arise in
    // programmatic plans that never pass through the registry.
  }
  return out.str();
}

std::string FaultPlan::summary() const {
  std::ostringstream out;
  append_rate(out, "drop", dropout_rate);
  append_rate(out, "straggle", straggler_rate);
  append_rate(out, "corrupt", corrupt_rate);
  append_rate(out, "revert", revert_rate);
  append_rate(out, "gas", gas_exhaustion_rate);
  append_rate(out, "submit", submit_failure_rate);
  append_rate(out, "solver", solver_perturb_rate);
  const auto append_count = [&out](const char* key, std::uint64_t count) {
    if (count > 0) out << (out.tellp() > 0 ? "," : "") << key << ":" << count;
  };
  append_count("collude", collude_silos);
  append_count("signflip", signflip_silos);
  append_count("amplify", scale_silos);
  append_count("freeride", freeride_silos);
  if (!events.empty()) out << (out.tellp() > 0 ? "," : "") << "events:" << events.size();
  if (out.tellp() == 0) return "none";
  out << ",seed:" << seed;
  return out.str();
}

const char kFaultGrammar[] =
    "faults=<key>:<value>[,<key>:<value>...] where <key>:<value> is one of "
    "seed:<u64> | drop:<rate> | straggle:<rate> | scale:<mult>=1> | corrupt:<rate> | "
    "noise:<stddev> | revert:<rate> | gas:<rate> | submit:<rate> | solver:<rate> | "
    "crash:<point> | hang:<point> | signflip:<silos> | amplify:<silos> | amplifyx:<factor> | "
    "freeride:<silos> | collude:<silos> | colludex:<stddev> (rates in [0, 1]; points and "
    "silo counts are non-negative integers)";

namespace {

/// Every parse error carries the token that triggered it plus the full
/// grammar, so a CLI typo is diagnosable from the message alone.
Error fault_error(const std::string& what, const std::string& token) {
  return Error{"faults", what + " in token '" + token + "'; accepted grammar: " + kFaultGrammar};
}

}  // namespace

Result<FaultPlan> parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  if (trim(spec).empty()) return plan;
  for (const std::string& raw : split(spec, ',')) {
    const std::string pair = trim(raw);
    if (pair.empty()) continue;
    const std::size_t colon = pair.find(':');
    if (colon == std::string::npos) {
      return fault_error("expected key:value", pair);
    }
    const std::string key = trim(pair.substr(0, colon));
    const std::string value = trim(pair.substr(colon + 1));
    double parsed = 0.0;
    try {
      std::size_t used = 0;
      parsed = std::stod(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
    } catch (const std::exception&) {
      return fault_error("cannot parse value '" + value + "' for key '" + key + "'", pair);
    }
    const bool is_rate = key == "drop" || key == "straggle" || key == "corrupt" ||
                         key == "revert" || key == "gas" || key == "submit" || key == "solver";
    if (is_rate && (parsed < 0.0 || parsed > 1.0)) {
      return fault_error("rate '" + key + "' must be in [0, 1], got " + value, pair);
    }
    const bool is_count = key == "crash" || key == "hang" || key == "signflip" ||
                          key == "amplify" || key == "freeride" || key == "collude";
    if (is_count &&
        (parsed < 0.0 || parsed != static_cast<double>(static_cast<std::uint64_t>(parsed)))) {
      return fault_error("'" + key + "' must be a non-negative integer, got " + value, pair);
    }
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parsed);
    } else if (key == "drop") {
      plan.dropout_rate = parsed;
    } else if (key == "straggle") {
      plan.straggler_rate = parsed;
    } else if (key == "scale") {
      if (parsed < 1.0) return fault_error("scale must be >= 1, got " + value, pair);
      plan.straggler_scale = parsed;
    } else if (key == "corrupt") {
      plan.corrupt_rate = parsed;
    } else if (key == "noise") {
      if (parsed < 0.0) return fault_error("noise must be >= 0, got " + value, pair);
      plan.corrupt_noise = parsed;
    } else if (key == "revert") {
      plan.revert_rate = parsed;
    } else if (key == "gas") {
      plan.gas_exhaustion_rate = parsed;
    } else if (key == "submit") {
      plan.submit_failure_rate = parsed;
    } else if (key == "solver") {
      plan.solver_perturb_rate = parsed;
    } else if (key == "signflip") {
      plan.signflip_silos = static_cast<std::uint64_t>(parsed);
    } else if (key == "amplify") {
      plan.scale_silos = static_cast<std::uint64_t>(parsed);
    } else if (key == "amplifyx") {
      if (parsed <= 0.0) return fault_error("amplifyx must be > 0, got " + value, pair);
      plan.scale_factor = parsed;
    } else if (key == "freeride") {
      plan.freeride_silos = static_cast<std::uint64_t>(parsed);
    } else if (key == "collude") {
      plan.collude_silos = static_cast<std::uint64_t>(parsed);
    } else if (key == "colludex") {
      if (parsed <= 0.0) return fault_error("colludex must be > 0, got " + value, pair);
      plan.collude_shift = parsed;
    } else if (key == "crash" || key == "hang") {
      plan.events.push_back({key == "crash" ? FaultKind::kProcessCrash : FaultKind::kPhaseHang,
                             static_cast<std::uint64_t>(parsed), kAnyFaultTarget, 0.0});
    } else {
      return fault_error("unknown fault key '" + key + "'", pair);
    }
  }
  return plan;
}

const FaultEvent* FaultInjector::find_event(FaultKind kind, std::uint64_t round,
                                            std::uint64_t target) const {
  for (const FaultEvent& event : plan_.events) {
    if (event.kind != kind || event.round != round) continue;
    if (event.target == kAnyFaultTarget || event.target == target) return &event;
  }
  return nullptr;
}

bool FaultInjector::decide(FaultKind kind, std::uint64_t round, std::uint64_t target,
                           double rate) const {
  if (find_event(kind, round, target) != nullptr) return true;
  if (rate <= 0.0) return false;
  Rng rng(cell_seed(plan_.seed, kind, round, target));
  return rng.bernoulli(rate);
}

bool FaultInjector::drop_client(std::uint64_t round, std::uint64_t client) const {
  return decide(FaultKind::kClientDropout, round, client, plan_.dropout_rate);
}

double FaultInjector::straggler_scale(std::uint64_t round, std::uint64_t client) const {
  const FaultEvent* event = find_event(FaultKind::kStragglerDelay, round, client);
  if (event != nullptr) {
    return event->magnitude > 0.0 ? event->magnitude : plan_.straggler_scale;
  }
  if (plan_.straggler_rate <= 0.0) return 1.0;
  Rng rng(cell_seed(plan_.seed, FaultKind::kStragglerDelay, round, client));
  return rng.bernoulli(plan_.straggler_rate) ? plan_.straggler_scale : 1.0;
}

CorruptionSpec FaultInjector::corrupt_update(std::uint64_t round, std::uint64_t client) const {
  CorruptionSpec spec;
  const FaultEvent* event = find_event(FaultKind::kUpdateCorruption, round, client);
  double stddev = plan_.corrupt_noise;
  if (event != nullptr) {
    spec.corrupt = true;
    if (event->magnitude > 0.0) stddev = event->magnitude;
  } else if (plan_.corrupt_rate > 0.0) {
    Rng rng(cell_seed(plan_.seed, FaultKind::kUpdateCorruption, round, client));
    spec.corrupt = rng.bernoulli(plan_.corrupt_rate);
  }
  if (spec.corrupt && stddev > 0.0) {
    spec.use_nan = false;
    spec.noise_stddev = stddev;
  }
  return spec;
}

Rng FaultInjector::corruption_rng(std::uint64_t round, std::uint64_t client) const {
  // Offset the kind so the noise stream never reuses the decision stream.
  return Rng(cell_seed(plan_.seed ^ 0xC0FFEEULL, FaultKind::kUpdateCorruption, round, client));
}

AttackSpec FaultInjector::attack_update(std::uint64_t round, std::uint64_t client) const {
  AttackSpec spec;
  const struct {
    FaultKind kind;
    std::uint64_t silos;
    double magnitude;
  } attacks[] = {
      // Colluders take the lowest indices so `collude:k` always yields k silos
      // with a shared identity block; the other attacks stack after them.
      {FaultKind::kCollude, plan_.collude_silos, plan_.collude_shift},
      {FaultKind::kSignFlip, plan_.signflip_silos, 1.0},
      {FaultKind::kScaleAttack, plan_.scale_silos, plan_.scale_factor},
      {FaultKind::kFreeRide, plan_.freeride_silos, 0.0},
  };
  // Explicit events override block membership (and may carry a magnitude).
  for (const auto& attack : attacks) {
    const FaultEvent* event = find_event(attack.kind, round, client);
    if (event == nullptr) continue;
    spec.attack = true;
    spec.kind = attack.kind;
    spec.magnitude = event->magnitude > 0.0 ? event->magnitude : attack.magnitude;
    return spec;
  }
  std::uint64_t begin = 0;
  for (const auto& attack : attacks) {
    if (client >= begin && client < begin + attack.silos) {
      spec.attack = true;
      spec.kind = attack.kind;
      spec.magnitude = attack.magnitude;
      return spec;
    }
    begin += attack.silos;
  }
  return spec;
}

Rng FaultInjector::collusion_rng(std::uint64_t round) const {
  // Keyed by round only (target 0): every colluder draws the same stream and
  // submits the identical crafted update. XOR-offset so it can never collide
  // with the collusion decision stream.
  return Rng(cell_seed(plan_.seed ^ 0x5EEDBADULL, FaultKind::kCollude, round, 0));
}

bool FaultInjector::fail_submission(std::uint64_t call_index) const {
  return decide(FaultKind::kTxSubmitFailure, call_index, 0, plan_.submit_failure_rate);
}

bool FaultInjector::exhaust_gas(std::uint64_t call_index) const {
  return decide(FaultKind::kTxGasExhaustion, call_index, 0, plan_.gas_exhaustion_rate);
}

bool FaultInjector::revert_call(std::uint64_t call_index) const {
  return decide(FaultKind::kTxRevert, call_index, 0, plan_.revert_rate);
}

bool FaultInjector::perturb_solver(std::uint64_t iteration) const {
  return decide(FaultKind::kSolverPerturbation, iteration, 0, plan_.solver_perturb_rate);
}

bool FaultInjector::crash_now(std::uint64_t point) const {
  return find_event(FaultKind::kProcessCrash, point, 0) != nullptr;
}

bool FaultInjector::hang_now(std::uint64_t point) const {
  return find_event(FaultKind::kPhaseHang, point, 0) != nullptr;
}

CrashContainmentScope::CrashContainmentScope() { ++t_crash_containment_depth; }

CrashContainmentScope::~CrashContainmentScope() { --t_crash_containment_depth; }

bool CrashContainmentScope::active() { return t_crash_containment_depth > 0; }

void check_cancelled(const std::atomic<bool>* cancel) {
  if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
    throw OperationCancelled{};
  }
}

void crash_if_scheduled(const FaultInjector* injector, std::uint64_t point) {
  if (injector == nullptr || !injector->enabled() || !injector->crash_now(point)) return;
  if (CrashContainmentScope::active()) {
    // The server contains the blast radius to the offending session: the
    // throw unwinds the session worker, the daemon stays up, and the
    // already-durable checkpoint is what a re-attach resumes from — the same
    // state a real _Exit would have left behind.
    throw InjectedCrash(point);
  }
  // _Exit skips destructors and atexit handlers: from the snapshot layer's
  // point of view this is indistinguishable from SIGKILL, which is the
  // contract the kill-and-resume suite verifies.
  std::fprintf(stderr, "[faults] injected crash at point %llu\n",
               static_cast<unsigned long long>(point));
  std::_Exit(kCrashExitCode);
}

void hang_if_scheduled(const FaultInjector* injector, std::uint64_t point,
                       const std::atomic<bool>* cancel) {
  if (injector == nullptr || !injector->enabled() || !injector->hang_now(point)) return;
  if (cancel == nullptr) return;  // unsupervised runs have nobody to un-wedge a hang
  while (!cancel->load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  throw OperationCancelled{};
}

}  // namespace tradefl
