// Undo journal for map-like containers: the O(touched) alternative to
// copying a whole map for transactional rollback. A scope notes each key
// once before (or at) its first mutation; revert() then restores exactly the
// noted keys — overwriting mutated entries and erasing entries the scope
// created — leaving the container byte-for-byte as if the scope never ran.
// Dropping the journal (or clear()) commits.
//
// Lives in common/ so chain/ and any future transactional subsystem share
// one audited implementation; like the rest of this layer it emits no
// metrics itself.
#pragma once

#include <cstddef>
#include <vector>

namespace tradefl {

/// Works with std::map / std::unordered_map-style containers exposing
/// key_type, mapped_type, find(), operator[], and erase(key).
///
/// note() deduplicates by linear scan over the touched set — a transaction
/// touches a handful of keys (a transfer touches two balances), so the scan
/// is cheaper than any auxiliary index it would need to stay O(1).
template <typename Map>
class MapUndoJournal {
 public:
  using Key = typename Map::key_type;
  using Value = typename Map::mapped_type;

  /// Records the pre-mutation state of `key`. Must run before the first
  /// mutation of that key in this scope (including the entry-creating
  /// `map[key]`); later notes of the same key are no-ops.
  void note(const Map& map, const Key& key) {
    for (const Entry& entry : entries_) {
      if (entry.key == key) return;
    }
    const auto it = map.find(key);
    if (it == map.end()) {
      entries_.push_back(Entry{key, false, Value{}});
    } else {
      entries_.push_back(Entry{key, true, it->second});
    }
  }

  /// Rolls the noted keys back: entries that existed get their recorded
  /// value, entries the scope created are erased. Leaves the journal empty
  /// (ready for the next scope).
  void revert(Map& map) {
    for (const Entry& entry : entries_) {
      if (entry.existed) {
        map[entry.key] = entry.value;
      } else {
        map.erase(entry.key);
      }
    }
    entries_.clear();
  }

  /// Commits the scope: forgets the recorded undo state.
  void clear() { entries_.clear(); }

  [[nodiscard]] std::size_t touched() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    Key key{};
    bool existed = false;
    Value value{};
  };
  std::vector<Entry> entries_;
};

}  // namespace tradefl
