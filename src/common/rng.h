// Deterministic pseudo-random number generation for reproducible experiments.
// Implements xoshiro256** (public-domain algorithm by Blackman & Vigna) plus
// the distribution helpers the experiment configs need. All simulations in
// this repo are seeded, so every figure regenerates bit-identically.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace tradefl {

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions as well, though we mostly use the
/// built-in helpers for exact cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  std::uint64_t next_u64();
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (deterministic, no <random> state).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Normal truncated to [lo, hi] by rejection (falls back to clamping after
  /// 64 rejected draws to stay total).
  double truncated_normal(double mean, double stddev, double lo, double hi);

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// In-place Fisher–Yates shuffle of an existing index vector (the
  /// allocation-free counterpart of permutation()).
  void shuffle(std::vector<std::size_t>& items);

  /// Splits off an independently seeded child stream; used to give each
  /// organization / client its own stream without coupling draw order.
  Rng split();

  /// The 4×u64 xoshiro256** state words, for checkpointing. restore() makes
  /// the generator continue exactly where state() was captured — including
  /// clearing the Box–Muller cache, so the first post-restore draw matches a
  /// generator that never cached (normal() callers that need mid-pair
  /// fidelity should capture state *between* pairs; every checkpoint in this
  /// repo does).
  using State = std::array<std::uint64_t, 4>;
  [[nodiscard]] State state() const { return state_; }
  void restore(const State& state);

  /// Derives a child seed for stream `stream_id` of `base_seed`, statelessly:
  /// unlike split(), the result does not depend on how many draws the parent
  /// has made. This is how parallel FedAvg gives client c its own shuffle
  /// stream (derive_stream_seed(shuffle_seed, c)) so the schedule of every
  /// client is independent of thread interleaving and client count.
  static std::uint64_t derive_stream_seed(std::uint64_t base_seed, std::uint64_t stream_id);

 private:
  std::array<std::uint64_t, 4> state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace tradefl
