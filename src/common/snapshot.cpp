#include "common/snapshot.h"

#include <array>
#include <bit>
#include <cstdio>
#include <filesystem>

namespace tradefl {
namespace {

constexpr std::uint32_t kMagic = 0x534C4654u;  // "TFLS" little-endian
constexpr std::size_t kHeaderMin = 4 + 4 + 8;  // magic + version + kind length
constexpr std::size_t kTrailer = 4;            // CRC32

// Sanity cap on length prefixes: nothing in this repo snapshots anywhere near
// 1 GiB, so a larger claimed length is corruption, not data.
constexpr std::uint64_t kMaxFieldBytes = 1ULL << 30;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value >> 1) ^ ((value & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = value;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFFu];
  }
  return ~crc;
}

std::uint32_t crc32(const std::vector<std::uint8_t>& data) {
  return crc32(data.data(), data.size());
}

// ----- SnapshotWriter -----

void SnapshotWriter::put_u8(std::uint8_t value) { buffer_.push_back(value); }

void SnapshotWriter::put_u32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFFu));
  }
}

void SnapshotWriter::put_u64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFFu));
  }
}

void SnapshotWriter::put_i64(std::int64_t value) {
  put_u64(static_cast<std::uint64_t>(value));
}

void SnapshotWriter::put_bool(bool value) { put_u8(value ? 1 : 0); }

void SnapshotWriter::put_f32(float value) { put_u32(std::bit_cast<std::uint32_t>(value)); }

void SnapshotWriter::put_f64(double value) { put_u64(std::bit_cast<std::uint64_t>(value)); }

void SnapshotWriter::put_string(const std::string& value) {
  put_u64(value.size());
  buffer_.insert(buffer_.end(), value.begin(), value.end());
}

void SnapshotWriter::put_bytes(const std::vector<std::uint8_t>& value) {
  put_u64(value.size());
  buffer_.insert(buffer_.end(), value.begin(), value.end());
}

void SnapshotWriter::put_f32s(const std::vector<float>& values) {
  put_u64(values.size());
  for (float value : values) put_f32(value);
}

void SnapshotWriter::put_f64s(const std::vector<double>& values) {
  put_u64(values.size());
  for (double value : values) put_f64(value);
}

void SnapshotWriter::put_u64s(const std::vector<std::uint64_t>& values) {
  put_u64(values.size());
  for (std::uint64_t value : values) put_u64(value);
}

// ----- SnapshotReader -----

void SnapshotReader::require(std::size_t bytes) const {
  if (size_ - offset_ < bytes) {
    throw SnapshotError("payload overrun: need " + std::to_string(bytes) + " bytes, have " +
                        std::to_string(size_ - offset_));
  }
}

std::uint8_t SnapshotReader::get_u8() {
  require(1);
  return data_[offset_++];
}

std::uint32_t SnapshotReader::get_u32() {
  require(4);
  std::uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<std::uint32_t>(data_[offset_++]) << shift;
  }
  return value;
}

std::uint64_t SnapshotReader::get_u64() {
  require(8);
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<std::uint64_t>(data_[offset_++]) << shift;
  }
  return value;
}

std::int64_t SnapshotReader::get_i64() { return static_cast<std::int64_t>(get_u64()); }

bool SnapshotReader::get_bool() {
  const std::uint8_t raw = get_u8();
  if (raw > 1) throw SnapshotError("bool field holds " + std::to_string(raw));
  return raw == 1;
}

float SnapshotReader::get_f32() { return std::bit_cast<float>(get_u32()); }

double SnapshotReader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string SnapshotReader::get_string() {
  const std::uint64_t length = get_u64();
  if (length > kMaxFieldBytes) throw SnapshotError("string length prefix exceeds sanity cap");
  require(static_cast<std::size_t>(length));
  std::string value(reinterpret_cast<const char*>(data_ + offset_),
                    static_cast<std::size_t>(length));
  offset_ += static_cast<std::size_t>(length);
  return value;
}

std::vector<std::uint8_t> SnapshotReader::get_bytes() {
  const std::uint64_t length = get_u64();
  if (length > kMaxFieldBytes) throw SnapshotError("bytes length prefix exceeds sanity cap");
  require(static_cast<std::size_t>(length));
  std::vector<std::uint8_t> value(data_ + offset_, data_ + offset_ + length);
  offset_ += static_cast<std::size_t>(length);
  return value;
}

std::vector<float> SnapshotReader::get_f32s() {
  const std::uint64_t count = get_u64();
  if (count > kMaxFieldBytes / 4) throw SnapshotError("f32 count exceeds sanity cap");
  require(static_cast<std::size_t>(count) * 4);
  std::vector<float> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) values.push_back(get_f32());
  return values;
}

std::vector<double> SnapshotReader::get_f64s() {
  const std::uint64_t count = get_u64();
  if (count > kMaxFieldBytes / 8) throw SnapshotError("f64 count exceeds sanity cap");
  require(static_cast<std::size_t>(count) * 8);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) values.push_back(get_f64());
  return values;
}

std::vector<std::uint64_t> SnapshotReader::get_u64s() {
  const std::uint64_t count = get_u64();
  if (count > kMaxFieldBytes / 8) throw SnapshotError("u64 count exceeds sanity cap");
  require(static_cast<std::size_t>(count) * 8);
  std::vector<std::uint64_t> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) values.push_back(get_u64());
  return values;
}

void SnapshotReader::require_exhausted() const {
  if (offset_ != size_) {
    throw SnapshotError("trailing bytes after payload: " + std::to_string(size_ - offset_));
  }
}

// ----- file I/O -----

Result<std::size_t> write_snapshot_file(const std::string& path, const std::string& kind,
                                        std::uint32_t version, const SnapshotWriter& payload) {
  SnapshotWriter framed;
  framed.put_u32(kMagic);
  framed.put_u32(version);
  framed.put_string(kind);
  framed.put_bytes(payload.payload());
  const std::vector<std::uint8_t>& body = framed.payload();
  const std::uint32_t checksum = crc32(body);

  // Write to a sibling temp file, then rename into place: POSIX rename is
  // atomic within a filesystem, so readers observe either the previous
  // snapshot or the complete new one.
  const std::string temp_path = path + ".tmp";
  {
    std::FILE* file = std::fopen(temp_path.c_str(), "wb");
    if (file == nullptr) {
      return Error{"io", "cannot open " + temp_path + " for writing"};
    }
    const std::size_t written = std::fwrite(body.data(), 1, body.size(), file);
    std::uint8_t trailer[4];
    for (int i = 0; i < 4; ++i) {
      trailer[i] = static_cast<std::uint8_t>((checksum >> (8 * i)) & 0xFFu);
    }
    const std::size_t trailer_written = std::fwrite(trailer, 1, kTrailer, file);
    const bool flushed = std::fflush(file) == 0;
    const bool closed = std::fclose(file) == 0;
    if (written != body.size() || trailer_written != kTrailer || !flushed || !closed) {
      std::remove(temp_path.c_str());
      return Error{"io", "write failed for " + temp_path};
    }
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    return Error{"io", "cannot rename " + temp_path + " to " + path};
  }
  return body.size() + kTrailer;
}

Result<std::vector<std::uint8_t>> read_snapshot_file(const std::string& path,
                                                     const std::string& kind,
                                                     std::uint32_t max_version) {
  std::vector<std::uint8_t> raw;
  {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      return Error{"io", "cannot open " + path + " for reading"};
    }
    std::uint8_t chunk[4096];
    std::size_t read = 0;
    while ((read = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
      raw.insert(raw.end(), chunk, chunk + read);
    }
    const bool clean = std::ferror(file) == 0;
    std::fclose(file);
    if (!clean) return Error{"io", "read failed for " + path};
  }

  if (raw.size() < kHeaderMin + 8 + kTrailer) {
    return Error{"snapshot.truncated",
                 path + ": " + std::to_string(raw.size()) + " bytes is smaller than any snapshot"};
  }

  // Validate the CRC first: a flipped byte anywhere (header included) must
  // fail closed before any field is interpreted.
  const std::size_t body_size = raw.size() - kTrailer;
  std::uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<std::uint32_t>(raw[body_size + static_cast<std::size_t>(i)])
                  << (8 * i);
  }
  const std::uint32_t computed_crc = crc32(raw.data(), body_size);

  SnapshotReader reader(raw.data(), body_size);
  try {
    const std::uint32_t magic = reader.get_u32();
    if (magic != kMagic) {
      return Error{"snapshot.magic", path + ": not a TradeFL snapshot (bad magic)"};
    }
    const std::uint32_t version = reader.get_u32();
    if (computed_crc != stored_crc) {
      return Error{"snapshot.crc", path + ": CRC mismatch (file is corrupt)"};
    }
    if (version > max_version) {
      return Error{"snapshot.version", path + ": schema version " + std::to_string(version) +
                                           " is newer than supported " +
                                           std::to_string(max_version)};
    }
    const std::string file_kind = reader.get_string();
    if (file_kind != kind) {
      return Error{"snapshot.kind",
                   path + ": holds a '" + file_kind + "' snapshot, expected '" + kind + "'"};
    }
    std::vector<std::uint8_t> payload = reader.get_bytes();
    reader.require_exhausted();
    return payload;
  } catch (const SnapshotError& error) {
    return Error{"snapshot.truncated", path + ": " + error.what()};
  }
}

bool snapshot_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

}  // namespace tradefl
