// Contract macros for the numeric substrate. The incentive guarantees (IR/BB/
// CE) and the convergence proofs only hold on finite, in-bounds arithmetic, so
// the hot correctness surfaces (math/, fl/tensor, game/ invariants, chain/
// fixed-point) assert their preconditions through these macros instead of
// ad-hoc ifs.
//
// Two tiers:
//   TFL_CHECK(cond, parts...)   always compiled in; use for cheap invariants
//                               whose violation would corrupt results.
//   TFL_ASSERT(cond, parts...)  debug/sanitizer-only (see below); use on hot
//                               paths where Release builds must not pay.
//   TFL_BOUNDS(index, size)     TFL_ASSERT-tier index check with a formatted
//                               "index 7 out of range [0, 4)" message.
//   TFL_FINITE(value)           TFL_ASSERT-tier isfinite check that prints the
//                               offending value (NaN/Inf) and expression.
//
// A failed contract throws tradefl::ContractViolation (a std::logic_error)
// carrying "<KIND>(<expr>) failed at <file>:<line>[: <details>]". Throwing --
// rather than aborting -- keeps the macros unit-testable and lets the CLI
// report a clean error; under the sanitizer presets an escaped violation still
// terminates the test with a full report.
//
// Gating: TFL_ASSERT/TFL_BOUNDS/TFL_FINITE compile to a no-op (operands
// unevaluated) unless TRADEFL_ENABLE_CONTRACTS is truthy. When the macro is
// not defined on the command line, contracts default ON for unoptimized
// builds (!NDEBUG) and for ASan/UBSan/TSan builds, OFF otherwise. CMake
// exposes this as the TRADEFL_ENABLE_CONTRACTS option (AUTO/ON/OFF).
#pragma once

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#if !defined(TRADEFL_ENABLE_CONTRACTS)
#if !defined(NDEBUG)
#define TRADEFL_ENABLE_CONTRACTS 1
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define TRADEFL_ENABLE_CONTRACTS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(undefined_behavior_sanitizer)
#define TRADEFL_ENABLE_CONTRACTS 1
#else
#define TRADEFL_ENABLE_CONTRACTS 0
#endif
#else
#define TRADEFL_ENABLE_CONTRACTS 0
#endif
#endif

namespace tradefl {

/// Thrown on any failed TFL_* contract. Derives from std::logic_error because
/// a violated contract is a programming error, not an environmental failure.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

/// Streams every part into one string; empty pack yields "".
template <typename... Parts>
std::string format_contract_details(const Parts&... parts) {
  if constexpr (sizeof...(parts) == 0) {
    return std::string();
  } else {
    std::ostringstream out;
    (out << ... << parts);
    return out.str();
  }
}

/// Builds the message, logs it at error level, and throws ContractViolation.
[[noreturn]] void contract_fail(const char* kind, const char* expr, const char* file, int line,
                                const std::string& details);

[[noreturn]] void bounds_fail(const char* index_expr, const char* size_expr, const char* file,
                              int line, unsigned long long index, unsigned long long size);

[[noreturn]] void finite_fail(const char* expr, const char* file, int line, double value);

}  // namespace detail
}  // namespace tradefl

#define TFL_CHECK(cond, ...)                                                      \
  do {                                                                            \
    if (!(cond)) {                                                                \
      ::tradefl::detail::contract_fail(                                           \
          "TFL_CHECK", #cond, __FILE__, __LINE__,                                 \
          ::tradefl::detail::format_contract_details(__VA_ARGS__));               \
    }                                                                             \
  } while (false)

#if TRADEFL_ENABLE_CONTRACTS

#define TFL_ASSERT(cond, ...)                                                     \
  do {                                                                            \
    if (!(cond)) {                                                                \
      ::tradefl::detail::contract_fail(                                           \
          "TFL_ASSERT", #cond, __FILE__, __LINE__,                                \
          ::tradefl::detail::format_contract_details(__VA_ARGS__));               \
    }                                                                             \
  } while (false)

#define TFL_BOUNDS(index, size)                                                   \
  do {                                                                            \
    const auto tfl_bounds_index_ = (index);                                       \
    const auto tfl_bounds_size_ = (size);                                         \
    if (!(tfl_bounds_index_ < tfl_bounds_size_)) {                                \
      ::tradefl::detail::bounds_fail(                                             \
          #index, #size, __FILE__, __LINE__,                                      \
          static_cast<unsigned long long>(tfl_bounds_index_),                     \
          static_cast<unsigned long long>(tfl_bounds_size_));                     \
    }                                                                             \
  } while (false)

#define TFL_FINITE(value)                                                         \
  do {                                                                            \
    const double tfl_finite_value_ = static_cast<double>(value);                  \
    if (!std::isfinite(tfl_finite_value_)) {                                      \
      ::tradefl::detail::finite_fail(#value, __FILE__, __LINE__, tfl_finite_value_); \
    }                                                                             \
  } while (false)

#else  // TRADEFL_ENABLE_CONTRACTS

// Disabled tier: operands are parsed (so they stay well-formed) but never
// evaluated, and the whole statement folds away.
#define TFL_ASSERT(cond, ...) \
  do {                        \
    (void)sizeof((cond) ? 1 : 0); \
  } while (false)

#define TFL_BOUNDS(index, size)   \
  do {                            \
    (void)sizeof(index);          \
    (void)sizeof(size);           \
  } while (false)

#define TFL_FINITE(value)  \
  do {                     \
    (void)sizeof(value);   \
  } while (false)

#endif  // TRADEFL_ENABLE_CONTRACTS
