#include "common/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/string_util.h"

namespace tradefl {
namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("CsvWriter: empty header");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("CsvWriter: row width " + std::to_string(row.size()) +
                                " != header width " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

void CsvWriter::add_row_doubles(const std::vector<double>& row) {
  std::vector<std::string> formatted;
  formatted.reserve(row.size());
  for (double value : row) formatted.push_back(format_double(value, 10));
  add_row(std::move(formatted));
}

std::string CsvWriter::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) out << ',';
    out << quote(header_[i]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << quote(row[i]);
    }
    out << '\n';
  }
  return out.str();
}

Status CsvWriter::write_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Error{"io", "cannot open " + path + " for writing"};
  file << to_string();
  if (!file) return Error{"io", "write failed for " + path};
  return ok_status();
}

Result<CsvTable> parse_csv(const std::string& text) {
  CsvTable table;
  std::vector<std::string> current_row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_field = [&] {
    current_row.push_back(field);
    field.clear();
    row_has_content = true;
  };
  auto end_row = [&]() -> Status {
    if (!row_has_content && current_row.empty()) return ok_status();
    end_field();
    if (table.header.empty()) {
      table.header = current_row;
    } else {
      if (current_row.size() != table.header.size()) {
        return Error{"csv", "row width mismatch at row " + std::to_string(table.rows.size() + 1)};
      }
      table.rows.push_back(current_row);
    }
    current_row.clear();
    row_has_content = false;
    return ok_status();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      row_has_content = true;
    } else if (c == ',') {
      end_field();
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      if (row_has_content || !field.empty() || !current_row.empty()) {
        if (auto status = end_row(); !status.ok()) return status.error();
      }
    } else {
      field += c;
      row_has_content = true;
    }
  }
  if (in_quotes) return Error{"csv", "unterminated quoted field"};
  if (row_has_content || !field.empty() || !current_row.empty()) {
    if (auto status = end_row(); !status.ok()) return status.error();
  }
  if (table.header.empty()) return Error{"csv", "empty input"};
  return table;
}

Result<CsvTable> read_csv_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Error{"io", "cannot open " + path};
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_csv(buffer.str());
}

}  // namespace tradefl
