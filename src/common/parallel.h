// Fixed-size thread-pool execution layer — the ONLY place in the tree that
// may create threads (enforced by tfl-lint's raw-thread rule). Design goals,
// in order:
//
//   1. Determinism. The chunk grid handed to run_chunks()/parallel_for()
//      never depends on the pool size, and callers that combine per-chunk
//      results do so serially in chunk-index order (ordered_reduce). Under
//      that discipline threads=1 and threads=N produce bit-identical floats.
//   2. Zero overhead when off. A pool of size 1 spawns no threads and runs
//      every chunk inline on the caller; global_pool() returns nullptr until
//      set_global_threads(n >= 2) is called.
//   3. Safe nesting. A parallel region entered from inside a pool worker
//      (e.g. a GEMM inside a parallel FedAvg client) runs inline on that
//      worker instead of deadlocking on the shared pool.
//
// This header lives in the `common` layer and therefore cannot use the obs
// macros; call sites (fl/core/tradefl/bench) own the instrumentation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace tradefl {

/// A fixed-size pool executing one "batch" of indexed chunks at a time. The
/// calling thread participates as worker 0; a pool constructed with
/// `threads == 1` spawns nothing. Chunks are assigned statically
/// (round-robin by index), never work-stolen, so the chunk -> worker mapping
/// is deterministic for a given pool size.
class ThreadPool {
 public:
  /// Total worker count including the caller; clamped to >= 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers (spawned threads + the participating caller).
  [[nodiscard]] std::size_t size() const { return worker_count_; }

  /// Chunks of the in-flight batch not yet finished (0 when idle).
  [[nodiscard]] std::size_t queue_depth() const;

  /// Runs fn(chunk_index, worker_index) for every chunk_index in [0, count).
  /// Blocks until all chunks finish. Worker 0 is the calling thread. Nested
  /// calls from pool workers execute inline. The first exception thrown by a
  /// chunk is rethrown here after the batch drains.
  void run_chunks(std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn);

  /// parallel_for over [begin, end): body(lo, hi, worker_index) per chunk of
  /// at most `grain` indices. The chunk grid depends only on the range and
  /// the grain — never on the pool size.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

 private:
  void worker_loop(std::size_t worker_index);

  std::size_t worker_count_ = 1;
  std::vector<std::thread> threads_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: a new batch is published
  std::condition_variable done_cv_;  // caller: the batch has drained
  std::uint64_t generation_ = 0;
  std::size_t batch_count_ = 0;
  const std::function<void(std::size_t, std::size_t)>* batch_fn_ = nullptr;
  std::size_t remaining_ = 0;
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

/// Number of chunks parallel_for produces for a range of `total` indices.
[[nodiscard]] std::size_t chunk_count(std::size_t total, std::size_t grain);

/// Serial fallbacks: every parallel entry point accepts a nullable pool so
/// call sites read `run_chunks(global_pool(), ...)` without branching.
void run_chunks(ThreadPool* pool, std::size_t count,
                const std::function<void(std::size_t, std::size_t)>& fn);
void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// Maps chunk -> T in parallel, then folds serially in chunk-index order:
/// the reduction order (and hence every float rounding step) is identical
/// for any pool size. `map(chunk, worker)` must be pure per chunk;
/// `reduce(acc, value)` mutates the accumulator.
template <typename T, typename Map, typename Reduce>
T ordered_reduce(ThreadPool* pool, std::size_t count, T init, const Map& map,
                 const Reduce& reduce) {
  std::vector<T> partial(count);
  run_chunks(pool, count,
             [&](std::size_t chunk, std::size_t worker) { partial[chunk] = map(chunk, worker); });
  T accumulator = std::move(init);
  for (std::size_t chunk = 0; chunk < count; ++chunk) {
    reduce(accumulator, std::move(partial[chunk]));
  }
  return accumulator;
}

/// Ambient pool shared by the FL/CGBD hot paths, sized by the CLI/bench
/// `threads=N` option. Call from the main thread only (the pool is torn down
/// and rebuilt). n <= 1 disables parallelism: global_pool() returns nullptr.
/// A PoolBudgetScope on the calling thread overrides both accessors.
void set_global_threads(std::size_t threads);
[[nodiscard]] std::size_t global_threads();
[[nodiscard]] ThreadPool* global_pool();

/// While alive on a thread, global_pool()/global_threads() answer with this
/// scope's pool instead of the process-wide one. The server carves per-session
/// thread budgets this way: each session worker installs a scope over its own
/// (possibly null = serial) pool, so concurrent sessions can never share —
/// and race on — the single ambient pool's batch slot. Scopes nest; the
/// innermost wins. The scope does not own the pool.
class PoolBudgetScope {
 public:
  explicit PoolBudgetScope(ThreadPool* pool);
  ~PoolBudgetScope();
  PoolBudgetScope(const PoolBudgetScope&) = delete;
  PoolBudgetScope& operator=(const PoolBudgetScope&) = delete;

 private:
  ThreadPool* previous_pool_;
  bool previous_active_;
};

/// A single named service thread (join-on-destroy). This is the sanctioned
/// way for long-lived components (the serve daemon's session workers and
/// watchdog) to get a thread without touching std::thread themselves — the
/// raw-thread lint rule keeps thread creation inside this translation unit.
/// Not for data-parallel fan-out; that is ThreadPool's job.
class WorkerThread {
 public:
  WorkerThread() = default;
  explicit WorkerThread(std::function<void()> fn);
  ~WorkerThread();

  WorkerThread(WorkerThread&&) noexcept = default;
  WorkerThread& operator=(WorkerThread&&) noexcept;
  WorkerThread(const WorkerThread&) = delete;
  WorkerThread& operator=(const WorkerThread&) = delete;

  [[nodiscard]] bool joinable() const { return thread_.joinable(); }
  void join();

 private:
  std::thread thread_;
};

}  // namespace tradefl
