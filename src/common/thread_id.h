// Small dense thread index (0, 1, 2, ...) assigned on first use. Both the
// trace spans and the logging thread-id prefix want a stable human-readable
// id per thread; std::this_thread::get_id() is opaque and non-deterministic
// across runs, so we hand out our own.
#pragma once

#include <atomic>

namespace tradefl {

inline int thread_index() {
  static std::atomic<int> next{0};
  thread_local int index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace tradefl
