// Small string helpers shared by config/CSV/table code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tradefl {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Strips ASCII whitespace from both ends.
std::string trim(std::string_view text);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view separator);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view text);

/// Formats a double compactly (up to `precision` significant digits, no
/// trailing zeros) — used in table/CSV output.
std::string format_double(double value, int precision = 6);

}  // namespace tradefl
