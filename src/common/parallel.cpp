#include "common/parallel.h"

#include <algorithm>
#include <memory>

namespace tradefl {
namespace {

// Worker identity of the current thread: 0 on any thread that is not a pool
// worker (including the main thread), the worker index inside worker_loop.
// Nested parallel regions use it so per-worker scratch stays consistent.
thread_local bool t_inside_pool_worker = false;
thread_local std::size_t t_worker_index = 0;

// Marks the current thread as executing pool chunks for a scope. The batch
// caller needs this as much as worker_loop does: a nested parallel region
// reached from one of the caller's own chunks must run inline, or it would
// publish a second batch over the one still in flight.
class InsidePoolScope {
 public:
  InsidePoolScope() : previous_(t_inside_pool_worker) { t_inside_pool_worker = true; }
  ~InsidePoolScope() { t_inside_pool_worker = previous_; }
  InsidePoolScope(const InsidePoolScope&) = delete;
  InsidePoolScope& operator=(const InsidePoolScope&) = delete;

 private:
  bool previous_;
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) : worker_count_(std::max<std::size_t>(1, threads)) {
  threads_.reserve(worker_count_ - 1);
  for (std::size_t w = 1; w < worker_count_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

std::size_t ThreadPool::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return remaining_;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  t_inside_pool_worker = true;
  t_worker_index = worker_index;
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) return;
      seen_generation = generation_;
      fn = batch_fn_;
      count = batch_count_;
    }
    std::size_t completed = 0;
    std::exception_ptr error;
    for (std::size_t chunk = worker_index; chunk < count; chunk += worker_count_) {
      try {
        (*fn)(chunk, worker_index);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
      ++completed;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      remaining_ -= completed;
      if (remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_chunks(std::size_t count,
                            const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  // Inline when there is nothing to fan out to, or when called from inside a
  // pool worker: re-entering the shared pool from a worker would deadlock
  // (the batch slot is busy), and inline nesting keeps the chunk grid — and
  // therefore the float rounding — identical either way.
  if (threads_.empty() || count == 1 || t_inside_pool_worker) {
    for (std::size_t chunk = 0; chunk < count; ++chunk) fn(chunk, t_worker_index);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    batch_fn_ = &fn;
    batch_count_ = count;
    remaining_ = count;
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is worker 0 and takes its round-robin share.
  std::size_t completed = 0;
  std::exception_ptr error;
  {
    const InsidePoolScope inside;  // nested regions in our chunks run inline
    for (std::size_t chunk = 0; chunk < count; chunk += worker_count_) {
      try {
        fn(chunk, 0);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
      ++completed;
    }
  }
  std::exception_ptr batch_error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (error && !first_error_) first_error_ = error;
    remaining_ -= completed;
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    batch_fn_ = nullptr;
    batch_count_ = 0;
    batch_error = first_error_;
    first_error_ = nullptr;
  }
  if (batch_error) std::rethrow_exception(batch_error);
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t step = std::max<std::size_t>(1, grain);
  const std::size_t chunks = chunk_count(end - begin, step);
  run_chunks(chunks, [&](std::size_t chunk, std::size_t worker) {
    const std::size_t lo = begin + chunk * step;
    const std::size_t hi = std::min(end, lo + step);
    body(lo, hi, worker);
  });
}

std::size_t chunk_count(std::size_t total, std::size_t grain) {
  const std::size_t step = std::max<std::size_t>(1, grain);
  return (total + step - 1) / step;
}

void run_chunks(ThreadPool* pool, std::size_t count,
                const std::function<void(std::size_t, std::size_t)>& fn) {
  if (pool != nullptr) {
    pool->run_chunks(count, fn);
    return;
  }
  for (std::size_t chunk = 0; chunk < count; ++chunk) fn(chunk, t_worker_index);
}

void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (pool != nullptr) {
    pool->parallel_for(begin, end, grain, body);
    return;
  }
  if (end <= begin) return;
  const std::size_t step = std::max<std::size_t>(1, grain);
  for (std::size_t lo = begin; lo < end; lo += step) {
    body(lo, std::min(end, lo + step), t_worker_index);
  }
}

namespace {

// Owned by the main thread: set_global_threads is documented main-thread-only,
// and every worker access goes through the raw pointer for the duration of a
// run_chunks batch, which the owning call strictly outlives.
std::unique_ptr<ThreadPool>& global_pool_storage() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

// Per-thread pool budget installed by PoolBudgetScope. The active flag is
// separate from the pointer because "override to serial" (nullptr) must be
// distinguishable from "no override".
thread_local bool t_pool_override_active = false;
thread_local ThreadPool* t_pool_override = nullptr;

}  // namespace

PoolBudgetScope::PoolBudgetScope(ThreadPool* pool)
    : previous_pool_(t_pool_override), previous_active_(t_pool_override_active) {
  t_pool_override = pool;
  t_pool_override_active = true;
}

PoolBudgetScope::~PoolBudgetScope() {
  t_pool_override = previous_pool_;
  t_pool_override_active = previous_active_;
}

WorkerThread::WorkerThread(std::function<void()> fn) : thread_(std::move(fn)) {}

WorkerThread::~WorkerThread() {
  if (thread_.joinable()) thread_.join();
}

WorkerThread& WorkerThread::operator=(WorkerThread&& other) noexcept {
  if (this != &other) {
    if (thread_.joinable()) thread_.join();
    thread_ = std::move(other.thread_);
  }
  return *this;
}

void WorkerThread::join() {
  if (thread_.joinable()) thread_.join();
}

void set_global_threads(std::size_t threads) {
  auto& pool = global_pool_storage();
  const std::size_t current = pool == nullptr ? 1 : pool->size();
  const std::size_t wanted = std::max<std::size_t>(1, threads);
  if (wanted == current) return;
  pool.reset();
  if (wanted >= 2) pool = std::make_unique<ThreadPool>(wanted);
}

std::size_t global_threads() {
  if (t_pool_override_active) {
    return t_pool_override == nullptr ? 1 : t_pool_override->size();
  }
  const auto& pool = global_pool_storage();
  return pool == nullptr ? 1 : pool->size();
}

ThreadPool* global_pool() {
  if (t_pool_override_active) return t_pool_override;
  return global_pool_storage().get();
}

}  // namespace tradefl
