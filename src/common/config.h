// Minimal key=value config parsing so examples/benches can be parameterized
// from the command line ("key=value" args) or simple files, without pulling
// in a flags library.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"

namespace tradefl {

/// Flat string-to-string configuration with typed accessors.
class Config {
 public:
  Config() = default;

  /// Parses "key=value" tokens; lines starting with '#' are ignored when
  /// parsing file content. Later keys override earlier ones.
  static Result<Config> from_args(const std::vector<std::string>& args);
  static Result<Config> from_text(const std::string& text);

  void set(const std::string& key, const std::string& value);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Typed getters return the fallback when the key is missing and an error
  /// (thrown as std::invalid_argument) when the value does not parse.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string get_string(const std::string& key, std::string fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace tradefl
