#include "common/table.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/string_util.h"

namespace tradefl {

AsciiTable::AsciiTable(std::vector<std::string> header, std::vector<Align> alignments)
    : header_(std::move(header)), alignments_(std::move(alignments)) {
  if (header_.empty()) throw std::invalid_argument("AsciiTable: empty header");
  if (alignments_.empty()) {
    alignments_.assign(header_.size(), Align::kRight);
    alignments_[0] = Align::kLeft;
  }
  if (alignments_.size() != header_.size()) {
    throw std::invalid_argument("AsciiTable: alignment count != header width");
  }
}

void AsciiTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("AsciiTable: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

void AsciiTable::add_row_doubles(const std::vector<double>& row, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(row.size());
  for (double value : row) formatted.push_back(format_double(value, precision));
  add_row(std::move(formatted));
}

void AsciiTable::add_labeled_row(const std::string& label, const std::vector<double>& values,
                                 int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double value : values) row.push_back(format_double(value, precision));
  add_row(std::move(row));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t i = 0; i < row.size(); ++i) {
      const std::size_t pad = widths[i] - row[i].size();
      line += ' ';
      if (alignments_[i] == Align::kRight) line += std::string(pad, ' ') + row[i];
      else line += row[i] + std::string(pad, ' ');
      line += " |";
    }
    return line + "\n";
  };

  std::ostringstream out;
  out << rule() << render_row(header_) << rule();
  for (const auto& row : rows_) out << render_row(row);
  out << rule();
  return out.str();
}

}  // namespace tradefl
