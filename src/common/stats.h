// Descriptive statistics and least-squares curve fitting. The Fig. 2
// pre-experiment fits accuracy-vs-data curves of the form
//   P(x) = a - b / sqrt(x + c)
// to empirical FL measurements; we provide a generic linear least squares
// plus that specific nonlinear fit (grid over c, linear solve for a, b).
#pragma once

#include <cstddef>
#include <vector>

namespace tradefl {

double mean(const std::vector<double>& values);
double variance(const std::vector<double>& values);  // population variance
double stddev(const std::vector<double>& values);
double min_value(const std::vector<double>& values);
double max_value(const std::vector<double>& values);

/// Pearson correlation of two equally sized series.
double correlation(const std::vector<double>& xs, const std::vector<double>& ys);

/// Ordinary least squares fit y ~ intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LinearFit fit_linear(const std::vector<double>& xs, const std::vector<double>& ys);

/// Fit of y ~ a - b / sqrt(x + c) with b >= 0 (the data-accuracy shape from
/// the paper's footnote 7). `c` is searched over a log grid; (a, b) solved in
/// closed form per candidate c.
struct SqrtSaturationFit {
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  double r_squared = 0.0;

  [[nodiscard]] double evaluate(double x) const;
};
SqrtSaturationFit fit_sqrt_saturation(const std::vector<double>& xs,
                                      const std::vector<double>& ys);

/// Checks empirical first/second-derivative signs of a sampled curve
/// (Eq. 5): returns true when successive differences are >= -tol (monotone
/// nondecreasing) and successive difference deltas are <= tol (concavity).
struct ShapeCheck {
  bool nondecreasing = false;
  bool concave = false;
};
ShapeCheck check_monotone_concave(const std::vector<double>& xs,
                                  const std::vector<double>& ys, double tol);

}  // namespace tradefl
