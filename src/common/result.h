// A minimal Result<T> type for recoverable errors (std::expected is C++23;
// this project targets C++20). Used where throwing would be heavy-handed,
// e.g. config parsing and contract call outcomes.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace tradefl {

/// Describes a recoverable failure. `code` is a short machine-readable
/// category, `message` a human-readable explanation.
struct Error {
  std::string code;
  std::string message;

  [[nodiscard]] std::string to_string() const { return code + ": " + message; }
};

/// Result<T> holds either a value or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().to_string());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().to_string());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& take() && {
    if (!ok()) throw std::runtime_error("Result::take on error: " + error().to_string());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const {
    return std::get<Error>(data_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  /// Applies `fn` to the value if ok, propagating errors unchanged.
  template <typename Fn>
  auto map(Fn&& fn) const -> Result<decltype(fn(std::declval<const T&>()))> {
    using U = decltype(fn(std::declval<const T&>()));
    if (!ok()) return Result<U>(error());
    return Result<U>(fn(std::get<T>(data_)));
  }

  /// Monadic bind: `fn` must itself return a Result; errors short-circuit.
  /// This is the composition primitive for fallible chains (e.g. a retried
  /// contract call feeding a decode step) without intermediate throws.
  template <typename Fn>
  auto and_then(Fn&& fn) const -> decltype(fn(std::declval<const T&>())) {
    using R = decltype(fn(std::declval<const T&>()));
    if (!ok()) return R(error());
    return fn(std::get<T>(data_));
  }

  /// Error handler: `fn(error)` produces a replacement Result<T> (recover or
  /// rewrap); an ok value passes through untouched.
  template <typename Fn>
  Result<T> or_else(Fn&& fn) const {
    if (ok()) return Result<T>(std::get<T>(data_));
    return fn(error());
  }

 private:
  std::variant<T, Error> data_;
};

/// Specialization-free helper for operations that produce no value.
struct Unit {};
using Status = Result<Unit>;

inline Status ok_status() { return Status(Unit{}); }

}  // namespace tradefl
