#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tradefl {
namespace {

void require_same_nonempty(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.empty() || xs.size() != ys.size()) {
    throw std::invalid_argument("stats: series must be equally sized and non-empty");
  }
}

double sum_squared_residuals_about_mean(const std::vector<double>& ys) {
  const double m = mean(ys);
  double total = 0.0;
  for (double y : ys) total += (y - m) * (y - m);
  return total;
}

}  // namespace

double mean(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("mean: empty series");
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double variance(const std::vector<double>& values) {
  const double m = mean(values);
  double total = 0.0;
  for (double v : values) total += (v - m) * (v - m);
  return total / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) { return std::sqrt(variance(values)); }

double min_value(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("min_value: empty series");
  return *std::min_element(values.begin(), values.end());
}

double max_value(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("max_value: empty series");
  return *std::max_element(values.begin(), values.end());
}

double correlation(const std::vector<double>& xs, const std::vector<double>& ys) {
  require_same_nonempty(xs, ys);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit fit_linear(const std::vector<double>& xs, const std::vector<double>& ys) {
  require_same_nonempty(xs, ys);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  LinearFit fit;
  fit.slope = sxx == 0.0 ? 0.0 : sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += r * r;
  }
  const double ss_tot = sum_squared_residuals_about_mean(ys);
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double SqrtSaturationFit::evaluate(double x) const {
  return a - b / std::sqrt(x + c);
}

SqrtSaturationFit fit_sqrt_saturation(const std::vector<double>& xs,
                                      const std::vector<double>& ys) {
  require_same_nonempty(xs, ys);
  const double x_max = max_value(xs);
  SqrtSaturationFit best;
  best.r_squared = -std::numeric_limits<double>::infinity();
  const double ss_tot = sum_squared_residuals_about_mean(ys);

  // Candidate offsets c spanning several decades relative to the x-range.
  for (int exponent = -6; exponent <= 2; ++exponent) {
    for (double mantissa : {1.0, 2.0, 5.0}) {
      const double c = mantissa * std::pow(10.0, exponent) * std::max(x_max, 1e-12);
      // With z = -1/sqrt(x + c), model is y = a + b * z; solve OLS for (a, b).
      std::vector<double> zs(xs.size());
      for (std::size_t i = 0; i < xs.size(); ++i) zs[i] = -1.0 / std::sqrt(xs[i] + c);
      const LinearFit linear = fit_linear(zs, ys);
      const double a = linear.intercept;
      const double b = std::max(0.0, linear.slope);
      double ss_res = 0.0;
      for (std::size_t i = 0; i < xs.size(); ++i) {
        const double prediction = a - b / std::sqrt(xs[i] + c);
        ss_res += (ys[i] - prediction) * (ys[i] - prediction);
      }
      const double r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
      if (r2 > best.r_squared) best = SqrtSaturationFit{a, b, c, r2};
    }
  }
  return best;
}

ShapeCheck check_monotone_concave(const std::vector<double>& xs,
                                  const std::vector<double>& ys, double tol) {
  require_same_nonempty(xs, ys);
  ShapeCheck result{true, true};
  std::vector<double> slopes;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const double dx = xs[i] - xs[i - 1];
    if (dx <= 0.0) throw std::invalid_argument("check_monotone_concave: xs must increase");
    const double slope = (ys[i] - ys[i - 1]) / dx;
    if (slope < -tol) result.nondecreasing = false;
    slopes.push_back(slope);
  }
  for (std::size_t i = 1; i < slopes.size(); ++i) {
    if (slopes[i] > slopes[i - 1] + tol) result.concave = false;
  }
  return result;
}

}  // namespace tradefl
