#include "common/rng.h"

#include <cmath>

namespace tradefl {
namespace {

// SplitMix64: used only to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // A fully zero state would be a fixed point; splitmix64 cannot emit four
  // zeros for any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller.
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::truncated_normal(double mean, double stddev, double lo, double hi) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double draw = normal(mean, stddev);
    if (draw >= lo && draw <= hi) return draw;
  }
  const double clamped = normal(mean, stddev);
  return clamped < lo ? lo : (clamped > hi ? hi : clamped);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(indices[i - 1], indices[j]);
  }
  return indices;
}

void Rng::shuffle(std::vector<std::size_t>& items) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(items[i - 1], items[j]);
  }
}

Rng Rng::split() {
  return Rng(next_u64() ^ 0xD2B74407B1CE6E93ULL);
}

void Rng::restore(const State& state) {
  state_ = state;
  has_cached_normal_ = false;
  cached_normal_ = 0.0;
}

std::uint64_t Rng::derive_stream_seed(std::uint64_t base_seed, std::uint64_t stream_id) {
  // Two splitmix64 steps keyed by (base, stream): the first decorrelates the
  // base seed, the second folds in the stream id, so neighbouring stream ids
  // (client 0, 1, 2, ...) land far apart in seed space.
  std::uint64_t x = base_seed;
  std::uint64_t mixed = splitmix64(x);
  x = mixed ^ (stream_id * 0x9E3779B97F4A7C15ULL + 0xD2B74407B1CE6E93ULL);
  return splitmix64(x);
}

}  // namespace tradefl
