// CSV writing/reading used by the benchmark harness to dump figure series
// (each bench prints its rows and can optionally persist them for plotting).
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace tradefl {

/// Accumulates rows and serializes them as RFC-4180-ish CSV (quotes fields
/// containing separator/quote/newline).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends one row; throws std::invalid_argument if the width differs from
  /// the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with format_double.
  void add_row_doubles(const std::vector<double>& row);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }

  /// Serializes header + rows.
  [[nodiscard]] std::string to_string() const;

  /// Writes to a file; returns an error on I/O failure.
  [[nodiscard]] Status write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parsed CSV contents.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text (first line is the header). Handles quoted fields.
Result<CsvTable> parse_csv(const std::string& text);

/// Reads and parses a CSV file.
Result<CsvTable> read_csv_file(const std::string& path);

}  // namespace tradefl
