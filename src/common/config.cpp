#include "common/config.h"

#include <stdexcept>

#include "common/string_util.h"

namespace tradefl {

Result<Config> Config::from_args(const std::vector<std::string>& args) {
  Config config;
  for (const auto& arg : args) {
    const std::string token = trim(arg);
    if (token.empty() || token[0] == '#') continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Error{"config", "expected key=value, got '" + token + "'"};
    }
    const std::string key = trim(token.substr(0, eq));
    if (key.empty()) return Error{"config", "empty key in '" + token + "'"};
    config.set(key, trim(token.substr(eq + 1)));
  }
  return config;
}

Result<Config> Config::from_text(const std::string& text) {
  return from_args(split(text, '\n'));
}

void Config::set(const std::string& key, const std::string& value) {
  entries_[key] = value;
}

bool Config::has(const std::string& key) const { return entries_.count(key) > 0; }

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(*value, &consumed);
    if (consumed != value->size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key + "': cannot parse double from '" +
                                *value + "'");
  }
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  try {
    std::size_t consumed = 0;
    const std::int64_t parsed = std::stoll(*value, &consumed);
    if (consumed != value->size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key + "': cannot parse int from '" +
                                *value + "'");
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  const std::string lowered = to_lower(*value);
  if (lowered == "true" || lowered == "1" || lowered == "yes" || lowered == "on") return true;
  if (lowered == "false" || lowered == "0" || lowered == "no" || lowered == "off") return false;
  throw std::invalid_argument("config key '" + key + "': cannot parse bool from '" + *value + "'");
}

std::string Config::get_string(const std::string& key, std::string fallback) const {
  const auto value = get(key);
  return value ? *value : std::move(fallback);
}

}  // namespace tradefl
