// Seeded, fully deterministic fault injection. A FaultPlan describes which
// failures a run should experience — client dropout, straggler delay scaling,
// gradient/update corruption, chain transaction failures, solver perturbation
// — either as probabilistic rates or as explicit per-round events. The
// FaultInjector answers every "does fault X hit (round, target)?" query
// statelessly through Rng::derive_stream_seed, so a schedule replays
// bit-identically regardless of thread count, query order, or how many other
// faults fired before it. Consumers (fl/, chain/, core/, tradefl/) own the
// degradation behaviour and the obs counters; this layer only decides.
//
// Determinism contract: for a fixed FaultPlan, the value of every query is a
// pure function of (plan, kind, round, target). Nothing here mutates state,
// so the injector can be shared across threads without synchronization.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace tradefl {

enum class FaultKind : std::uint64_t {
  kClientDropout = 1,      // client misses a whole FL round
  kStragglerDelay = 2,     // client's round latency is scaled up
  kUpdateCorruption = 3,   // client's weight update turns NaN / noisy
  kTxRevert = 4,           // contract call reverts (not retryable)
  kTxGasExhaustion = 5,    // call runs out of gas (transient, retryable)
  kTxSubmitFailure = 6,    // tx never reaches the chain (transient, retryable)
  kSolverPerturbation = 7, // CGBD primal subproblem diverges numerically
  kProcessCrash = 8,       // whole process dies abruptly (std::_Exit, no cleanup)
  kPhaseHang = 9,          // pipeline point blocks until cancelled (watchdog tests)

  // Adversarial (Byzantine) silo behaviours. Unlike kUpdateCorruption these
  // produce finite, statistically-plausible updates that sail past the NaN
  // quarantine — only a robust aggregator (fl/robust_agg.h) blunts them.
  kSignFlip = 10,          // silo submits the negated model delta
  kScaleAttack = 11,       // silo amplifies its delta by a factor
  kFreeRide = 12,          // silo skips training and resubmits the global model
  kCollude = 13,           // k silos submit one shared crafted update
};

/// Short stable name ("dropout", "revert", ...) used in metrics and logs.
const char* fault_kind_name(FaultKind kind);

/// Sentinel target matching every client/org index.
inline constexpr std::uint64_t kAnyFaultTarget = ~0ULL;

/// One scheduled fault. `round` is the FL round for client faults, the call
/// index for chain faults, and the iteration for solver faults. `magnitude`
/// overrides the plan-wide default (straggler scale / noise stddev); 0 keeps
/// the default.
struct FaultEvent {
  FaultKind kind = FaultKind::kClientDropout;
  std::uint64_t round = 0;
  std::uint64_t target = kAnyFaultTarget;
  double magnitude = 0.0;
};

/// The full fault schedule of a run. Rates are per-(round, target) Bernoulli
/// probabilities in [0, 1]; explicit events fire unconditionally on top.
/// A default-constructed plan is the all-zero plan: every query returns
/// "no fault" and pipelines behave bit-identically to a fault-free build.
struct FaultPlan {
  std::uint64_t seed = 1;

  double dropout_rate = 0.0;
  double straggler_rate = 0.0;
  double straggler_scale = 3.0;  // latency multiplier when a straggle fires
  double corrupt_rate = 0.0;
  double corrupt_noise = 0.0;    // stddev of additive noise; 0 = NaN poison
  double revert_rate = 0.0;
  double gas_exhaustion_rate = 0.0;
  double submit_failure_rate = 0.0;
  double solver_perturb_rate = 0.0;

  // Adversary blocks. Counts assign the lowest-indexed silos to each attack —
  // colluders first (they need shared identities), then sign-flippers,
  // amplifiers, free-riders — so membership is a pure function of the plan
  // and never depends on the population size. Per-(round, target) events of
  // the same kinds fire on top and override the block assignment.
  std::uint64_t collude_silos = 0;
  std::uint64_t signflip_silos = 0;
  std::uint64_t scale_silos = 0;
  std::uint64_t freeride_silos = 0;
  double scale_factor = 8.0;   // delta amplification when a scale attack fires
  double collude_shift = 4.0;  // stddev of the colluders' shared crafted delta

  std::vector<FaultEvent> events;

  /// True when no rate is positive, no adversary block is populated, and no
  /// event is scheduled.
  [[nodiscard]] bool empty() const;

  /// True when any adversarial block or event (signflip/scale/freeride/
  /// collude) is present — the trigger for the session deviation audit.
  [[nodiscard]] bool has_attacks() const;

  /// One-line human-readable summary ("drop:0.2 revert:0.1 seed:7").
  [[nodiscard]] std::string summary() const;

  /// Round-trippable `parse_fault_plan` spec of this plan (rates plus the
  /// spec-expressible crash:/hang: events; programmatic events of other kinds
  /// have no spec syntax and are omitted). The server registry stores this so
  /// a re-attached session replays the exact schedule it was admitted with.
  /// `include_crashes=false` additionally drops crash events — a resumed
  /// session must not re-fire the crash it already died from.
  [[nodiscard]] std::string spec_string(bool include_crashes = true) const;
};

/// The accepted `faults=` grammar, echoed verbatim in every parse error so a
/// mistyped spec is self-diagnosing (and tests can assert the message).
extern const char kFaultGrammar[];

/// Parses the CLI `faults=` spec: comma-separated `key:value` pairs with keys
///   seed, drop, straggle, scale, corrupt, noise, revert, gas, submit, solver,
///   crash, hang, signflip, amplify, amplifyx, freeride, collude, colludex
/// e.g. "drop:0.2,straggle:0.1,scale:4,revert:0.05,seed:7". `crash:N`
/// schedules a process crash at pipeline point N (an FL round, CGBD
/// iteration, or session phase — whichever crash-eligible point the run
/// reaches first); repeat the key for multiple points. `hang:N` blocks the
/// session at phase point N until its cancel token fires (see
/// hang_if_scheduled) — the deterministic stand-in for a wedged solve that
/// watchdog tests need. `signflip:k` / `amplify:k` / `freeride:k` /
/// `collude:k` make the k lowest-indexed silos adversarial (the issue's
/// `scale:<x>` attack is spelled `amplify` because `scale` has meant the
/// straggler latency multiplier since PR 4); `amplifyx:x` / `colludex:x` set
/// the attack magnitudes. Unknown keys, malformed numbers, and out-of-range
/// values are errors that echo the offending token plus kFaultGrammar.
Result<FaultPlan> parse_fault_plan(const std::string& spec);

/// Exit code used by injected crashes so the kill-and-resume harness can tell
/// an injected death from an ordinary failure.
inline constexpr int kCrashExitCode = 86;

class FaultInjector;

/// Thrown instead of std::_Exit when a CrashContainmentScope is active (the
/// server contains injected crashes to the offending session). Derives from
/// std::exception only — a contained crash must never be swallowed by the
/// session's own std::runtime_error recovery paths.
class InjectedCrash : public std::exception {
 public:
  explicit InjectedCrash(std::uint64_t point) : point_(point) {}
  [[nodiscard]] const char* what() const noexcept override {
    return "injected process crash (contained)";
  }
  [[nodiscard]] std::uint64_t point() const { return point_; }

 private:
  std::uint64_t point_;
};

/// While alive on a thread, crash faults on that thread throw InjectedCrash
/// instead of killing the process. The server wraps each session worker in
/// one so `crash:N` plans exercise the same durable-checkpoint instants as the
/// CLI kill-and-resume suite without taking the daemon down. Scopes nest;
/// containment stays active until the outermost scope dies.
class CrashContainmentScope {
 public:
  CrashContainmentScope();
  ~CrashContainmentScope();
  CrashContainmentScope(const CrashContainmentScope&) = delete;
  CrashContainmentScope& operator=(const CrashContainmentScope&) = delete;

  /// True when any scope is alive on the calling thread.
  static bool active();
};

/// Thrown by check_cancelled / hang_if_scheduled when a cancel token fires.
/// Session phases let it propagate to the caller that owns the token (the
/// server watchdog or drain path); it is not a session failure mode.
class OperationCancelled : public std::exception {
 public:
  [[nodiscard]] const char* what() const noexcept override {
    return "operation cancelled";
  }
};

/// Throws OperationCancelled when the token is set. Null tokens never fire,
/// so standalone pipelines pay one branch.
void check_cancelled(const std::atomic<bool>* cancel);

/// Dies via std::_Exit(kCrashExitCode) — no destructors, no stream flushes,
/// exactly like a SIGKILL from the checkpoint subsystem's point of view —
/// when the injector schedules a crash at `point`. Null/inert injectors are
/// no-ops. Pipelines call this at the instants right after a checkpoint
/// becomes durable. Under a CrashContainmentScope the death becomes a thrown
/// InjectedCrash instead.
void crash_if_scheduled(const FaultInjector* injector, std::uint64_t point);

/// Blocks at `point` until `cancel` fires (then throws OperationCancelled)
/// when the injector schedules a hang there. A hang with a null cancel token
/// is a no-op rather than a genuine deadlock: only supervised runs (the
/// server, watchdog tests) can ever un-wedge one, so only they experience it.
/// Polls the token at millisecond granularity — timing never feeds back into
/// any deterministic output.
void hang_if_scheduled(const FaultInjector* injector, std::uint64_t point,
                       const std::atomic<bool>* cancel);

/// Outcome of a corruption query.
struct CorruptionSpec {
  bool corrupt = false;
  bool use_nan = true;          // false: additive Gaussian noise instead
  double noise_stddev = 0.0;    // meaningful when !use_nan
};

/// Outcome of an adversarial-update query. When `attack` is set, `kind` is
/// one of kSignFlip / kScaleAttack / kFreeRide / kCollude and `magnitude` is
/// the attack parameter (flip strength, amplification factor, or the crafted
/// delta's stddev; unused for freeride).
struct AttackSpec {
  bool attack = false;
  FaultKind kind = FaultKind::kSignFlip;
  double magnitude = 0.0;
};

/// Stateless oracle over a FaultPlan. All queries are const and pure; see the
/// determinism contract above.
class FaultInjector {
 public:
  /// Inert injector (all-zero plan): every query answers "no fault".
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  [[nodiscard]] bool enabled() const { return !plan_.empty(); }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  // ----- federated-learning faults (keyed by round, client) -----

  [[nodiscard]] bool drop_client(std::uint64_t round, std::uint64_t client) const;

  /// Latency multiplier for this client's round; 1.0 when no straggle fires.
  [[nodiscard]] double straggler_scale(std::uint64_t round, std::uint64_t client) const;

  [[nodiscard]] CorruptionSpec corrupt_update(std::uint64_t round, std::uint64_t client) const;

  /// The seeded noise stream for a corruption at (round, client); stateless,
  /// so the noise a client receives never depends on other clients.
  [[nodiscard]] Rng corruption_rng(std::uint64_t round, std::uint64_t client) const;

  /// Which adversarial behaviour (if any) this silo exhibits this round.
  /// Explicit events override the static adversary blocks; block membership
  /// itself is round-independent, modelling persistently-deviating silos.
  [[nodiscard]] AttackSpec attack_update(std::uint64_t round, std::uint64_t client) const;

  /// The colluders' shared crafted-delta stream for a round. Keyed by round
  /// only — every colluding silo draws the identical stream and therefore
  /// submits byte-identical updates, which is what makes collusion harder for
  /// distance-based defenses (Krum) than independent noise.
  [[nodiscard]] Rng collusion_rng(std::uint64_t round) const;

  // ----- chain faults (keyed by the client-side call index) -----

  [[nodiscard]] bool fail_submission(std::uint64_t call_index) const;
  [[nodiscard]] bool exhaust_gas(std::uint64_t call_index) const;
  [[nodiscard]] bool revert_call(std::uint64_t call_index) const;

  // ----- solver faults (keyed by the CGBD iteration) -----

  [[nodiscard]] bool perturb_solver(std::uint64_t iteration) const;

  // ----- crash faults (keyed by a pipeline-specific checkpoint point) -----

  /// True when a `crash:N` event is scheduled for this point. Crashes are
  /// event-only (no Bernoulli rate): a random crash schedule could never be
  /// compared against an uninterrupted baseline.
  [[nodiscard]] bool crash_now(std::uint64_t point) const;

  /// True when a `hang:N` event is scheduled for this point. Hangs are
  /// event-only for the same reason crashes are.
  [[nodiscard]] bool hang_now(std::uint64_t point) const;

 private:
  [[nodiscard]] bool decide(FaultKind kind, std::uint64_t round, std::uint64_t target,
                            double rate) const;
  [[nodiscard]] const FaultEvent* find_event(FaultKind kind, std::uint64_t round,
                                             std::uint64_t target) const;

  FaultPlan plan_{};
};

}  // namespace tradefl
