// The GEMM backend's contract: numerical agreement with the naive seed
// kernels, exact bit-identity across pool sizes, im2col/col2im adjointness,
// and Conv2D/Dense producing the same results under either backend.
#include "fl/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "fl/layers.h"

namespace tradefl::fl {
namespace {

std::vector<float> random_values(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(count);
  for (float& v : out) v = static_cast<float>(rng.normal(0.0, 1.0));
  return out;
}

void reference_nn(std::size_t m, std::size_t n, std::size_t k, const std::vector<float>& a,
                  const std::vector<float>& b, std::vector<float>& c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[i * k + kk]) * static_cast<double>(b[kk * n + j]);
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

TEST(Gemm, NnMatchesReference) {
  const std::size_t m = 17, n = 23, k = 71;  // spans multiple k-tiles (64)
  const auto a = random_values(m * k, 1);
  const auto b = random_values(k * n, 2);
  std::vector<float> expected(m * n), actual(m * n);
  reference_nn(m, n, k, a, b, expected);
  gemm::sgemm_nn(m, n, k, a.data(), k, b.data(), n, /*accumulate=*/false, actual.data(), n);
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-4f * (1.0f + std::fabs(expected[i])));
  }
}

TEST(Gemm, NtMatchesReference) {
  const std::size_t m = 9, n = 13, k = 65;
  const auto a = random_values(m * k, 3);
  const auto bt = random_values(n * k, 4);  // B stored (n, k)
  std::vector<float> b(k * n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t kk = 0; kk < k; ++kk) b[kk * n + j] = bt[j * k + kk];
  }
  std::vector<float> expected(m * n), actual(m * n);
  reference_nn(m, n, k, a, b, expected);
  gemm::sgemm_nt(m, n, k, a.data(), k, bt.data(), k, /*accumulate=*/false, actual.data(), n);
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-4f * (1.0f + std::fabs(expected[i])));
  }
}

TEST(Gemm, TnMatchesReferenceAndAccumulates) {
  const std::size_t m = 11, n = 7, k = 70;
  const auto at = random_values(k * m, 5);  // A stored (k, m)
  const auto b = random_values(k * n, 6);
  std::vector<float> a(m * k);
  for (std::size_t kk = 0; kk < k; ++kk) {
    for (std::size_t i = 0; i < m; ++i) a[i * k + kk] = at[kk * m + i];
  }
  std::vector<float> expected(m * n), actual(m * n, 0.5f);
  reference_nn(m, n, k, a, b, expected);
  gemm::sgemm_tn(m, n, k, at.data(), m, b.data(), n, /*accumulate=*/true, actual.data(), n);
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i] + 0.5f, 1e-4f * (1.0f + std::fabs(expected[i])));
  }
}

TEST(Gemm, BitIdenticalAcrossPoolSizes) {
  const std::size_t m = 33, n = 29, k = 130;
  const auto a = random_values(m * k, 7);
  const auto b = random_values(k * n, 8);
  std::vector<float> serial(m * n), threaded(m * n);
  gemm::sgemm_nn(m, n, k, a.data(), k, b.data(), n, false, serial.data(), n, nullptr);
  ThreadPool pool(4);
  gemm::sgemm_nn(m, n, k, a.data(), k, b.data(), n, false, threaded.data(), n, &pool);
  EXPECT_EQ(serial, threaded);  // exact: rows partition, fixed ascending-k order
}

TEST(Gemm, Im2colExtractsPatchesWithZeroPadding) {
  // 1 channel, 3x3 image, 3x3 kernel, pad 1, stride 1 -> out 3x3.
  gemm::ConvGeom geom;
  geom.channels = 1;
  geom.in_h = geom.in_w = 3;
  geom.kernel = 3;
  geom.stride = 1;
  geom.pad = 1;
  geom.out_h = geom.out_w = 3;
  const std::vector<float> image{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> col(geom.patch() * geom.out_area());
  gemm::im2col(image.data(), geom, col.data());
  const auto at = [&](std::size_t row, std::size_t column) {
    return col[row * geom.out_area() + column];
  };
  // Output position (0, 0): kernel center (ky=1, kx=1) reads pixel (0, 0).
  EXPECT_EQ(at(1 * 3 + 1, 0), 1.0f);
  // Top-left kernel tap at output (0, 0) falls on padding.
  EXPECT_EQ(at(0, 0), 0.0f);
  // Output center (1, 1): center tap reads pixel (1, 1) = 5.
  EXPECT_EQ(at(1 * 3 + 1, 4), 5.0f);
  // Output (2, 2): top-left tap reads pixel (1, 1) = 5.
  EXPECT_EQ(at(0, 8), 5.0f);
}

TEST(Gemm, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im_add(y)> for all x, y (adjoint identity).
  gemm::ConvGeom geom;
  geom.channels = 2;
  geom.in_h = 5;
  geom.in_w = 4;
  geom.kernel = 3;
  geom.stride = 2;
  geom.pad = 1;
  geom.out_h = (geom.in_h + 2 * geom.pad - geom.kernel) / geom.stride + 1;
  geom.out_w = (geom.in_w + 2 * geom.pad - geom.kernel) / geom.stride + 1;
  const std::size_t image_size = geom.channels * geom.in_h * geom.in_w;
  const std::size_t col_size = geom.patch() * geom.out_area();
  const auto x = random_values(image_size, 9);
  const auto y = random_values(col_size, 10);

  std::vector<float> col(col_size);
  gemm::im2col(x.data(), geom, col.data());
  std::vector<float> folded(image_size, 0.0f);
  gemm::col2im_add(y.data(), geom, folded.data());

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < col_size; ++i) {
    lhs += static_cast<double>(col[i]) * static_cast<double>(y[i]);
  }
  for (std::size_t i = 0; i < image_size; ++i) {
    rhs += static_cast<double>(x[i]) * static_cast<double>(folded[i]);
  }
  EXPECT_NEAR(lhs, rhs, 1e-3 * (1.0 + std::fabs(lhs)));
}

struct BackendRestorer {
  ~BackendRestorer() { set_kernel_backend(KernelBackend::kGemm); }
};

/// Runs forward + backward through `layer` and returns (output, grad_input,
/// parameter gradients) for backend comparisons.
struct PassResult {
  Tensor output;
  Tensor grad_input;
  std::vector<std::vector<float>> param_grads;
};

PassResult run_pass(Layer& layer, const Tensor& input) {
  PassResult result;
  result.output = layer.forward(input, /*training=*/true);
  Tensor grad(result.output.shape());
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad[i] = 0.01f * static_cast<float>(i % 7) - 0.02f;
  }
  result.grad_input = layer.backward(grad);
  for (Param* param : layer.parameters()) {
    result.param_grads.emplace_back(param->grad.data(),
                                    param->grad.data() + param->grad.size());
  }
  return result;
}

void expect_near_tensors(const Tensor& a, const Tensor& b, float tolerance) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tolerance * (1.0f + std::fabs(a[i]))) << "index " << i;
  }
}

void compare_conv_backends(std::size_t in_channels, std::size_t out_channels,
                           std::size_t kernel, std::size_t stride, std::size_t pad,
                           std::size_t groups) {
  BackendRestorer restore;
  Rng rng_a(21), rng_b(21);
  Conv2D naive(in_channels, out_channels, kernel, stride, pad, groups, rng_a);
  Conv2D blocked(in_channels, out_channels, kernel, stride, pad, groups, rng_b);
  Tensor input({4, in_channels, 9, 8});
  const auto values = random_values(input.size(), 22);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = values[i];

  set_kernel_backend(KernelBackend::kNaive);
  const PassResult expected = run_pass(naive, input);
  set_kernel_backend(KernelBackend::kGemm);
  const PassResult actual = run_pass(blocked, input);

  expect_near_tensors(actual.output, expected.output, 1e-4f);
  expect_near_tensors(actual.grad_input, expected.grad_input, 1e-4f);
  ASSERT_EQ(actual.param_grads.size(), expected.param_grads.size());
  for (std::size_t p = 0; p < actual.param_grads.size(); ++p) {
    ASSERT_EQ(actual.param_grads[p].size(), expected.param_grads[p].size());
    for (std::size_t i = 0; i < actual.param_grads[p].size(); ++i) {
      EXPECT_NEAR(actual.param_grads[p][i], expected.param_grads[p][i],
                  1e-4f * (1.0f + std::fabs(expected.param_grads[p][i])));
    }
  }
}

TEST(GemmConv2D, BackendsAgreeStandard) { compare_conv_backends(3, 8, 3, 1, 1, 1); }

TEST(GemmConv2D, BackendsAgreeStrided) { compare_conv_backends(4, 6, 3, 2, 1, 1); }

TEST(GemmConv2D, BackendsAgreeGrouped) { compare_conv_backends(6, 8, 3, 1, 1, 2); }

TEST(GemmConv2D, BackendsAgreeDepthwise) { compare_conv_backends(5, 5, 3, 1, 1, 5); }

TEST(GemmConv2D, BackendsAgree1x1) { compare_conv_backends(4, 7, 1, 1, 0, 1); }

TEST(GemmDense, BackendsAgree) {
  BackendRestorer restore;
  Rng rng_a(31), rng_b(31);
  Dense naive(37, 19, rng_a);
  Dense blocked(37, 19, rng_b);
  Tensor input({8, 37});
  const auto values = random_values(input.size(), 32);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = values[i];

  set_kernel_backend(KernelBackend::kNaive);
  const PassResult expected = run_pass(naive, input);
  set_kernel_backend(KernelBackend::kGemm);
  const PassResult actual = run_pass(blocked, input);

  expect_near_tensors(actual.output, expected.output, 1e-4f);
  expect_near_tensors(actual.grad_input, expected.grad_input, 1e-4f);
  for (std::size_t p = 0; p < actual.param_grads.size(); ++p) {
    for (std::size_t i = 0; i < actual.param_grads[p].size(); ++i) {
      EXPECT_NEAR(actual.param_grads[p][i], expected.param_grads[p][i],
                  1e-4f * (1.0f + std::fabs(expected.param_grads[p][i])));
    }
  }
}

TEST(GemmConv2D, ForwardBitIdenticalAcrossPoolSizes) {
  Rng rng(41);
  Conv2D conv(4, 8, 3, 1, 1, 1, rng);
  Tensor input({6, 4, 10, 10});
  const auto values = random_values(input.size(), 42);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = values[i];

  set_global_threads(1);
  const Tensor serial = conv.forward(input, /*training=*/true);
  set_global_threads(4);
  const Tensor threaded = conv.forward(input, /*training=*/true);
  set_global_threads(1);

  ASSERT_EQ(serial.shape(), threaded.shape());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "index " << i;
  }
}

}  // namespace
}  // namespace tradefl::fl
