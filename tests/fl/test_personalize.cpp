// Personalization (the paper's Sec. VII future work): local fine-tuning of
// the trained global model per organization.
#include "fl/personalize.h"

#include <gtest/gtest.h>

#include "fl/loss.h"

namespace tradefl::fl {
namespace {

struct Fixture {
  DatasetSpec concept_spec = DatasetSpec::builtin(DatasetKind::kFmnistLike, 5);
  std::vector<Dataset> locals;
  Dataset test_set;
  ModelSpec model;

  Fixture() : test_set(concept_spec.with_sample_seed(999), 200) {
    for (std::size_t i = 0; i < 3; ++i) {
      locals.emplace_back(concept_spec.with_sample_seed(10 + i), 150);
    }
    model.kind = ModelKind::kMlp;
    model.channels = concept_spec.channels;
    model.height = concept_spec.height;
    model.width = concept_spec.width;
    model.classes = concept_spec.classes;
    model.seed = 3;
  }

  std::vector<FedClient> clients(std::vector<double> fractions) {
    std::vector<FedClient> out;
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      out.push_back(FedClient{&locals[i], fractions[i], 100 + i});
    }
    return out;
  }

  FedAvgResult train(const std::vector<FedClient>& cs) {
    FedAvgOptions options;
    options.rounds = 6;
    options.local_epochs = 2;
    return train_fedavg(model, cs, test_set, options);
  }
};

TEST(Personalize, ProducesOneModelPerClient) {
  Fixture fixture;
  const auto clients = fixture.clients({1.0, 0.5, 0.3});
  const auto federated = fixture.train(clients);
  const auto result = personalize(fixture.model, federated, clients, fixture.test_set);
  ASSERT_EQ(result.models.size(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(result.models[c].client_index, c);
    EXPECT_EQ(result.models[c].weights.size(), federated.final_weights.size());
  }
}

TEST(Personalize, ImprovesLocalFit) {
  // Fine-tuning on local data must raise accuracy on that local data above
  // the plain global model's local accuracy — the point of personalization.
  Fixture fixture;
  const auto clients = fixture.clients({1.0, 1.0, 1.0});
  const auto federated = fixture.train(clients);
  PersonalizeOptions options;
  options.epochs = 3;
  const auto result = personalize(fixture.model, federated, clients, fixture.test_set, options);
  // Global model's accuracy on client 0's local subset:
  Net global = build_model(fixture.model);
  global.set_weights(federated.final_weights);
  const auto subset = contributed_indices(fixture.locals[0], 1.0, 100);
  std::size_t correct = 0;
  for (std::size_t start = 0; start < subset.size(); start += 64) {
    const std::size_t end = std::min(subset.size(), start + 64);
    std::vector<std::size_t> idx(subset.begin() + static_cast<std::ptrdiff_t>(start),
                                 subset.begin() + static_cast<std::ptrdiff_t>(end));
    const Tensor logits = global.forward(fixture.locals[0].batch(idx), false);
    correct += softmax_cross_entropy(logits, fixture.locals[0].batch_labels(idx)).correct;
  }
  const double global_local_acc =
      static_cast<double>(correct) / static_cast<double>(subset.size());
  EXPECT_GE(result.models[0].local_accuracy, global_local_acc - 1e-9);
}

TEST(Personalize, PersonalizedWeightsDiffer) {
  Fixture fixture;
  const auto clients = fixture.clients({1.0, 1.0, 1.0});
  const auto federated = fixture.train(clients);
  const auto result = personalize(fixture.model, federated, clients, fixture.test_set);
  EXPECT_NE(result.models[0].weights, federated.final_weights);
  EXPECT_NE(result.models[0].weights, result.models[1].weights);
}

TEST(Personalize, ZeroContributorKeepsGlobalModel) {
  Fixture fixture;
  const auto clients = fixture.clients({1.0, 1.0, 0.0});
  const auto federated = fixture.train(clients);
  const auto result = personalize(fixture.model, federated, clients, fixture.test_set);
  EXPECT_EQ(result.models[2].weights, federated.final_weights);
  EXPECT_DOUBLE_EQ(result.models[2].local_accuracy, 0.0);
}

TEST(Personalize, ReportsGlobalBaseline) {
  Fixture fixture;
  const auto clients = fixture.clients({1.0, 0.5, 0.5});
  const auto federated = fixture.train(clients);
  const auto result = personalize(fixture.model, federated, clients, fixture.test_set);
  EXPECT_NEAR(result.global_model_accuracy, federated.final_accuracy, 1e-9);
  EXPECT_GE(result.mean_local_accuracy, 0.0);
  EXPECT_GE(result.mean_global_accuracy, 0.0);
}

TEST(Personalize, ValidatesInputs) {
  Fixture fixture;
  const auto clients = fixture.clients({1.0, 1.0, 1.0});
  const auto federated = fixture.train(clients);
  FedAvgResult empty;
  EXPECT_THROW(personalize(fixture.model, empty, clients, fixture.test_set),
               std::invalid_argument);
  PersonalizeOptions bad;
  bad.epochs = 0;
  EXPECT_THROW(personalize(fixture.model, federated, clients, fixture.test_set, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace tradefl::fl
