// Byzantine-resilient aggregation: rule semantics, the agg= grammar, the
// snapshot codec, attack transformations, and the thread-count bit-identity
// contract (threads=1 vs threads=4 must agree byte for byte).
#include "fl/robust_agg.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/parallel.h"
#include "common/rng.h"

namespace tradefl::fl {
namespace {

std::vector<std::vector<float>> make_updates(std::size_t n, std::size_t dim,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> updates(n);
  for (auto& update : updates) {
    update.reserve(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      update.push_back(static_cast<float>(rng.normal()));
    }
  }
  return updates;
}

std::vector<ClientUpdate> as_client_updates(const std::vector<std::vector<float>>& storage,
                                            std::vector<double> weights = {}) {
  std::vector<ClientUpdate> updates;
  for (std::size_t i = 0; i < storage.size(); ++i) {
    const double weight = i < weights.size() ? weights[i] : 1.0;
    updates.push_back(ClientUpdate{&storage[i], weight, i});
  }
  return updates;
}

// ---- agg= grammar ----

TEST(RobustAggParse, DefaultsAndRoundTrips) {
  const char* specs[] = {"mean",   "median",      "trimmed:2",
                         "krum:3", "multikrum:1", "normclip:0.5"};
  for (const char* text : specs) {
    const auto parsed = parse_aggregator(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed.value().spec_string(), text);
  }
  EXPECT_EQ(parse_aggregator("trimmed").value().trim, 1u);
  EXPECT_EQ(parse_aggregator("krum").value().trim, 1u);
  EXPECT_DOUBLE_EQ(parse_aggregator("normclip").value().clip_norm, 1.0);
  EXPECT_EQ(parse_aggregator("mean").value().kind, AggregatorKind::kWeightedMean);
}

TEST(RobustAggParse, ErrorsEchoTokenAndGrammar) {
  const auto unknown = parse_aggregator("inverse");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.error().message.find("'inverse'"), std::string::npos);
  EXPECT_NE(unknown.error().message.find("agg=mean | median | trimmed[:f]"),
            std::string::npos);

  const auto bad_count = parse_aggregator("trimmed:x");
  ASSERT_FALSE(bad_count.ok());
  EXPECT_NE(bad_count.error().message.find("'trimmed:x'"), std::string::npos);

  const auto bad_clip = parse_aggregator("normclip:0");
  ASSERT_FALSE(bad_clip.ok());
  EXPECT_NE(bad_clip.error().message.find("'normclip:0'"), std::string::npos);

  EXPECT_FALSE(parse_aggregator("mean:2").ok());
  EXPECT_FALSE(parse_aggregator("").ok());
  EXPECT_FALSE(parse_aggregator("trimmed:-1").ok());
}

// ---- snapshot codec ----

TEST(RobustAggCodec, RoundTripsAndFailsClosedOnBadKind) {
  AggregatorSpec spec;
  spec.kind = AggregatorKind::kTrimmedMean;
  spec.trim = 3;
  spec.clip_norm = 0.25;
  SnapshotWriter writer;
  put_aggregator_spec(writer, spec);
  SnapshotReader reader(writer.payload());
  EXPECT_EQ(get_aggregator_spec(reader), spec);
  reader.require_exhausted();

  SnapshotWriter bad;
  bad.put_u32(99);  // no such AggregatorKind
  bad.put_u64(1);
  bad.put_f64(1.0);
  SnapshotReader bad_reader(bad.payload());
  EXPECT_THROW((void)get_aggregator_spec(bad_reader), SnapshotError);
}

// ---- rule semantics ----

TEST(RobustAggSemantics, WeightedMeanMatchesHistoricalFold) {
  const auto storage = make_updates(4, 33, 7);
  const std::vector<double> weights = {3.0, 1.0, 2.0, 4.0};
  const std::vector<float> previous(33, 0.0F);
  const auto outcome = aggregate_updates(AggregatorSpec{}, as_client_updates(storage, weights),
                                         previous, nullptr);
  // Reference: the exact pre-refactor Eq. (3) loop — per-coordinate double
  // accumulation in client order.
  for (std::size_t i = 0; i < 33; ++i) {
    double acc = 0.0;
    double total = 0.0;
    for (std::size_t k = 0; k < storage.size(); ++k) {
      acc += weights[k] * static_cast<double>(storage[k][i]);
      total += weights[k];
    }
    EXPECT_EQ(outcome.weights[i], static_cast<float>(acc / total)) << i;
  }
  EXPECT_EQ(outcome.rejected, 0u);
  double influence = 0.0;
  for (double share : outcome.influence) influence += share;
  EXPECT_NEAR(influence, 1.0, 1e-12);
}

TEST(RobustAggSemantics, MedianAndTrimmedIgnoreAnOutlier) {
  std::vector<std::vector<float>> storage = {{1.0F, 2.0F}, {1.1F, 2.1F}, {0.9F, 1.9F},
                                             {100.0F, -100.0F}};
  const std::vector<float> previous(2, 0.0F);
  for (const char* rule : {"median", "trimmed:1"}) {
    const auto spec = parse_aggregator(rule).value();
    const auto outcome =
        aggregate_updates(spec, as_client_updates(storage), previous, nullptr);
    EXPECT_NEAR(outcome.weights[0], 1.0, 0.2) << rule;
    EXPECT_NEAR(outcome.weights[1], 2.0, 0.2) << rule;
    // The outlier supplied no coordinate mass.
    EXPECT_EQ(outcome.influence[3], 0.0) << rule;
    EXPECT_EQ(outcome.rejected, 1u) << rule;
    EXPECT_FALSE(outcome.fallback) << rule;
  }
}

TEST(RobustAggSemantics, KrumRejectsTheIsolatedUpdate) {
  auto storage = make_updates(5, 16, 11);
  for (float& value : storage[4]) value += 50.0F;  // far from the honest cluster
  const std::vector<float> previous(16, 0.0F);
  const auto krum = aggregate_updates(parse_aggregator("krum:1").value(),
                                      as_client_updates(storage), previous, nullptr);
  // Krum selects exactly one honest update.
  EXPECT_EQ(krum.rejected, 4u);
  EXPECT_EQ(krum.influence[4], 0.0);
  std::size_t selected = 0;
  for (std::size_t k = 0; k < 5; ++k) {
    if (krum.influence[k] > 0.0) {
      ++selected;
      EXPECT_EQ(krum.weights, storage[k]);
    }
  }
  EXPECT_EQ(selected, 1u);

  const auto multi = aggregate_updates(parse_aggregator("multikrum:1").value(),
                                       as_client_updates(storage), previous, nullptr);
  // Multi-Krum keeps n - f - 2 = 2 updates; the outlier is not among them.
  EXPECT_EQ(multi.influence[4], 0.0);
  EXPECT_EQ(multi.rejected, 3u);
}

TEST(RobustAggSemantics, NormClipCapsTheDelta) {
  const std::vector<float> previous = {1.0F, 1.0F, 1.0F};
  std::vector<std::vector<float>> storage = {{1.1F, 1.0F, 1.0F}, {31.0F, 41.0F, 1.0F}};
  const auto spec = parse_aggregator("normclip:0.5").value();
  const auto outcome =
      aggregate_updates(spec, as_client_updates(storage), previous, nullptr);
  EXPECT_EQ(outcome.clipped, 1u);
  // Both merged deltas now have norm <= 0.5, so the blended model sits within
  // 0.5 of the previous global.
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < previous.size(); ++i) {
    const double delta = static_cast<double>(outcome.weights[i]) - previous[i];
    norm_sq += delta * delta;
  }
  EXPECT_LE(std::sqrt(norm_sq), 0.5 + 1e-6);
}

TEST(RobustAggSemantics, DegenerateSurvivorSetFallsBackToMedian) {
  const auto storage = make_updates(2, 8, 3);
  const std::vector<float> previous(8, 0.0F);
  const auto trimmed = aggregate_updates(parse_aggregator("trimmed:1").value(),
                                         as_client_updates(storage), previous, nullptr);
  EXPECT_TRUE(trimmed.fallback);  // n = 2 <= 2f
  const auto krum = aggregate_updates(parse_aggregator("krum:1").value(),
                                      as_client_updates(storage), previous, nullptr);
  EXPECT_TRUE(krum.fallback);  // n = 2 < f + 3
  const auto median = aggregate_updates(parse_aggregator("median").value(),
                                        as_client_updates(storage), previous, nullptr);
  EXPECT_EQ(trimmed.weights, median.weights);
  EXPECT_EQ(krum.weights, median.weights);
}

TEST(RobustAggSemantics, RejectsDegenerateInput) {
  const std::vector<float> previous(4, 0.0F);
  EXPECT_THROW((void)aggregate_updates(AggregatorSpec{}, {}, previous, nullptr),
               std::invalid_argument);
  const std::vector<float> update(4, 1.0F);
  EXPECT_THROW((void)aggregate_updates(AggregatorSpec{}, {ClientUpdate{&update, 0.0, 0}},
                                       previous, nullptr),
               std::invalid_argument);
  const std::vector<float> short_update(3, 1.0F);
  EXPECT_THROW((void)aggregate_updates(
                   AggregatorSpec{},
                   {ClientUpdate{&update, 1.0, 0}, ClientUpdate{&short_update, 1.0, 1}},
                   previous, nullptr),
               std::invalid_argument);
}

// ---- the shared ordered weighted-sum helper ----

TEST(RobustAggHelper, OrderedWeightedMeanToleratesAliasing) {
  std::vector<float> global = {1.0F, 2.0F, 3.0F};
  const std::vector<float> local = {3.0F, 2.0F, 1.0F};
  std::vector<float> expected(3);
  ordered_weighted_mean({&global, &local}, {0.75, 0.25}, nullptr, expected);
  // FedAsync's in-place merge: out aliases values[0].
  ordered_weighted_mean({&global, &local}, {0.75, 0.25}, nullptr, global);
  EXPECT_EQ(global, expected);
}

// ---- thread-count bit-identity (the repo-wide determinism contract) ----

TEST(RobustAggDeterminism, EveryRuleIsThreadCountInvariant) {
  // Dim above the coordinate grain so threads=4 actually splits the work.
  const auto storage = make_updates(7, 9000, 2024);
  const std::vector<double> weights = {1.0, 2.0, 3.0, 1.5, 2.5, 0.5, 4.0};
  std::vector<float> previous(9000);
  Rng rng(99);
  for (float& value : previous) value = static_cast<float>(rng.normal());

  ThreadPool pool(4);
  for (const char* rule :
       {"mean", "median", "trimmed:2", "krum:2", "multikrum:2", "normclip:2.5"}) {
    const auto spec = parse_aggregator(rule).value();
    const auto serial =
        aggregate_updates(spec, as_client_updates(storage, weights), previous, nullptr);
    const auto parallel =
        aggregate_updates(spec, as_client_updates(storage, weights), previous, &pool);
    ASSERT_EQ(serial.weights.size(), parallel.weights.size()) << rule;
    EXPECT_EQ(0, std::memcmp(serial.weights.data(), parallel.weights.data(),
                             serial.weights.size() * sizeof(float)))
        << rule;
    EXPECT_EQ(serial.influence, parallel.influence) << rule;
    EXPECT_EQ(serial.rejected, parallel.rejected) << rule;
    EXPECT_EQ(serial.clipped, parallel.clipped) << rule;
  }
}

// ---- adversarial transformations ----

TEST(RobustAggAttack, TransformationsMatchTheirDefinitions) {
  FaultPlan plan;
  plan.seed = 5;
  plan.collude_silos = 2;
  const FaultInjector faults(plan);

  const std::vector<float> global = {1.0F, -1.0F, 0.5F};
  const std::vector<float> trained = {1.5F, -0.5F, 1.0F};

  std::vector<float> flipped = trained;
  apply_update_attack(flipped, global, AttackSpec{true, FaultKind::kSignFlip, 1.0}, faults, 0);
  for (std::size_t i = 0; i < global.size(); ++i) {
    EXPECT_FLOAT_EQ(flipped[i], global[i] - (trained[i] - global[i])) << i;
  }

  std::vector<float> amplified = trained;
  apply_update_attack(amplified, global, AttackSpec{true, FaultKind::kScaleAttack, 8.0}, faults,
                      0);
  for (std::size_t i = 0; i < global.size(); ++i) {
    EXPECT_FLOAT_EQ(amplified[i], global[i] + 8.0F * (trained[i] - global[i])) << i;
  }

  std::vector<float> freeride = trained;
  apply_update_attack(freeride, global, AttackSpec{true, FaultKind::kFreeRide, 0.0}, faults, 0);
  EXPECT_EQ(freeride, global);
}

TEST(RobustAggAttack, ColludersSubmitIdenticalBytesPerRound) {
  FaultPlan plan;
  plan.seed = 9;
  plan.collude_silos = 2;
  const FaultInjector faults(plan);
  const std::vector<float> global(32, 0.25F);
  const AttackSpec spec{true, FaultKind::kCollude, 4.0};

  std::vector<float> first(32, 1.0F);
  std::vector<float> second(32, -1.0F);  // different local training result
  apply_update_attack(first, global, spec, faults, 3);
  apply_update_attack(second, global, spec, faults, 3);
  EXPECT_EQ(first, second);  // the coalition speaks with one voice

  std::vector<float> next_round(32, 1.0F);
  apply_update_attack(next_round, global, spec, faults, 4);
  EXPECT_NE(first, next_round);  // but the crafted vector varies per round
}

}  // namespace
}  // namespace tradefl::fl
