#include "fl/net.h"

#include <gtest/gtest.h>

#include "fl/model_zoo.h"

namespace tradefl::fl {
namespace {

ModelSpec tiny_spec(ModelKind kind) {
  ModelSpec spec;
  spec.kind = kind;
  spec.channels = 1;
  spec.height = 8;
  spec.width = 8;
  spec.classes = 4;
  spec.seed = 3;
  spec.base_width = 4;
  return spec;
}

TEST(Net, ForwardShapeForAllZooModels) {
  for (ModelKind kind : {ModelKind::kMlp, ModelKind::kAlexNetLite, ModelKind::kResNet18Lite,
                         ModelKind::kDenseNetLite, ModelKind::kMobileNetLite}) {
    Net net = build_model(tiny_spec(kind));
    Tensor input({2, 1, 8, 8}, 0.1f);
    const Tensor logits = net.forward(input, false);
    EXPECT_EQ(logits.rank(), 2u) << model_name(kind);
    EXPECT_EQ(logits.dim(0), 2u) << model_name(kind);
    EXPECT_EQ(logits.dim(1), 4u) << model_name(kind);
  }
}

TEST(Net, WeightsRoundTrip) {
  Net net = build_model(tiny_spec(ModelKind::kMlp));
  const std::vector<float> original = net.weights();
  EXPECT_EQ(original.size(), net.parameter_count());

  std::vector<float> modified = original;
  for (float& w : modified) w += 1.0f;
  net.set_weights(modified);
  EXPECT_EQ(net.weights(), modified);
  net.set_weights(original);
  EXPECT_EQ(net.weights(), original);
}

TEST(Net, SetWeightsValidatesLength) {
  Net net = build_model(tiny_spec(ModelKind::kMlp));
  std::vector<float> short_vec(net.parameter_count() - 1, 0.0f);
  EXPECT_THROW(net.set_weights(short_vec), std::invalid_argument);
  std::vector<float> long_vec(net.parameter_count() + 1, 0.0f);
  EXPECT_THROW(net.set_weights(long_vec), std::invalid_argument);
}

TEST(Net, SameSeedSameInit) {
  Net a = build_model(tiny_spec(ModelKind::kAlexNetLite));
  Net b = build_model(tiny_spec(ModelKind::kAlexNetLite));
  EXPECT_EQ(a.weights(), b.weights());
  ModelSpec other = tiny_spec(ModelKind::kAlexNetLite);
  other.seed = 99;
  Net c = build_model(other);
  EXPECT_NE(a.weights(), c.weights());
}

TEST(Net, ZeroGradClearsGradients) {
  Net net = build_model(tiny_spec(ModelKind::kMlp));
  Tensor input({2, 1, 8, 8}, 0.3f);
  const Tensor logits = net.forward(input, true);
  Tensor grad(logits.shape(), 1.0f);
  net.backward(grad);
  bool any_nonzero = false;
  for (Param* param : net.parameters()) {
    if (param->grad.max_abs() > 0.0f) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
  net.zero_grad();
  for (Param* param : net.parameters()) EXPECT_FLOAT_EQ(param->grad.max_abs(), 0.0f);
}

TEST(Net, AppendRejectsNull) {
  Net net;
  EXPECT_THROW(net.append(nullptr), std::invalid_argument);
}

TEST(Net, SummaryMentionsLayers) {
  Net net = build_model(tiny_spec(ModelKind::kResNet18Lite));
  const std::string summary = net.summary();
  EXPECT_NE(summary.find("Residual"), std::string::npos);
  EXPECT_NE(summary.find("params"), std::string::npos);
}

TEST(ModelZoo, NamesAndParsing) {
  EXPECT_EQ(model_kind_from_string("resnet18"), ModelKind::kResNet18Lite);
  EXPECT_EQ(model_kind_from_string("AlexNet"), ModelKind::kAlexNetLite);
  EXPECT_EQ(model_kind_from_string("densenet"), ModelKind::kDenseNetLite);
  EXPECT_EQ(model_kind_from_string("mobilenet"), ModelKind::kMobileNetLite);
  EXPECT_EQ(model_kind_from_string("mlp"), ModelKind::kMlp);
  EXPECT_THROW(model_kind_from_string("vgg"), std::invalid_argument);
}

TEST(ModelZoo, ModelsDifferStructurally) {
  // Distinct parameter counts across families (they are not the same net).
  std::set<std::size_t> counts;
  for (ModelKind kind : {ModelKind::kMlp, ModelKind::kAlexNetLite, ModelKind::kResNet18Lite,
                         ModelKind::kDenseNetLite, ModelKind::kMobileNetLite}) {
    counts.insert(build_model(tiny_spec(kind)).parameter_count());
  }
  EXPECT_GE(counts.size(), 4u);
}

TEST(ModelZoo, RejectsTooFewClasses) {
  ModelSpec spec = tiny_spec(ModelKind::kMlp);
  spec.classes = 1;
  EXPECT_THROW(build_model(spec), std::invalid_argument);
}

}  // namespace
}  // namespace tradefl::fl
