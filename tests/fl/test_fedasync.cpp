// Asynchronous training substrate (footnote 2): event-driven staleness-
// discounted merging.
#include "fl/fedasync.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/parallel.h"
#include "common/rng.h"

namespace tradefl::fl {
namespace {

struct Fixture {
  DatasetSpec concept_spec = DatasetSpec::builtin(DatasetKind::kFmnistLike, 5);
  std::vector<Dataset> locals;
  Dataset test_set;
  ModelSpec model;

  Fixture() : test_set(concept_spec.with_sample_seed(999), 200) {
    for (std::size_t i = 0; i < 3; ++i) {
      locals.emplace_back(concept_spec.with_sample_seed(30 + i), 150);
    }
    model.kind = ModelKind::kMlp;
    model.channels = concept_spec.channels;
    model.height = concept_spec.height;
    model.width = concept_spec.width;
    model.classes = concept_spec.classes;
    model.seed = 3;
  }

  std::vector<AsyncClient> clients(std::vector<double> latencies,
                                   std::vector<double> fractions) {
    std::vector<AsyncClient> out;
    for (std::size_t i = 0; i < latencies.size(); ++i) {
      out.push_back(AsyncClient{FedClient{&locals[i], fractions[i], 100 + i}, latencies[i]});
    }
    return out;
  }
};

FedAsyncOptions fast_options(double horizon = 40.0) {
  FedAsyncOptions options;
  options.horizon = horizon;
  options.eval_every = 0;
  return options;
}

TEST(FedAsync, LearnsAboveChance) {
  Fixture fixture;
  const auto result = train_fedasync(fixture.model,
                                     fixture.clients({3.0, 5.0, 8.0}, {1.0, 1.0, 1.0}),
                                     fixture.test_set, fast_options(80.0));
  EXPECT_GT(result.final_accuracy, 0.25);  // chance is 0.1
  EXPECT_GT(result.total_updates, 10u);
}

TEST(FedAsync, FasterClientsMergeMoreOften) {
  Fixture fixture;
  const auto result = train_fedasync(fixture.model,
                                     fixture.clients({2.0, 10.0, 10.0}, {1.0, 1.0, 1.0}),
                                     fixture.test_set, fast_options(40.0));
  std::size_t fast_merges = 0, slow_merges = 0;
  for (const AsyncMerge& merge : result.merges) {
    if (merge.client_index == 0) ++fast_merges;
    else ++slow_merges;
  }
  EXPECT_GT(fast_merges, slow_merges);
}

TEST(FedAsync, MergeTimesAreOrderedWithinHorizon) {
  Fixture fixture;
  const double horizon = 30.0;
  const auto result = train_fedasync(fixture.model,
                                     fixture.clients({3.0, 4.0, 7.0}, {1.0, 0.5, 1.0}),
                                     fixture.test_set, fast_options(horizon));
  double previous = 0.0;
  for (const AsyncMerge& merge : result.merges) {
    EXPECT_GE(merge.time, previous);
    EXPECT_LE(merge.time, horizon);
    previous = merge.time;
  }
}

TEST(FedAsync, StalenessNonNegative) {
  Fixture fixture;
  const auto result = train_fedasync(fixture.model,
                                     fixture.clients({2.0, 9.0, 5.0}, {1.0, 1.0, 1.0}),
                                     fixture.test_set, fast_options(40.0));
  for (const AsyncMerge& merge : result.merges) EXPECT_GE(merge.staleness, 0.0);
}

TEST(FedAsync, ZeroContributorNeverMerges) {
  Fixture fixture;
  const auto result = train_fedasync(fixture.model,
                                     fixture.clients({2.0, 3.0, 4.0}, {1.0, 0.0, 1.0}),
                                     fixture.test_set, fast_options(30.0));
  for (const AsyncMerge& merge : result.merges) EXPECT_NE(merge.client_index, 1u);
}

TEST(FedAsync, PeriodicEvaluationRecorded) {
  Fixture fixture;
  FedAsyncOptions options = fast_options(40.0);
  options.eval_every = 3;
  const auto result = train_fedasync(fixture.model,
                                     fixture.clients({3.0, 5.0, 7.0}, {1.0, 1.0, 1.0}),
                                     fixture.test_set, options);
  std::size_t evaluated = 0;
  for (const AsyncMerge& merge : result.merges) {
    if (merge.test_accuracy >= 0.0) ++evaluated;
  }
  EXPECT_EQ(evaluated, result.total_updates / 3);
}

TEST(FedAsync, ValidatesInputs) {
  Fixture fixture;
  EXPECT_THROW(train_fedasync(fixture.model, {}, fixture.test_set, fast_options()),
               std::invalid_argument);
  auto zero_latency = fixture.clients({0.0}, {1.0});
  EXPECT_THROW(train_fedasync(fixture.model, zero_latency, fixture.test_set, fast_options()),
               std::invalid_argument);
  auto nobody = fixture.clients({2.0, 3.0, 4.0}, {0.0, 0.0, 0.0});
  EXPECT_THROW(train_fedasync(fixture.model, nobody, fixture.test_set, fast_options()),
               std::invalid_argument);
  FedAsyncOptions bad = fast_options();
  bad.alpha = 0.0;
  EXPECT_THROW(train_fedasync(fixture.model, fixture.clients({2.0}, {1.0}), fixture.test_set,
                              bad),
               std::invalid_argument);
}

TEST(FedAsync, Deterministic) {
  Fixture fixture;
  const auto a = train_fedasync(fixture.model, fixture.clients({3.0, 5.0}, {1.0, 0.5}),
                                fixture.test_set, fast_options(30.0));
  const auto b = train_fedasync(fixture.model, fixture.clients({3.0, 5.0}, {1.0, 0.5}),
                                fixture.test_set, fast_options(30.0));
  EXPECT_EQ(a.final_weights, b.final_weights);
  EXPECT_EQ(a.total_updates, b.total_updates);
}

TEST(FedAsyncFaults, EmptyPlanIsBitIdenticalToNoInjector) {
  Fixture fixture;
  const FaultInjector inert{};
  FedAsyncOptions with_injector = fast_options(30.0);
  with_injector.faults = &inert;
  const auto faulted = train_fedasync(fixture.model, fixture.clients({3.0, 5.0}, {1.0, 0.5}),
                                      fixture.test_set, with_injector);
  const auto plain = train_fedasync(fixture.model, fixture.clients({3.0, 5.0}, {1.0, 0.5}),
                                    fixture.test_set, fast_options(30.0));
  EXPECT_EQ(faulted.final_weights, plain.final_weights);  // bitwise
  EXPECT_EQ(faulted.total_updates, plain.total_updates);
  EXPECT_EQ(faulted.total_dropped, 0u);
  EXPECT_EQ(faulted.total_delayed, 0u);
}

TEST(FedAsyncFaults, DropoutDiscardsUpdatesButKeepsTraining) {
  Fixture fixture;
  FaultPlan plan;
  plan.dropout_rate = 0.3;
  plan.seed = 21;
  const FaultInjector injector(plan);
  FedAsyncOptions options = fast_options(40.0);
  options.faults = &injector;
  const auto result = train_fedasync(fixture.model,
                                     fixture.clients({2.0, 3.0, 4.0}, {1.0, 1.0, 1.0}),
                                     fixture.test_set, options);
  EXPECT_GT(result.total_dropped, 0u);
  EXPECT_GT(result.total_updates, 0u);  // survivors still merge
  for (float w : result.final_weights) ASSERT_TRUE(std::isfinite(w));
}

TEST(FedAsyncFaults, StragglerStretchDelaysMerges) {
  Fixture fixture;
  // Every update of client 0 is stretched 4x; with the same horizon it can
  // complete strictly fewer updates than the fault-free baseline.
  FaultPlan plan;
  plan.straggler_scale = 4.0;
  for (std::uint64_t update = 1; update <= 32; ++update) {
    plan.events.push_back(FaultEvent{FaultKind::kStragglerDelay, update, 0, 0.0});
  }
  const FaultInjector injector(plan);
  FedAsyncOptions options = fast_options(40.0);
  options.faults = &injector;
  const auto slowed = train_fedasync(fixture.model,
                                     fixture.clients({2.0, 5.0, 5.0}, {1.0, 1.0, 1.0}),
                                     fixture.test_set, options);
  const auto baseline = train_fedasync(fixture.model,
                                       fixture.clients({2.0, 5.0, 5.0}, {1.0, 1.0, 1.0}),
                                       fixture.test_set, fast_options(40.0));
  EXPECT_GT(slowed.total_delayed, 0u);
  std::size_t slowed_merges = 0, baseline_merges = 0;
  for (const AsyncMerge& merge : slowed.merges) {
    if (merge.client_index == 0) ++slowed_merges;
  }
  for (const AsyncMerge& merge : baseline.merges) {
    if (merge.client_index == 0) ++baseline_merges;
  }
  EXPECT_LT(slowed_merges, baseline_merges);
}

TEST(FedAsyncFaults, NanCorruptionIsQuarantined) {
  Fixture fixture;
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultKind::kUpdateCorruption, 1, 0, 0.0});
  const FaultInjector injector(plan);
  FedAsyncOptions options = fast_options(30.0);
  options.faults = &injector;
  const auto result = train_fedasync(fixture.model,
                                     fixture.clients({2.0, 3.0, 4.0}, {1.0, 1.0, 1.0}),
                                     fixture.test_set, options);
  EXPECT_EQ(result.total_quarantined, 1u);
  for (float w : result.final_weights) ASSERT_TRUE(std::isfinite(w));
}

TEST(FedAsyncFaults, FaultScheduleIsDeterministic) {
  Fixture fixture;
  FaultPlan plan;
  plan.dropout_rate = 0.25;
  plan.corrupt_rate = 0.1;
  plan.seed = 77;
  const FaultInjector injector(plan);
  FedAsyncOptions options = fast_options(30.0);
  options.faults = &injector;
  const auto a = train_fedasync(fixture.model, fixture.clients({2.0, 4.0}, {1.0, 1.0}),
                                fixture.test_set, options);
  const auto b = train_fedasync(fixture.model, fixture.clients({2.0, 4.0}, {1.0, 1.0}),
                                fixture.test_set, options);
  EXPECT_EQ(a.final_weights, b.final_weights);
  EXPECT_EQ(a.total_dropped, b.total_dropped);
  EXPECT_EQ(a.total_quarantined, b.total_quarantined);
}

// ---- robust aggregation in the asynchronous path ----

/// Restores the serial global pool even when an assertion fails mid-test.
struct ThreadsRestorer {
  ~ThreadsRestorer() { set_global_threads(1); }
};

TEST(FedAsyncRobust, SharedHelperFoldsInDoubleUnlikeTheOldFloatMerge) {
  // Satellite regression: the staleness-discounted merge used to run in
  // float ((1-a)*g + a*l per coordinate); it now routes through the same
  // double-precision ordered fold as Eq. (3). Pin the double semantics and
  // show the old float arithmetic is genuinely different on some coordinate,
  // so a regression back to float cannot pass.
  Rng rng(41);
  std::vector<float> global(4096);
  std::vector<float> local(4096);
  for (std::size_t i = 0; i < global.size(); ++i) {
    global[i] = static_cast<float>(rng.normal() * 100.0);
    local[i] = static_cast<float>(rng.normal());
  }
  const double alpha_eff = static_cast<double>(0.3F);
  std::vector<float> merged(global.size());
  ordered_weighted_mean({&global, &local}, {1.0 - alpha_eff, alpha_eff}, nullptr, merged);

  std::size_t float_drift = 0;
  for (std::size_t i = 0; i < global.size(); ++i) {
    const double reference =
        (1.0 - alpha_eff) * static_cast<double>(global[i]) +
        alpha_eff * static_cast<double>(local[i]);
    EXPECT_EQ(merged[i], static_cast<float>(reference)) << i;
    const float old_merge = (1.0F - 0.3F) * global[i] + 0.3F * local[i];
    if (old_merge != merged[i]) ++float_drift;
  }
  EXPECT_GT(float_drift, 0u);  // the fold precision is observable, not cosmetic
}

TEST(FedAsyncRobust, MergeIsThreadCountInvariant) {
  // The shared fold parallelizes over coordinates; the merge bytes must not
  // depend on the pool size.
  Fixture fixture;
  const auto serial = train_fedasync(fixture.model, fixture.clients({3.0, 5.0}, {1.0, 1.0}),
                                     fixture.test_set, fast_options(30.0));
  ThreadsRestorer restore;
  set_global_threads(4);
  const auto parallel = train_fedasync(fixture.model, fixture.clients({3.0, 5.0}, {1.0, 1.0}),
                                       fixture.test_set, fast_options(30.0));
  EXPECT_EQ(serial.final_weights, parallel.final_weights);
  EXPECT_EQ(serial.final_accuracy, parallel.final_accuracy);
}

TEST(FedAsyncRobust, PopulationRulesAreRejected) {
  Fixture fixture;
  for (const char* rule : {"median", "trimmed:1", "krum:1", "multikrum:1"}) {
    FedAsyncOptions options = fast_options(10.0);
    options.aggregator = parse_aggregator(rule).value();
    EXPECT_THROW(train_fedasync(fixture.model, fixture.clients({2.0}, {1.0}), fixture.test_set,
                                options),
                 std::invalid_argument)
        << rule;
  }
}

TEST(FedAsyncRobust, NormClipBoundsEveryMergedDelta) {
  Fixture fixture;
  FedAsyncOptions options = fast_options(30.0);
  options.aggregator = parse_aggregator("normclip:0.05").value();
  const auto clipped = train_fedasync(fixture.model, fixture.clients({3.0, 5.0}, {1.0, 1.0}),
                                      fixture.test_set, options);
  EXPECT_GT(clipped.total_clipped, 0u);
  EXPECT_EQ(clipped.total_attacked, 0u);
  for (float w : clipped.final_weights) ASSERT_TRUE(std::isfinite(w));
}

TEST(FedAsyncRobust, AttacksFireInTheAsyncPathAndClipContainsThem) {
  Fixture fixture;
  FaultPlan plan;
  plan.seed = 13;
  plan.scale_silos = 1;  // client 0 amplifies its delta 8x
  const FaultInjector injector(plan);

  FedAsyncOptions attacked = fast_options(30.0);
  attacked.faults = &injector;
  const auto mean = train_fedasync(fixture.model, fixture.clients({3.0, 5.0}, {1.0, 1.0}),
                                   fixture.test_set, attacked);
  EXPECT_GT(mean.total_attacked, 0u);

  FedAsyncOptions defended = attacked;
  defended.aggregator = parse_aggregator("normclip:0.5").value();
  const auto clipped = train_fedasync(fixture.model, fixture.clients({3.0, 5.0}, {1.0, 1.0}),
                                      fixture.test_set, defended);
  EXPECT_EQ(clipped.total_attacked, mean.total_attacked);
  EXPECT_GT(clipped.total_clipped, 0u);
}

}  // namespace
}  // namespace tradefl::fl
