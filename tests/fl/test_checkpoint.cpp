// Resume bit-identity for the training pipelines: a run that checkpoints,
// stops, and resumes must reproduce the uninterrupted run exactly — every
// weight, every metric — at threads=1 and threads=4, with and without
// injected faults. Corrupt or mismatched snapshots fail closed.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/faults.h"
#include "common/parallel.h"
#include "fl/fedasync.h"
#include "fl/fedavg.h"

namespace tradefl::fl {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// Restores the serial global pool even when an assertion fails mid-test.
struct ThreadsRestorer {
  ~ThreadsRestorer() { set_global_threads(1); }
};

struct Fixture {
  DatasetSpec concept_spec = DatasetSpec::builtin(DatasetKind::kFmnistLike, 5);
  std::vector<Dataset> locals;
  Dataset test_set;
  ModelSpec model;

  Fixture() : test_set(concept_spec.with_sample_seed(999), 200) {
    for (std::size_t i = 0; i < 3; ++i) {
      locals.emplace_back(concept_spec.with_sample_seed(10 + i), 150);
    }
    model.kind = ModelKind::kMlp;
    model.channels = concept_spec.channels;
    model.height = concept_spec.height;
    model.width = concept_spec.width;
    model.classes = concept_spec.classes;
    model.seed = 3;
  }

  std::vector<FedClient> clients(std::vector<double> fractions) {
    std::vector<FedClient> out;
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      out.push_back(FedClient{&locals[i], fractions[i], 100 + i});
    }
    return out;
  }

  std::vector<AsyncClient> async_clients(std::vector<double> latencies,
                                         std::vector<double> fractions) {
    std::vector<AsyncClient> out;
    for (std::size_t i = 0; i < latencies.size(); ++i) {
      out.push_back(AsyncClient{FedClient{&locals[i], fractions[i], 100 + i}, latencies[i]});
    }
    return out;
  }
};

FedAvgOptions avg_options(std::size_t rounds) {
  FedAvgOptions options;
  options.rounds = rounds;
  options.local_epochs = 2;
  options.batch_size = 32;
  return options;
}

FedAsyncOptions async_options(double horizon) {
  FedAsyncOptions options;
  options.horizon = horizon;
  options.eval_every = 0;
  return options;
}

void expect_same_metrics(const RoundMetrics& a, const RoundMetrics& b) {
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.train_loss, b.train_loss);  // exact: bit-identity, not closeness
  EXPECT_EQ(a.test_loss, b.test_loss);
  EXPECT_EQ(a.test_accuracy, b.test_accuracy);
  EXPECT_EQ(a.participants, b.participants);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.skipped, b.skipped);
}

void expect_same_fedavg(const FedAvgResult& a, const FedAvgResult& b) {
  EXPECT_EQ(a.final_weights, b.final_weights);  // exact float equality
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.total_contributed_samples, b.total_contributed_samples);
  EXPECT_EQ(a.rounds_skipped, b.rounds_skipped);
  EXPECT_EQ(a.total_dropped, b.total_dropped);
  EXPECT_EQ(a.total_quarantined, b.total_quarantined);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    expect_same_metrics(a.history[i], b.history[i]);
  }
}

void expect_same_fedasync(const FedAsyncResult& a, const FedAsyncResult& b) {
  EXPECT_EQ(a.final_weights, b.final_weights);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.total_updates, b.total_updates);
  EXPECT_EQ(a.total_dropped, b.total_dropped);
  EXPECT_EQ(a.total_quarantined, b.total_quarantined);
  EXPECT_EQ(a.total_delayed, b.total_delayed);
  ASSERT_EQ(a.merges.size(), b.merges.size());
  for (std::size_t i = 0; i < a.merges.size(); ++i) {
    EXPECT_EQ(a.merges[i].time, b.merges[i].time) << "merge " << i;
    EXPECT_EQ(a.merges[i].client_index, b.merges[i].client_index) << "merge " << i;
    EXPECT_EQ(a.merges[i].staleness, b.merges[i].staleness) << "merge " << i;
    EXPECT_EQ(a.merges[i].test_accuracy, b.merges[i].test_accuracy) << "merge " << i;
  }
}

/// Stop-and-resume: train the first `stop_at` rounds with checkpointing, then
/// resume from the snapshot and finish the remaining rounds in a fresh call.
FedAvgResult split_fedavg(Fixture& fixture, const std::string& path, std::size_t stop_at,
                          std::size_t rounds, const FaultInjector* faults = nullptr) {
  FedAvgOptions first = avg_options(stop_at);
  first.checkpoint_path = path;
  first.faults = faults;
  (void)train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set, first);

  FedAvgOptions second = avg_options(rounds);
  second.checkpoint_path = path;
  second.resume = true;
  second.faults = faults;
  return train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set,
                      second);
}

TEST(FedAvgCheckpoint, ResumedRunIsBitIdenticalToUninterrupted) {
  Fixture fixture;
  const FedAvgResult baseline = train_fedavg(
      fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set, avg_options(6));
  const FedAvgResult resumed =
      split_fedavg(fixture, temp_path("fedavg_split.snap"), /*stop_at=*/3, /*rounds=*/6);
  expect_same_fedavg(baseline, resumed);
}

TEST(FedAvgCheckpoint, ResumeIsBitIdenticalUnderFourThreads) {
  Fixture fixture;
  // Baseline runs serial; the interrupted + resumed run uses the pool. The
  // parallel layer guarantees threads=1 == threads=4, so the resume path must
  // land on the same bytes from either side.
  const FedAvgResult baseline = train_fedavg(
      fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set, avg_options(6));
  ThreadsRestorer restore;
  set_global_threads(4);
  const FedAvgResult resumed =
      split_fedavg(fixture, temp_path("fedavg_split_mt.snap"), /*stop_at=*/3, /*rounds=*/6);
  expect_same_fedavg(baseline, resumed);
}

TEST(FedAvgCheckpoint, ResumePreservesInjectedFaultSchedule) {
  // Fault decisions are keyed by (round, client), so the resumed half of the
  // run must draw the exact faults the uninterrupted run would have drawn.
  FaultPlan plan;
  plan.seed = 7;
  plan.dropout_rate = 0.3;
  const FaultInjector injector(plan);

  Fixture fixture;
  FedAvgOptions options = avg_options(6);
  options.faults = &injector;
  const FedAvgResult baseline = train_fedavg(
      fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set, options);
  const FedAvgResult resumed = split_fedavg(fixture, temp_path("fedavg_split_faults.snap"),
                                            /*stop_at=*/3, /*rounds=*/6, &injector);
  expect_same_fedavg(baseline, resumed);
  EXPECT_GT(baseline.total_dropped, 0u);  // the plan actually fired
}

TEST(FedAvgCheckpoint, FullyCoveredResumeRetrainsNothing) {
  // The checkpoint already covers every requested round: resume returns the
  // stored result without running a single round (idempotent restart).
  Fixture fixture;
  const std::string path = temp_path("fedavg_idempotent.snap");
  FedAvgOptions options = avg_options(4);
  options.checkpoint_path = path;
  const FedAvgResult first = train_fedavg(
      fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set, options);

  options.resume = true;
  const FedAvgResult second = train_fedavg(
      fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set, options);
  expect_same_fedavg(first, second);
}

TEST(FedAvgCheckpoint, CorruptSnapshotFailsClosed) {
  Fixture fixture;
  const std::string path = temp_path("fedavg_corrupt.snap");
  FedAvgOptions options = avg_options(2);
  options.checkpoint_path = path;
  (void)train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set,
                     options);

  {  // flip one byte mid-file
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(file.tellg());
    file.seekp(size / 2);
    char byte = 0;
    file.seekg(size / 2);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(size / 2);
    file.write(&byte, 1);
  }

  options.resume = true;
  try {
    (void)train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set,
                       options);
    FAIL() << "corrupt snapshot must not resume";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("failed closed"), std::string::npos)
        << error.what();
  }
}

TEST(FedAvgCheckpoint, MismatchedConfigurationFailsClosed) {
  Fixture fixture;
  const std::string path = temp_path("fedavg_mismatch.snap");
  FedAvgOptions options = avg_options(2);
  options.checkpoint_path = path;
  (void)train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set,
                     options);

  // Same snapshot, different shuffle seed: silently training a different
  // experiment is exactly what the fingerprint exists to prevent.
  options.resume = true;
  options.shuffle_seed += 1;
  try {
    (void)train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set,
                       options);
    FAIL() << "mismatched configuration must not resume";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("snapshot.mismatch"), std::string::npos)
        << error.what();
  }
}

TEST(FedAvgCheckpoint, MissingSnapshotWithResumeIsColdStart) {
  // resume=1 with no snapshot present runs from scratch: the kill-and-resume
  // harness may die before the first checkpoint lands.
  Fixture fixture;
  FedAvgOptions options = avg_options(3);
  options.checkpoint_path = temp_path("fedavg_cold_start.snap");
  std::filesystem::remove(options.checkpoint_path);  // TempDir persists across runs
  options.resume = true;
  const FedAvgResult cold = train_fedavg(
      fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set, options);
  const FedAvgResult plain = train_fedavg(
      fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set, avg_options(3));
  expect_same_fedavg(plain, cold);
}

TEST(FedAsyncCheckpoint, ResumedRunIsBitIdenticalToUninterrupted) {
  Fixture fixture;
  const std::vector<double> latencies{3.0, 5.0, 8.0};
  const FedAsyncResult baseline =
      train_fedasync(fixture.model, fixture.async_clients(latencies, {1.0, 1.0, 1.0}),
                     fixture.test_set, async_options(40.0));

  // Stop at horizon 20 with a checkpoint per event, then resume to 40: the
  // snapshot carries the event queue, so the continuation replays exactly the
  // events the uninterrupted run processed after t=20.
  const std::string path = temp_path("fedasync_split.snap");
  FedAsyncOptions first = async_options(20.0);
  first.checkpoint_path = path;
  (void)train_fedasync(fixture.model, fixture.async_clients(latencies, {1.0, 1.0, 1.0}),
                       fixture.test_set, first);

  FedAsyncOptions second = async_options(40.0);
  second.checkpoint_path = path;
  second.resume = true;
  const FedAsyncResult resumed =
      train_fedasync(fixture.model, fixture.async_clients(latencies, {1.0, 1.0, 1.0}),
                     fixture.test_set, second);
  expect_same_fedasync(baseline, resumed);
  EXPECT_GT(baseline.total_updates, 4u);  // the split actually spanned events
}

TEST(FedAsyncCheckpoint, CorruptSnapshotFailsClosed) {
  Fixture fixture;
  const std::string path = temp_path("fedasync_corrupt.snap");
  FedAsyncOptions options = async_options(15.0);
  options.checkpoint_path = path;
  (void)train_fedasync(fixture.model, fixture.async_clients({3.0, 5.0, 8.0}, {1.0, 1.0, 1.0}),
                       fixture.test_set, options);

  {  // truncate to half: typed snapshot.truncated surfaces as failed-closed
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  options.resume = true;
  try {
    (void)train_fedasync(fixture.model,
                         fixture.async_clients({3.0, 5.0, 8.0}, {1.0, 1.0, 1.0}),
                         fixture.test_set, options);
    FAIL() << "corrupt snapshot must not resume";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("failed closed"), std::string::npos)
        << error.what();
  }
}

TEST(FedAsyncCheckpoint, MismatchedConfigurationFailsClosed) {
  Fixture fixture;
  const std::string path = temp_path("fedasync_mismatch.snap");
  FedAsyncOptions options = async_options(15.0);
  options.checkpoint_path = path;
  (void)train_fedasync(fixture.model, fixture.async_clients({3.0, 5.0, 8.0}, {1.0, 1.0, 1.0}),
                       fixture.test_set, options);

  options.resume = true;
  options.shuffle_seed += 1;
  try {
    (void)train_fedasync(fixture.model,
                         fixture.async_clients({3.0, 5.0, 8.0}, {1.0, 1.0, 1.0}),
                         fixture.test_set, options);
    FAIL() << "mismatched configuration must not resume";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("snapshot.mismatch"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace tradefl::fl
