// The Fig. 2 pre-experiment machinery: monotone-concave accuracy curves and
// the empirical accuracy model bridge into the game layer.
#include "fl/data_accuracy.h"

#include <gtest/gtest.h>

namespace tradefl::fl {
namespace {

DataAccuracyOptions fast_options() {
  DataAccuracyOptions options;
  options.org_count = 3;
  options.samples_per_org = 150;
  options.test_samples = 250;
  options.d_grid = {0.1, 0.4, 0.7, 1.0};
  options.fedavg.rounds = 6;
  options.fedavg.local_epochs = 2;
  options.seed = 21;
  return options;
}

TEST(DataAccuracy, CurveIncreasesWithData) {
  const DataAccuracyCurve curve =
      measure_data_accuracy(ModelKind::kMlp, DatasetKind::kFmnistLike, fast_options());
  ASSERT_EQ(curve.points.size(), 4u);
  // Accuracy at full contribution beats accuracy at the smallest one.
  EXPECT_GT(curve.points.back().accuracy, curve.points.front().accuracy);
  EXPECT_TRUE(curve.shape.nondecreasing);
}

TEST(DataAccuracy, PerformanceAnchoredAtUntrained) {
  const DataAccuracyCurve curve =
      measure_data_accuracy(ModelKind::kMlp, DatasetKind::kFmnistLike, fast_options());
  for (const auto& point : curve.points) {
    EXPECT_NEAR(point.performance, point.accuracy - curve.untrained_accuracy, 1e-12);
  }
}

TEST(DataAccuracy, FitQualityReasonable) {
  const DataAccuracyCurve curve =
      measure_data_accuracy(ModelKind::kMlp, DatasetKind::kFmnistLike, fast_options());
  EXPECT_GT(curve.fit.r_squared, 0.5);
  EXPECT_GE(curve.fit.b, 0.0);
}

TEST(DataAccuracy, OmegaCountsAllOrganizations) {
  DataAccuracyOptions options = fast_options();
  options.d_grid = {1.0};
  const DataAccuracyCurve curve =
      measure_data_accuracy(ModelKind::kMlp, DatasetKind::kFmnistLike, options);
  // org0 d=1 plus two others at 0.5 of 150 samples each.
  EXPECT_NEAR(curve.points[0].omega_samples, 150.0 + 2 * 75.0, 1.0);
}

TEST(DataAccuracy, EmpiricalModelSatisfiesEq5) {
  const DataAccuracyCurve curve =
      measure_data_accuracy(ModelKind::kMlp, DatasetKind::kFmnistLike, fast_options());
  const auto model = empirical_accuracy_model(curve, 0.9);
  double previous_p = -1.0;
  double previous_slope = 1e18;
  for (double omega = 0.0; omega <= 600.0; omega += 50.0) {
    const double p = model->performance(omega);
    EXPECT_GE(p, previous_p - 1e-12);
    const double slope = model->performance_derivative(omega);
    EXPECT_GE(slope, 0.0);
    EXPECT_LE(slope, previous_slope + 1e-12);
    previous_p = p;
    previous_slope = slope;
  }
}

TEST(DataAccuracy, ValidatesOptions) {
  DataAccuracyOptions bad = fast_options();
  bad.org_count = 1;
  EXPECT_THROW(measure_data_accuracy(ModelKind::kMlp, DatasetKind::kFmnistLike, bad),
               std::invalid_argument);
  bad = fast_options();
  bad.d_grid.clear();
  EXPECT_THROW(measure_data_accuracy(ModelKind::kMlp, DatasetKind::kFmnistLike, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace tradefl::fl
