#include "fl/tensor.h"

#include "common/check.h"

#include <gtest/gtest.h>

namespace tradefl::fl {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3}, 1.5f);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_FLOAT_EQ(t[5], 1.5f);
  EXPECT_THROW(static_cast<void>(t.dim(2)), std::out_of_range);
}

TEST(Tensor, ZeroDimensionRejected) {
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
}

TEST(Tensor, FromValues) {
  const Tensor t = Tensor::from_values({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.at2(1, 0), 3.0f);
  EXPECT_THROW(Tensor::from_values({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, At2RowMajor) {
  Tensor t({2, 3});
  t.at2(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(t[5], 7.0f);
  Tensor wrong({2, 3, 4});
  EXPECT_THROW(wrong.at2(0, 0), std::invalid_argument);
}

TEST(Tensor, At4Layout) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_FLOAT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, Reshape) {
  Tensor t = Tensor::from_values({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_FLOAT_EQ(r.at2(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, AddScaledAndScale) {
  Tensor a = Tensor::from_values({2}, {1, 2});
  const Tensor b = Tensor::from_values({2}, {10, 20});
  a.add_scaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  EXPECT_FLOAT_EQ(a[1], 12.0f);
  a.scale(2.0f);
  EXPECT_FLOAT_EQ(a[0], 12.0f);
  Tensor mismatched({3});
  EXPECT_THROW(a.add_scaled(mismatched, 1.0f), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  const Tensor t = Tensor::from_values({3}, {1.0f, -4.0f, 2.0f});
  EXPECT_FLOAT_EQ(t.sum(), -1.0f);
  EXPECT_FLOAT_EQ(t.max_abs(), 4.0f);
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor({2, 3, 4}).shape_string(), "[2x3x4]");
}

// Regression: at2/at4 used to validate only the rank, so an out-of-range row
// or column silently read (or wrote) past the buffer.
TEST(Tensor, At2RejectsOutOfRangeIndices) {
  Tensor t({2, 3});
  const Tensor& ct = t;
  EXPECT_NO_THROW(static_cast<void>(t.at2(1, 2)));
  EXPECT_THROW(static_cast<void>(t.at2(2, 0)), ContractViolation);
  EXPECT_THROW(static_cast<void>(t.at2(0, 3)), ContractViolation);
  EXPECT_THROW(static_cast<void>(ct.at2(2, 2)), ContractViolation);
}

TEST(Tensor, At4RejectsOutOfRangeIndices) {
  Tensor t({1, 2, 3, 4});
  const Tensor& ct = t;
  EXPECT_NO_THROW(static_cast<void>(t.at4(0, 1, 2, 3)));
  EXPECT_THROW(static_cast<void>(t.at4(1, 0, 0, 0)), ContractViolation);
  EXPECT_THROW(static_cast<void>(t.at4(0, 2, 0, 0)), ContractViolation);
  EXPECT_THROW(static_cast<void>(t.at4(0, 0, 3, 0)), ContractViolation);
  EXPECT_THROW(static_cast<void>(ct.at4(0, 0, 0, 4)), ContractViolation);
}

}  // namespace
}  // namespace tradefl::fl
