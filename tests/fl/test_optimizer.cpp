#include "fl/optimizer.h"

#include <gtest/gtest.h>

namespace tradefl::fl {
namespace {

TEST(Sgd, PlainGradientStep) {
  Param param(Tensor({2}, 1.0f));
  param.grad.fill(0.5f);
  Sgd sgd({0.1, 0.0, 0.0});
  sgd.step({&param});
  EXPECT_NEAR(param.value[0], 1.0 - 0.1 * 0.5, 1e-6);
}

TEST(Sgd, MomentumAccumulates) {
  Param param(Tensor({1}, 0.0f));
  Sgd sgd({1.0, 0.5, 0.0});
  param.grad.fill(1.0f);
  sgd.step({&param});  // v=1, x=-1
  EXPECT_NEAR(param.value[0], -1.0, 1e-6);
  sgd.step({&param});  // v=1.5, x=-2.5
  EXPECT_NEAR(param.value[0], -2.5, 1e-6);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  Param param(Tensor({1}, 10.0f));
  param.grad.fill(0.0f);
  Sgd sgd({0.1, 0.0, 0.1});
  sgd.step({&param});
  EXPECT_LT(param.value[0], 10.0f);
}

TEST(Sgd, MinimizesQuadratic) {
  // f(x) = (x - 3)^2; grad = 2(x - 3). Converges to 3.
  Param param(Tensor({1}, 0.0f));
  Sgd sgd({0.1, 0.9, 0.0});
  for (int step = 0; step < 200; ++step) {
    param.grad[0] = 2.0f * (param.value[0] - 3.0f);
    sgd.step({&param});
  }
  EXPECT_NEAR(param.value[0], 3.0, 1e-3);
}

TEST(Sgd, ResetClearsVelocity) {
  Param param(Tensor({1}, 0.0f));
  Sgd sgd({1.0, 0.9, 0.0});
  param.grad.fill(1.0f);
  sgd.step({&param});
  sgd.reset();
  param.grad.fill(0.0f);
  const float before = param.value[0];
  sgd.step({&param});  // no velocity carryover after reset
  EXPECT_FLOAT_EQ(param.value[0], before);
}

TEST(Sgd, ValidatesOptions) {
  EXPECT_THROW(Sgd({0.0, 0.9, 0.0}), std::invalid_argument);
  EXPECT_THROW(Sgd({0.1, 1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Sgd({0.1, 0.9, -0.1}), std::invalid_argument);
}

}  // namespace
}  // namespace tradefl::fl
