// Gradient checking: every layer's backward pass is validated against
// central finite differences of its forward pass — both input gradients and
// parameter gradients. This is the core correctness test of the NN substrate.
#include "fl/layers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/check.h"

namespace tradefl::fl {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng, double scale = 1.0) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.normal(0.0, scale));
  }
  return t;
}

/// Scalar objective: sum of c ⊙ output for fixed random c (exercises all
/// output positions with distinct weights).
double objective(Layer& layer, const Tensor& input, const Tensor& weights_c) {
  const Tensor out = layer.forward(input, /*training=*/true);
  double total = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    total += static_cast<double>(out[i]) * weights_c[i];
  }
  return total;
}

/// Checks d(objective)/d(input) and d(objective)/d(params) via backward vs
/// finite differences.
void grad_check(Layer& layer, Tensor input, double tolerance = 2e-2) {
  Rng rng(99);
  const Tensor probe_out = layer.forward(input, true);
  Tensor weights_c(probe_out.shape());
  for (std::size_t i = 0; i < weights_c.size(); ++i) {
    weights_c[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  for (Param* param : layer.parameters()) param->grad.fill(0.0f);

  // Analytic gradients.
  layer.forward(input, true);
  Tensor grad_out = weights_c;
  const Tensor grad_in = layer.backward(grad_out);

  const float h = 1e-2f;
  // Input gradient check on a sample of coordinates.
  for (std::size_t i = 0; i < input.size(); i += std::max<std::size_t>(1, input.size() / 17)) {
    const float saved = input[i];
    input[i] = saved + h;
    const double up = objective(layer, input, weights_c);
    input[i] = saved - h;
    const double down = objective(layer, input, weights_c);
    input[i] = saved;
    const double fd = (up - down) / (2.0 * h);
    EXPECT_NEAR(grad_in[i], fd, tolerance * std::max(1.0, std::abs(fd)))
        << "input coordinate " << i;
  }

  // Parameter gradient check. Re-run the analytic pass to refresh caches.
  for (Param* param : layer.parameters()) param->grad.fill(0.0f);
  layer.forward(input, true);
  layer.backward(weights_c);
  for (Param* param : layer.parameters()) {
    for (std::size_t i = 0; i < param->value.size();
         i += std::max<std::size_t>(1, param->value.size() / 13)) {
      const float saved = param->value[i];
      param->value[i] = saved + h;
      const double up = objective(layer, input, weights_c);
      param->value[i] = saved - h;
      const double down = objective(layer, input, weights_c);
      param->value[i] = saved;
      const double fd = (up - down) / (2.0 * h);
      EXPECT_NEAR(param->grad[i], fd, tolerance * std::max(1.0, std::abs(fd)))
          << "param coordinate " << i;
    }
  }
}

TEST(Layers, DenseGradCheck) {
  Rng rng(1);
  Dense layer(6, 4, rng);
  grad_check(layer, random_tensor({3, 6}, rng));
}

TEST(Layers, Conv2DGradCheck) {
  Rng rng(2);
  Conv2D layer(2, 3, 3, 1, 1, 1, rng);
  grad_check(layer, random_tensor({2, 2, 5, 5}, rng));
}

TEST(Layers, Conv2DDepthwiseGradCheck) {
  Rng rng(3);
  Conv2D layer(3, 3, 3, 1, 1, 3, rng);  // depthwise (groups == channels)
  grad_check(layer, random_tensor({2, 3, 4, 4}, rng));
}

TEST(Layers, Conv2DStride2GradCheck) {
  Rng rng(4);
  Conv2D layer(1, 2, 3, 2, 1, 1, rng);
  grad_check(layer, random_tensor({1, 1, 6, 6}, rng));
}

TEST(Layers, Conv2DPointwiseGradCheck) {
  Rng rng(5);
  Conv2D layer(4, 2, 1, 1, 0, 1, rng);  // 1x1 conv
  grad_check(layer, random_tensor({2, 4, 3, 3}, rng));
}

TEST(Layers, ReLUGradCheck) {
  Rng rng(6);
  ReLU layer;
  // Keep activations away from the kink for finite differences.
  Tensor input = random_tensor({4, 7}, rng);
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (std::abs(input[i]) < 0.1f) input[i] = 0.5f;
  }
  grad_check(layer, input);
}

TEST(Layers, MaxPoolGradCheck) {
  Rng rng(7);
  MaxPool2D layer;
  // Spread values so max choices are stable under the FD step.
  Tensor input({1, 2, 4, 4});
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(i % 7) + static_cast<float>(rng.uniform(0.0, 0.2));
  }
  grad_check(layer, input);
}

TEST(Layers, GlobalAvgPoolGradCheck) {
  Rng rng(8);
  GlobalAvgPool layer;
  grad_check(layer, random_tensor({2, 3, 4, 4}, rng));
}

TEST(Layers, FlattenGradCheck) {
  Rng rng(9);
  Flatten layer;
  grad_check(layer, random_tensor({2, 3, 2, 2}, rng));
}

TEST(Layers, ResidualGradCheck) {
  Rng rng(10);
  std::vector<LayerPtr> body;
  body.push_back(std::make_unique<Conv2D>(2, 2, 3, 1, 1, 1, rng));
  Residual layer(std::move(body));
  grad_check(layer, random_tensor({1, 2, 4, 4}, rng), 5e-2);
}

TEST(Layers, DenseConcatGradCheck) {
  Rng rng(11);
  std::vector<LayerPtr> body;
  body.push_back(std::make_unique<Conv2D>(2, 3, 3, 1, 1, 1, rng));
  DenseConcat layer(std::move(body));
  grad_check(layer, random_tensor({1, 2, 4, 4}, rng));
}

TEST(Layers, ResidualRequiresShapePreservingBody) {
  Rng rng(12);
  std::vector<LayerPtr> body;
  body.push_back(std::make_unique<Conv2D>(2, 4, 3, 1, 1, 1, rng));  // changes channels
  Residual layer(std::move(body));
  Tensor input = random_tensor({1, 2, 4, 4}, rng);
  EXPECT_THROW(layer.forward(input, true), std::invalid_argument);
}

TEST(Layers, DenseConcatAddsChannels) {
  Rng rng(13);
  std::vector<LayerPtr> body;
  body.push_back(std::make_unique<Conv2D>(2, 3, 3, 1, 1, 1, rng));
  DenseConcat layer(std::move(body));
  const Tensor out = layer.forward(random_tensor({1, 2, 4, 4}, rng), true);
  EXPECT_EQ(out.dim(1), 5u);  // 2 passthrough + 3 grown
}

TEST(Layers, DropoutTrainVsEval) {
  Rng rng(14);
  Dropout layer(0.5, rng);
  const Tensor input = random_tensor({4, 50}, rng);
  const Tensor eval_out = layer.forward(input, /*training=*/false);
  for (std::size_t i = 0; i < input.size(); ++i) EXPECT_FLOAT_EQ(eval_out[i], input[i]);
  const Tensor train_out = layer.forward(input, /*training=*/true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < train_out.size(); ++i) {
    if (train_out[i] == 0.0f) ++zeros;
  }
  EXPECT_GT(zeros, 50u);   // roughly half dropped
  EXPECT_LT(zeros, 150u);
}

TEST(Layers, DropoutBackwardUsesMask) {
  Rng rng(15);
  Dropout layer(0.5, rng);
  const Tensor input = random_tensor({2, 20}, rng);
  const Tensor out = layer.forward(input, true);
  Tensor ones(out.shape(), 1.0f);
  const Tensor grad = layer.backward(ones);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] == 0.0f) {
      EXPECT_FLOAT_EQ(grad[i], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(grad[i], 2.0f);  // 1/(1-rate)
    }
  }
}

TEST(Layers, Conv2DRejectsBadGroups) {
  Rng rng(16);
  EXPECT_THROW(Conv2D(3, 4, 3, 1, 1, 2, rng), std::invalid_argument);
  EXPECT_THROW(Conv2D(4, 4, 3, 0, 1, 1, rng), std::invalid_argument);
}

TEST(Layers, DenseRejectsWrongWidth) {
  Rng rng(17);
  Dense layer(4, 2, rng);
  Tensor bad({2, 5});
  EXPECT_THROW(layer.forward(bad, true), std::invalid_argument);
}

// Regression: Conv2D::forward computed (in_h + 2*pad - kernel) in unsigned
// arithmetic, so a kernel larger than the padded input wrapped the output
// height around to ~2^64 instead of failing.
TEST(LayersContract, Conv2DRejectsKernelLargerThanPaddedInput) {
  Rng rng(17);
  Conv2D conv(1, 1, /*kernel=*/5, /*stride=*/1, /*pad=*/0, /*groups=*/1, rng);
  Tensor tiny({1, 1, 2, 2});
  EXPECT_THROW(conv.forward(tiny, /*training=*/false), ContractViolation);
}

}  // namespace
}  // namespace tradefl::fl
