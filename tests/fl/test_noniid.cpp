// Non-IID sharding (the footnote-4 ablation): Dirichlet label-skewed class
// weights and their effect on dataset composition.
#include <gtest/gtest.h>

#include "fl/dataset.h"
#include "fl/fedavg.h"

namespace tradefl::fl {
namespace {

TEST(Dirichlet, WeightsFormADistribution) {
  Rng rng(7);
  for (double alpha : {0.1, 0.5, 1.0, 10.0}) {
    const auto weights = dirichlet_class_weights(10, alpha, rng);
    ASSERT_EQ(weights.size(), 10u);
    double total = 0.0;
    for (double w : weights) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "alpha " << alpha;
  }
}

TEST(Dirichlet, SmallAlphaConcentrates) {
  // alpha = 0.05 puts most mass on few classes; alpha = 100 is near-uniform.
  Rng rng(11);
  double skewed_max = 0.0, uniform_max = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    const auto skewed = dirichlet_class_weights(10, 0.05, rng);
    const auto uniform = dirichlet_class_weights(10, 100.0, rng);
    skewed_max += *std::max_element(skewed.begin(), skewed.end()) / 20.0;
    uniform_max += *std::max_element(uniform.begin(), uniform.end()) / 20.0;
  }
  EXPECT_GT(skewed_max, 0.5);
  EXPECT_LT(uniform_max, 0.25);
}

TEST(Dirichlet, ValidatesArguments) {
  Rng rng(1);
  EXPECT_THROW(dirichlet_class_weights(0, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(dirichlet_class_weights(10, 0.0, rng), std::invalid_argument);
}

TEST(NonIidDataset, ClassHistogramFollowsWeights) {
  auto spec = DatasetSpec::builtin(DatasetKind::kFmnistLike, 5);
  spec.label_noise = 0.0;
  std::vector<double> weights(10, 0.0);
  weights[2] = 0.7;
  weights[7] = 0.3;
  const Dataset data(spec.with_class_weights(weights), 1000);
  const auto histogram = data.class_histogram();
  EXPECT_NEAR(static_cast<double>(histogram[2]) / 1000.0, 0.7, 0.05);
  EXPECT_NEAR(static_cast<double>(histogram[7]) / 1000.0, 0.3, 0.05);
  for (std::size_t c : {0u, 1u, 3u, 9u}) EXPECT_EQ(histogram[c], 0u);
}

TEST(NonIidDataset, RejectsBadWeights) {
  auto spec = DatasetSpec::builtin(DatasetKind::kFmnistLike, 5);
  EXPECT_THROW(Dataset(spec.with_class_weights({0.5, 0.5}), 10), std::invalid_argument);
  std::vector<double> negative(10, 0.1);
  negative[0] = -0.1;
  EXPECT_THROW(Dataset(spec.with_class_weights(negative), 10), std::invalid_argument);
  EXPECT_THROW(Dataset(spec.with_class_weights(std::vector<double>(10, 0.0)), 10),
               std::invalid_argument);
}

TEST(NonIidDataset, FedAvgStillTrainsUnderMildSkew) {
  // Footnote-4 ablation: mild label skew (alpha = 1) must not break FedAvg.
  const auto concept_spec = DatasetSpec::builtin(DatasetKind::kFmnistLike, 5);
  Rng rng(3);
  std::vector<Dataset> locals;
  std::vector<FedClient> clients;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto weights = dirichlet_class_weights(concept_spec.classes, 1.0, rng);
    locals.emplace_back(
        concept_spec.with_sample_seed(50 + i).with_class_weights(weights), 150);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    clients.push_back(FedClient{&locals[i], 1.0, 200 + i});
  }
  const Dataset test_set(concept_spec.with_sample_seed(999), 200);
  ModelSpec model;
  model.kind = ModelKind::kMlp;
  model.channels = concept_spec.channels;
  model.height = concept_spec.height;
  model.width = concept_spec.width;
  model.classes = concept_spec.classes;
  model.seed = 3;
  FedAvgOptions options;
  options.rounds = 8;
  options.local_epochs = 2;
  const auto result = train_fedavg(model, clients, test_set, options);
  EXPECT_GT(result.final_accuracy, 0.2);  // chance is 0.1
}

}  // namespace
}  // namespace tradefl::fl
