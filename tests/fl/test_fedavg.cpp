// FedAvg (Sec. III-B): aggregation weights, training progress, participation
// rules, and determinism.
#include "fl/fedavg.h"

#include <gtest/gtest.h>

namespace tradefl::fl {
namespace {

struct Fixture {
  DatasetSpec concept_spec = DatasetSpec::builtin(DatasetKind::kFmnistLike, 5);
  std::vector<Dataset> locals;
  Dataset test_set;
  ModelSpec model;

  explicit Fixture(std::size_t orgs = 3, std::size_t samples = 150)
      : test_set(concept_spec.with_sample_seed(999), 200) {
    for (std::size_t i = 0; i < orgs; ++i) {
      locals.emplace_back(concept_spec.with_sample_seed(10 + i), samples);
    }
    model.kind = ModelKind::kMlp;
    model.channels = concept_spec.channels;
    model.height = concept_spec.height;
    model.width = concept_spec.width;
    model.classes = concept_spec.classes;
    model.seed = 3;
  }

  std::vector<FedClient> clients(std::vector<double> fractions) {
    std::vector<FedClient> out;
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      out.push_back(FedClient{&locals[i], fractions[i], 100 + i});
    }
    return out;
  }
};

FedAvgOptions fast_options(std::size_t rounds = 6) {
  FedAvgOptions options;
  options.rounds = rounds;
  options.local_epochs = 2;
  options.batch_size = 32;
  return options;
}

TEST(FedAvg, LearnsAboveChance) {
  Fixture fixture;
  const FedAvgResult result =
      train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set,
                   fast_options(8));
  EXPECT_GT(result.final_accuracy, 0.3);  // chance is 0.1
  EXPECT_EQ(result.history.size(), 8u);
}

TEST(FedAvg, LossDecreasesOverRounds) {
  Fixture fixture;
  const FedAvgResult result =
      train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set,
                   fast_options(8));
  EXPECT_LT(result.history.back().test_loss, result.history.front().test_loss);
}

TEST(FedAvg, MoreDataHelps) {
  Fixture fixture;
  const double accuracy_small =
      train_fedavg(fixture.model, fixture.clients({0.05, 0.05, 0.05}), fixture.test_set,
                   fast_options())
          .final_accuracy;
  const double accuracy_large =
      train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set,
                   fast_options())
          .final_accuracy;
  EXPECT_GT(accuracy_large, accuracy_small - 0.02);
}

TEST(FedAvg, CountsContributedSamples) {
  Fixture fixture;
  const FedAvgResult result = train_fedavg(
      fixture.model, fixture.clients({0.5, 1.0, 0.0}), fixture.test_set, fast_options(2));
  EXPECT_EQ(result.total_contributed_samples, 75u + 150u);
}

TEST(FedAvg, ZeroContributorsSkipped) {
  Fixture fixture;
  // Only org 0 participates; still trains fine.
  const FedAvgResult result = train_fedavg(
      fixture.model, fixture.clients({1.0, 0.0, 0.0}), fixture.test_set, fast_options(2));
  EXPECT_EQ(result.total_contributed_samples, 150u);
}

TEST(FedAvg, AllZeroContributionThrows) {
  Fixture fixture;
  EXPECT_THROW(train_fedavg(fixture.model, fixture.clients({0.0, 0.0, 0.0}),
                            fixture.test_set, fast_options(1)),
               std::invalid_argument);
}

TEST(FedAvg, Deterministic) {
  Fixture fixture;
  const FedAvgResult a = train_fedavg(fixture.model, fixture.clients({0.6, 0.8, 1.0}),
                                      fixture.test_set, fast_options(3));
  const FedAvgResult b = train_fedavg(fixture.model, fixture.clients({0.6, 0.8, 1.0}),
                                      fixture.test_set, fast_options(3));
  EXPECT_EQ(a.final_weights, b.final_weights);
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
}

TEST(FedAvg, SingleClientMatchesWeightedSelf) {
  // With one participant, aggregation is a no-op: global = local weights.
  Fixture fixture(1);
  const FedAvgResult result = train_fedavg(
      fixture.model, {FedClient{&fixture.locals[0], 1.0, 7}}, fixture.test_set,
      fast_options(1));
  EXPECT_EQ(result.history.size(), 1u);
  EXPECT_FALSE(result.final_weights.empty());
}

TEST(FedAvg, MaxBatchCapLimitsWork) {
  Fixture fixture;
  FedAvgOptions capped = fast_options(1);
  capped.max_batches_per_epoch = 1;
  const FedAvgResult result = train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                                           fixture.test_set, capped);
  EXPECT_EQ(result.history.size(), 1u);
}

TEST(FedAvg, ValidatesOptions) {
  Fixture fixture;
  FedAvgOptions bad = fast_options();
  bad.rounds = 0;
  EXPECT_THROW(train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                            fixture.test_set, bad),
               std::invalid_argument);
  bad = fast_options();
  bad.batch_size = 0;
  EXPECT_THROW(train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                            fixture.test_set, bad),
               std::invalid_argument);
  EXPECT_THROW(train_fedavg(fixture.model, {}, fixture.test_set, fast_options()),
               std::invalid_argument);
  EXPECT_THROW(train_fedavg(fixture.model, {FedClient{nullptr, 1.0, 1}}, fixture.test_set,
                            fast_options()),
               std::invalid_argument);
}

TEST(Evaluate, AccuracyAndLossConsistent) {
  Fixture fixture;
  Net net = build_model(fixture.model);
  const EvalResult eval = evaluate(net, fixture.test_set);
  EXPECT_GE(eval.accuracy, 0.0);
  EXPECT_LE(eval.accuracy, 1.0);
  EXPECT_GT(eval.loss, 0.0);
}

}  // namespace
}  // namespace tradefl::fl
