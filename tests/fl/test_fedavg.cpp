// FedAvg (Sec. III-B): aggregation weights, training progress, participation
// rules, and determinism.
#include "fl/fedavg.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tradefl::fl {
namespace {

struct Fixture {
  DatasetSpec concept_spec = DatasetSpec::builtin(DatasetKind::kFmnistLike, 5);
  std::vector<Dataset> locals;
  Dataset test_set;
  ModelSpec model;

  explicit Fixture(std::size_t orgs = 3, std::size_t samples = 150)
      : test_set(concept_spec.with_sample_seed(999), 200) {
    for (std::size_t i = 0; i < orgs; ++i) {
      locals.emplace_back(concept_spec.with_sample_seed(10 + i), samples);
    }
    model.kind = ModelKind::kMlp;
    model.channels = concept_spec.channels;
    model.height = concept_spec.height;
    model.width = concept_spec.width;
    model.classes = concept_spec.classes;
    model.seed = 3;
  }

  std::vector<FedClient> clients(std::vector<double> fractions) {
    std::vector<FedClient> out;
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      out.push_back(FedClient{&locals[i], fractions[i], 100 + i});
    }
    return out;
  }
};

FedAvgOptions fast_options(std::size_t rounds = 6) {
  FedAvgOptions options;
  options.rounds = rounds;
  options.local_epochs = 2;
  options.batch_size = 32;
  return options;
}

TEST(FedAvg, LearnsAboveChance) {
  Fixture fixture;
  const FedAvgResult result =
      train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set,
                   fast_options(8));
  EXPECT_GT(result.final_accuracy, 0.3);  // chance is 0.1
  EXPECT_EQ(result.history.size(), 8u);
}

TEST(FedAvg, LossDecreasesOverRounds) {
  Fixture fixture;
  const FedAvgResult result =
      train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set,
                   fast_options(8));
  EXPECT_LT(result.history.back().test_loss, result.history.front().test_loss);
}

TEST(FedAvg, MoreDataHelps) {
  Fixture fixture;
  const double accuracy_small =
      train_fedavg(fixture.model, fixture.clients({0.05, 0.05, 0.05}), fixture.test_set,
                   fast_options())
          .final_accuracy;
  const double accuracy_large =
      train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}), fixture.test_set,
                   fast_options())
          .final_accuracy;
  EXPECT_GT(accuracy_large, accuracy_small - 0.02);
}

TEST(FedAvg, CountsContributedSamples) {
  Fixture fixture;
  const FedAvgResult result = train_fedavg(
      fixture.model, fixture.clients({0.5, 1.0, 0.0}), fixture.test_set, fast_options(2));
  EXPECT_EQ(result.total_contributed_samples, 75u + 150u);
}

TEST(FedAvg, ZeroContributorsSkipped) {
  Fixture fixture;
  // Only org 0 participates; still trains fine.
  const FedAvgResult result = train_fedavg(
      fixture.model, fixture.clients({1.0, 0.0, 0.0}), fixture.test_set, fast_options(2));
  EXPECT_EQ(result.total_contributed_samples, 150u);
}

TEST(FedAvg, AllZeroContributionThrows) {
  Fixture fixture;
  EXPECT_THROW(train_fedavg(fixture.model, fixture.clients({0.0, 0.0, 0.0}),
                            fixture.test_set, fast_options(1)),
               std::invalid_argument);
}

TEST(FedAvg, Deterministic) {
  Fixture fixture;
  const FedAvgResult a = train_fedavg(fixture.model, fixture.clients({0.6, 0.8, 1.0}),
                                      fixture.test_set, fast_options(3));
  const FedAvgResult b = train_fedavg(fixture.model, fixture.clients({0.6, 0.8, 1.0}),
                                      fixture.test_set, fast_options(3));
  EXPECT_EQ(a.final_weights, b.final_weights);
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
}

TEST(FedAvg, SingleClientMatchesWeightedSelf) {
  // With one participant, aggregation is a no-op: global = local weights.
  Fixture fixture(1);
  const FedAvgResult result = train_fedavg(
      fixture.model, {FedClient{&fixture.locals[0], 1.0, 7}}, fixture.test_set,
      fast_options(1));
  EXPECT_EQ(result.history.size(), 1u);
  EXPECT_FALSE(result.final_weights.empty());
}

TEST(FedAvg, MaxBatchCapLimitsWork) {
  Fixture fixture;
  FedAvgOptions capped = fast_options(1);
  capped.max_batches_per_epoch = 1;
  const FedAvgResult result = train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                                           fixture.test_set, capped);
  EXPECT_EQ(result.history.size(), 1u);
}

TEST(FedAvg, ValidatesOptions) {
  Fixture fixture;
  FedAvgOptions bad = fast_options();
  bad.rounds = 0;
  EXPECT_THROW(train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                            fixture.test_set, bad),
               std::invalid_argument);
  bad = fast_options();
  bad.batch_size = 0;
  EXPECT_THROW(train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                            fixture.test_set, bad),
               std::invalid_argument);
  EXPECT_THROW(train_fedavg(fixture.model, {}, fixture.test_set, fast_options()),
               std::invalid_argument);
  EXPECT_THROW(train_fedavg(fixture.model, {FedClient{nullptr, 1.0, 1}}, fixture.test_set,
                            fast_options()),
               std::invalid_argument);
}

TEST(FedAvgFaults, EmptyPlanIsBitIdenticalToNoInjector) {
  Fixture fixture;
  const FaultInjector inert{};  // all-zero plan
  FedAvgOptions with_injector = fast_options(3);
  with_injector.faults = &inert;
  const FedAvgResult faulted = train_fedavg(fixture.model, fixture.clients({0.6, 0.8, 1.0}),
                                            fixture.test_set, with_injector);
  const FedAvgResult plain = train_fedavg(fixture.model, fixture.clients({0.6, 0.8, 1.0}),
                                          fixture.test_set, fast_options(3));
  EXPECT_EQ(faulted.final_weights, plain.final_weights);  // bitwise
  EXPECT_EQ(faulted.total_dropped, 0u);
  EXPECT_EQ(faulted.rounds_skipped, 0u);
}

TEST(FedAvgFaults, DropoutRenormalizesOverSurvivors) {
  Fixture fixture;
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultKind::kClientDropout, 1, 1, 0.0});
  const FaultInjector injector(plan);
  FedAvgOptions options = fast_options(2);
  options.faults = &injector;
  const FedAvgResult result = train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                                           fixture.test_set, options);
  EXPECT_EQ(result.history[0].participants, 2u);
  EXPECT_EQ(result.history[0].dropped, 1u);
  EXPECT_FALSE(result.history[0].skipped);
  EXPECT_EQ(result.history[1].participants, 3u);  // fault was round-1 only
  EXPECT_EQ(result.total_dropped, 1u);
  for (float w : result.final_weights) ASSERT_TRUE(std::isfinite(w));
}

TEST(FedAvgFaults, DropoutScheduleIsDeterministic) {
  Fixture fixture;
  FaultPlan plan;
  plan.dropout_rate = 0.4;
  plan.seed = 11;
  const FaultInjector injector(plan);
  FedAvgOptions options = fast_options(3);
  options.faults = &injector;
  const FedAvgResult a = train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                                      fixture.test_set, options);
  const FedAvgResult b = train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                                      fixture.test_set, options);
  EXPECT_EQ(a.final_weights, b.final_weights);
  EXPECT_EQ(a.total_dropped, b.total_dropped);
  for (std::size_t r = 0; r < a.history.size(); ++r) {
    EXPECT_EQ(a.history[r].participants, b.history[r].participants);
  }
}

TEST(FedAvgFaults, NanCorruptionIsQuarantined) {
  Fixture fixture;
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultKind::kUpdateCorruption, 1, 0, 0.0});
  const FaultInjector injector(plan);
  FedAvgOptions options = fast_options(1);
  options.faults = &injector;
  const FedAvgResult result = train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                                           fixture.test_set, options);
  EXPECT_EQ(result.history[0].quarantined, 1u);
  EXPECT_EQ(result.history[0].participants, 2u);
  EXPECT_EQ(result.total_quarantined, 1u);
  for (float w : result.final_weights) ASSERT_TRUE(std::isfinite(w));
}

TEST(FedAvgFaults, NoiseCorruptionStaysAggregated) {
  Fixture fixture;
  FaultPlan plan;
  plan.corrupt_noise = 0.01;  // finite noise, not NaN poison
  plan.events.push_back(FaultEvent{FaultKind::kUpdateCorruption, 1, 0, 0.0});
  const FaultInjector injector(plan);
  FedAvgOptions options = fast_options(1);
  options.faults = &injector;
  const FedAvgResult result = train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                                           fixture.test_set, options);
  EXPECT_EQ(result.history[0].quarantined, 0u);
  EXPECT_EQ(result.history[0].participants, 3u);
  for (float w : result.final_weights) ASSERT_TRUE(std::isfinite(w));
}

TEST(FedAvgFaults, QuorumFailureSkipsRoundKeepsModel) {
  Fixture fixture;
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultKind::kClientDropout, 1, kAnyFaultTarget, 0.0});
  const FaultInjector injector(plan);
  FedAvgOptions options = fast_options(1);
  options.faults = &injector;
  options.quorum = 2;
  const FedAvgResult result = train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                                           fixture.test_set, options);
  ASSERT_EQ(result.history.size(), 1u);
  EXPECT_TRUE(result.history[0].skipped);
  EXPECT_EQ(result.rounds_skipped, 1u);
  // The global model never moved: final weights are the initial weights.
  Net untouched = build_model(fixture.model);
  EXPECT_EQ(result.final_weights, untouched.weights());
}

TEST(FedAvgFaults, ZeroSampleClientPlusDropoutHitsQuorumNotDivideByZero) {
  Fixture fixture;
  // Only client 0 contributes data; clients 1 and 2 are zero-sample (skipped
  // by the participation rule). Dropping client 0 leaves ZERO survivors — the
  // round must be skipped under the default quorum of 1, never divide by a
  // zero weight sum.
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultKind::kClientDropout, 1, 0, 0.0});
  const FaultInjector injector(plan);
  FedAvgOptions options = fast_options(2);
  options.faults = &injector;
  const FedAvgResult result = train_fedavg(fixture.model, fixture.clients({1.0, 0.0, 0.0}),
                                           fixture.test_set, options);
  EXPECT_TRUE(result.history[0].skipped);
  EXPECT_EQ(result.history[0].participants, 0u);
  EXPECT_FALSE(result.history[1].skipped);  // client 0 returns in round 2
  EXPECT_EQ(result.history[1].participants, 1u);
  for (float w : result.final_weights) ASSERT_TRUE(std::isfinite(w));
}

TEST(FedAvgFaults, StragglerCutoffExcludesSlowClient) {
  Fixture fixture;
  FaultPlan plan;
  plan.straggler_scale = 5.0;
  plan.events.push_back(FaultEvent{FaultKind::kStragglerDelay, 1, 1, 0.0});
  const FaultInjector injector(plan);

  FedAvgOptions waiting = fast_options(1);
  waiting.faults = &injector;  // cutoff 0: synchronous FedAvg waits
  const FedAvgResult waited = train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                                           fixture.test_set, waiting);
  EXPECT_EQ(waited.history[0].participants, 3u);
  EXPECT_EQ(waited.history[0].dropped, 0u);

  FedAvgOptions strict = fast_options(1);
  strict.faults = &injector;
  strict.straggler_cutoff = 4.0;  // scale 5 misses the deadline
  const FedAvgResult excluded = train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                                             fixture.test_set, strict);
  EXPECT_EQ(excluded.history[0].participants, 2u);
  EXPECT_EQ(excluded.history[0].dropped, 1u);
}

TEST(FedAvgFaults, SurvivorsExactlyAtQuorumStillAggregate) {
  Fixture fixture;
  // Quarantining one of three clients leaves exactly quorum survivors — the
  // boundary must aggregate, not skip.
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultKind::kUpdateCorruption, 1, 0, 0.0});
  const FaultInjector injector(plan);
  FedAvgOptions options = fast_options(1);
  options.faults = &injector;
  options.quorum = 2;
  const FedAvgResult result = train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                                           fixture.test_set, options);
  ASSERT_EQ(result.history.size(), 1u);
  EXPECT_FALSE(result.history[0].skipped);
  EXPECT_EQ(result.history[0].participants, 2u);
  EXPECT_EQ(result.history[0].quarantined, 1u);
  // The aggregate moved: quorum survivors produced a real Eq. (3) round.
  Net untouched = build_model(fixture.model);
  EXPECT_NE(result.final_weights, untouched.weights());
}

TEST(FedAvgFaults, AllClientsQuarantinedInRoundZeroSkipsCleanly) {
  Fixture fixture;
  // Every update is NaN-poisoned in the very first round: zero survivors
  // before any aggregation has ever happened. The round skips, the untouched
  // initial model survives, and training recovers the following round.
  FaultPlan plan;
  for (std::uint64_t target = 0; target < 3; ++target) {
    plan.events.push_back(FaultEvent{FaultKind::kUpdateCorruption, 1, target, 0.0});
  }
  const FaultInjector injector(plan);
  FedAvgOptions options = fast_options(2);
  options.faults = &injector;
  const FedAvgResult result = train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                                           fixture.test_set, options);
  ASSERT_EQ(result.history.size(), 2u);
  EXPECT_TRUE(result.history[0].skipped);
  EXPECT_EQ(result.history[0].participants, 0u);
  EXPECT_EQ(result.history[0].quarantined, 3u);
  EXPECT_EQ(result.rounds_skipped, 1u);
  EXPECT_EQ(result.total_quarantined, 3u);
  EXPECT_FALSE(result.history[1].skipped);
  EXPECT_EQ(result.history[1].participants, 3u);
  for (float w : result.final_weights) ASSERT_TRUE(std::isfinite(w));
}

TEST(FedAvgFaults, QuarantinedClientReentersAggregationNextRound) {
  Fixture fixture;
  // Quarantine is per-round, not a ban: a client poisoned in round 1 must
  // re-enter Eq. (3) in round 2 and accrue influence again.
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultKind::kUpdateCorruption, 1, 0, 0.0});
  const FaultInjector injector(plan);
  FedAvgOptions options = fast_options(2);
  options.faults = &injector;
  const FedAvgResult result = train_fedavg(fixture.model, fixture.clients({1.0, 1.0, 1.0}),
                                           fixture.test_set, options);
  ASSERT_EQ(result.history.size(), 2u);
  EXPECT_EQ(result.history[0].participants, 2u);
  EXPECT_EQ(result.history[0].quarantined, 1u);
  EXPECT_EQ(result.history[1].participants, 3u);
  EXPECT_EQ(result.history[1].quarantined, 0u);
  ASSERT_EQ(result.client_influence.size(), 3u);
  // Round 1: influence 0; round 2: ~1/3. The per-client mean over the two
  // aggregated rounds must therefore be strictly between the two.
  EXPECT_GT(result.client_influence[0], 0.0);
  EXPECT_LT(result.client_influence[0], result.client_influence[1]);
}

TEST(Evaluate, AccuracyAndLossConsistent) {
  Fixture fixture;
  Net net = build_model(fixture.model);
  const EvalResult eval = evaluate(net, fixture.test_set);
  EXPECT_GE(eval.accuracy, 0.0);
  EXPECT_LE(eval.accuracy, 1.0);
  EXPECT_GT(eval.loss, 0.0);
}

}  // namespace
}  // namespace tradefl::fl
