#include "fl/dataset.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tradefl::fl {
namespace {

TEST(Dataset, BuiltinProfilesDiffer) {
  const auto cifar = DatasetSpec::builtin(DatasetKind::kCifar10Like, 1);
  const auto fmnist = DatasetSpec::builtin(DatasetKind::kFmnistLike, 1);
  EXPECT_EQ(cifar.channels, 3u);
  EXPECT_EQ(fmnist.channels, 1u);
  EXPECT_NE(cifar.noise, fmnist.noise);
}

TEST(Dataset, KindNamesAndParsing) {
  EXPECT_EQ(dataset_kind_from_string("cifar10"), DatasetKind::kCifar10Like);
  EXPECT_EQ(dataset_kind_from_string("FMNIST"), DatasetKind::kFmnistLike);
  EXPECT_EQ(dataset_kind_from_string("svhn"), DatasetKind::kSvhnLike);
  EXPECT_EQ(dataset_kind_from_string("eurosat"), DatasetKind::kEurosatLike);
  EXPECT_THROW(dataset_kind_from_string("imagenet"), std::invalid_argument);
}

TEST(Dataset, DeterministicForSameSeeds) {
  const auto spec = DatasetSpec::builtin(DatasetKind::kFmnistLike, 5);
  Dataset a(spec, 50), b(spec, 50);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(a.label(i), b.label(i));
  const Tensor batch_a = a.batch({0, 1, 2});
  const Tensor batch_b = b.batch({0, 1, 2});
  for (std::size_t i = 0; i < batch_a.size(); ++i) EXPECT_FLOAT_EQ(batch_a[i], batch_b[i]);
}

TEST(Dataset, DifferentSampleSeedsDifferentSamplesSameConcept) {
  const auto spec = DatasetSpec::builtin(DatasetKind::kFmnistLike, 5);
  Dataset a(spec.with_sample_seed(10), 100);
  Dataset b(spec.with_sample_seed(20), 100);
  const Tensor batch_a = a.batch({0});
  const Tensor batch_b = b.batch({0});
  bool identical = true;
  for (std::size_t i = 0; i < batch_a.size(); ++i) {
    if (batch_a[i] != batch_b[i]) identical = false;
  }
  EXPECT_FALSE(identical);
}

TEST(Dataset, ClassHistogramRoughlyBalanced) {
  const auto spec = DatasetSpec::builtin(DatasetKind::kEurosatLike, 3);
  Dataset data(spec, 2000);
  const auto histogram = data.class_histogram();
  ASSERT_EQ(histogram.size(), spec.classes);
  for (std::size_t count : histogram) {
    EXPECT_GT(count, 120u);  // expectation 200 per class
    EXPECT_LT(count, 300u);
  }
}

TEST(Dataset, PixelsRoughlyNormalized) {
  const auto spec = DatasetSpec::builtin(DatasetKind::kSvhnLike, 7);
  Dataset data(spec, 200);
  std::vector<std::size_t> all(200);
  for (std::size_t i = 0; i < 200; ++i) all[i] = i;
  const Tensor batch = data.batch(all);
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    sum += batch[i];
    sum_sq += static_cast<double>(batch[i]) * batch[i];
  }
  const double mean = sum / batch.size();
  const double var = sum_sq / batch.size() - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.15);
  EXPECT_NEAR(var, 1.0, 0.25);
}

TEST(Dataset, BatchValidation) {
  Dataset data(DatasetSpec::builtin(DatasetKind::kFmnistLike, 1), 10);
  EXPECT_THROW(data.batch({}), std::invalid_argument);
  EXPECT_THROW(data.batch({10}), std::out_of_range);
  const Tensor batch = data.batch({0, 9});
  EXPECT_EQ(batch.dim(0), 2u);
}

TEST(Dataset, SizeScaleShrinksImages) {
  const auto full = DatasetSpec::builtin(DatasetKind::kCifar10Like, 1, 1.0);
  const auto small = DatasetSpec::builtin(DatasetKind::kCifar10Like, 1, 0.5);
  EXPECT_LT(small.height, full.height);
  EXPECT_GE(small.height, 4u);
  EXPECT_THROW(DatasetSpec::builtin(DatasetKind::kCifar10Like, 1, 0.0),
               std::invalid_argument);
}

TEST(ContributedIndices, FractionControlsCount) {
  Dataset data(DatasetSpec::builtin(DatasetKind::kFmnistLike, 2), 100);
  EXPECT_EQ(contributed_indices(data, 1.0, 7).size(), 100u);
  EXPECT_EQ(contributed_indices(data, 0.25, 7).size(), 25u);
  EXPECT_TRUE(contributed_indices(data, 0.0, 7).empty());
  // Tiny positive fraction still contributes at least one sample.
  EXPECT_EQ(contributed_indices(data, 0.001, 7).size(), 1u);
}

TEST(ContributedIndices, DeterministicPerSeedAndDistinctAcrossSeeds) {
  Dataset data(DatasetSpec::builtin(DatasetKind::kFmnistLike, 2), 100);
  EXPECT_EQ(contributed_indices(data, 0.5, 7), contributed_indices(data, 0.5, 7));
  EXPECT_NE(contributed_indices(data, 0.5, 7), contributed_indices(data, 0.5, 8));
}

TEST(ContributedIndices, RejectsBadFraction) {
  Dataset data(DatasetSpec::builtin(DatasetKind::kFmnistLike, 2), 10);
  EXPECT_THROW(contributed_indices(data, -0.1, 7), std::invalid_argument);
  EXPECT_THROW(contributed_indices(data, 1.1, 7), std::invalid_argument);
}

TEST(Dataset, LabelNoiseFlipsSomeLabels) {
  auto spec = DatasetSpec::builtin(DatasetKind::kFmnistLike, 9);
  spec.label_noise = 0.5;
  spec.noise = 0.01;  // make class recoverable from the template
  Dataset noisy(spec, 500);
  auto clean_spec = spec;
  clean_spec.label_noise = 0.0;
  Dataset clean(clean_spec, 500);
  // Same sample stream, so differing labels indicate flips happened. (The
  // streams diverge after the first flip draw, so just check both are valid.)
  const auto histogram = noisy.class_histogram();
  std::size_t total = 0;
  for (std::size_t count : histogram) total += count;
  EXPECT_EQ(total, 500u);
}

}  // namespace
}  // namespace tradefl::fl
