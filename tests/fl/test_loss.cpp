#include "fl/loss.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tradefl::fl {
namespace {

TEST(Loss, UniformLogitsGiveLogC) {
  const Tensor logits({4, 10}, 0.0f);
  const LossResult result = softmax_cross_entropy(logits, {0, 1, 2, 3});
  EXPECT_NEAR(result.mean_loss, std::log(10.0), 1e-6);
}

TEST(Loss, ConfidentCorrectPredictionNearZeroLoss) {
  Tensor logits({1, 3}, 0.0f);
  logits.at2(0, 1) = 30.0f;
  const LossResult result = softmax_cross_entropy(logits, {1});
  EXPECT_LT(result.mean_loss, 1e-6);
  EXPECT_EQ(result.correct, 1u);
}

TEST(Loss, ConfidentWrongPredictionLargeLoss) {
  Tensor logits({1, 3}, 0.0f);
  logits.at2(0, 0) = 30.0f;
  const LossResult result = softmax_cross_entropy(logits, {1});
  EXPECT_GT(result.mean_loss, 10.0);
  EXPECT_EQ(result.correct, 0u);
}

TEST(Loss, GradientSumsToZeroPerSample) {
  // Softmax gradient rows sum to zero: sum_c (p_c - 1{c==y}) = 0.
  Tensor logits = Tensor::from_values({2, 3}, {0.1f, 1.0f, -0.4f, 2.0f, 0.3f, 0.5f});
  const LossResult result = softmax_cross_entropy(logits, {2, 0});
  for (std::size_t n = 0; n < 2; ++n) {
    double row = 0.0;
    for (std::size_t c = 0; c < 3; ++c) row += result.grad.at2(n, c);
    EXPECT_NEAR(row, 0.0, 1e-6);
  }
}

TEST(Loss, GradientMatchesFiniteDifference) {
  Tensor logits = Tensor::from_values({2, 4}, {0.5f, -1.0f, 0.2f, 1.4f,
                                               -0.3f, 0.8f, 0.0f, -0.6f});
  const std::vector<std::size_t> labels{3, 1};
  const LossResult analytic = softmax_cross_entropy(logits, labels);
  const float h = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor up = logits, down = logits;
    up[i] += h;
    down[i] -= h;
    const double fd = (softmax_cross_entropy(up, labels).mean_loss -
                       softmax_cross_entropy(down, labels).mean_loss) /
                      (2.0 * h);
    EXPECT_NEAR(analytic.grad[i], fd, 1e-3);
  }
}

TEST(Loss, NumericallyStableForHugeLogits) {
  Tensor logits({1, 2}, 0.0f);
  logits.at2(0, 0) = 1e4f;
  logits.at2(0, 1) = -1e4f;
  const LossResult result = softmax_cross_entropy(logits, {0});
  EXPECT_TRUE(std::isfinite(result.mean_loss));
  EXPECT_NEAR(result.mean_loss, 0.0, 1e-6);
}

TEST(Loss, CountsCorrectPredictions) {
  Tensor logits = Tensor::from_values({3, 2}, {2.0f, 0.0f, 0.0f, 2.0f, 2.0f, 0.0f});
  const LossResult result = softmax_cross_entropy(logits, {0, 1, 1});
  EXPECT_EQ(result.correct, 2u);
}

TEST(Loss, ValidatesInputs) {
  Tensor logits({2, 3}, 0.0f);
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 5}), std::invalid_argument);
  Tensor bad({2, 3, 1}, 0.0f);
  EXPECT_THROW(softmax_cross_entropy(bad, {0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace tradefl::fl
