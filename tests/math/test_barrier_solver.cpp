#include "math/barrier_solver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/check.h"

namespace tradefl::math {
namespace {

SmoothObjective quadratic_objective(const Vec& center) {
  // g(x) = -||x - c||^2, maximized at c.
  SmoothObjective objective;
  objective.value = [center](const Vec& x) {
    double total = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) total -= (x[i] - center[i]) * (x[i] - center[i]);
    return total;
  };
  objective.gradient = [center](const Vec& x) {
    Vec grad(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) grad[i] = -2.0 * (x[i] - center[i]);
    return grad;
  };
  objective.hessian = [](const Vec& x) {
    Matrix h(x.size(), x.size());
    h.add_diagonal(-2.0);
    return h;
  };
  return objective;
}

TEST(Barrier, UnconstrainedInteriorOptimum) {
  const Vec center{0.4, 0.6};
  const auto result = maximize_with_barrier(quadratic_objective(center),
                                            {Vec{0.0, 0.0}, Vec{1.0, 1.0}},
                                            LinearInequalities{}, Vec{0.5, 0.5});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 0.4, 1e-5);
  EXPECT_NEAR(result.x[1], 0.6, 1e-5);
}

TEST(Barrier, BoxActiveAtOptimum) {
  // Optimum at c = (1.5, 0.5) clipped to the box upper bound in x0.
  const auto result = maximize_with_barrier(quadratic_objective({1.5, 0.5}),
                                            {Vec{0.0, 0.0}, Vec{1.0, 1.0}},
                                            LinearInequalities{}, Vec{0.5, 0.5});
  EXPECT_NEAR(result.x[0], 1.0, 1e-4);
  EXPECT_NEAR(result.x[1], 0.5, 1e-5);
}

TEST(Barrier, LinearConstraintBinds) {
  // max -(x0-1)^2 -(x1-1)^2 s.t. x0 + x1 <= 1 inside [0,1]^2:
  // optimum at (0.5, 0.5) with active constraint.
  LinearInequalities ineq;
  ineq.a = Matrix(1, 2);
  ineq.a.at(0, 0) = 1.0;
  ineq.a.at(0, 1) = 1.0;
  ineq.b = {1.0};
  const auto result = maximize_with_barrier(quadratic_objective({1.0, 1.0}),
                                            {Vec{0.0, 0.0}, Vec{1.0, 1.0}}, ineq,
                                            Vec{0.2, 0.2});
  EXPECT_NEAR(result.x[0], 0.5, 1e-4);
  EXPECT_NEAR(result.x[1], 0.5, 1e-4);
  // KKT multiplier of the active constraint: gradient of objective at the
  // optimum is (1, 1); constraint normal (1, 1) => u = 1.
  ASSERT_EQ(result.multipliers.size(), 1u);
  EXPECT_NEAR(result.multipliers[0], 1.0, 0.05);
}

TEST(Barrier, InactiveConstraintHasTinyMultiplier) {
  LinearInequalities ineq;
  ineq.a = Matrix(1, 2);
  ineq.a.at(0, 0) = 1.0;
  ineq.a.at(0, 1) = 1.0;
  ineq.b = {10.0};  // never binds
  const auto result = maximize_with_barrier(quadratic_objective({0.5, 0.5}),
                                            {Vec{0.0, 0.0}, Vec{1.0, 1.0}}, ineq,
                                            Vec{0.2, 0.2});
  EXPECT_NEAR(result.x[0], 0.5, 1e-5);
  EXPECT_LT(result.multipliers[0], 1e-6);
}

TEST(Barrier, RankOneHessianObjective) {
  // g(x) = sqrt(1 + w.x) - c.x — the structure of the GBD primal
  // (concave in the aggregate plus linear terms).
  const Vec w{2.0, 3.0};
  const Vec c{0.05, 0.05};
  SmoothObjective objective;
  objective.value = [&](const Vec& x) { return std::sqrt(1.0 + dot(w, x)) - dot(c, x); };
  objective.gradient = [&](const Vec& x) {
    const double root = std::sqrt(1.0 + dot(w, x));
    Vec grad(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) grad[i] = 0.5 * w[i] / root - c[i];
    return grad;
  };
  objective.hessian = [&](const Vec& x) {
    const double base = 1.0 + dot(w, x);
    return Matrix::outer(w, -0.25 * std::pow(base, -1.5));
  };
  const auto result = maximize_with_barrier(objective, {Vec{0.0, 0.0}, Vec{10.0, 10.0}},
                                            LinearInequalities{}, Vec{1.0, 1.0});
  EXPECT_TRUE(result.converged);
  // Verify stationarity: projected gradient ~ 0 at interior coordinates.
  const Vec grad = objective.gradient(result.x);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (result.x[i] > 1e-3 && result.x[i] < 10.0 - 1e-3) {
      EXPECT_NEAR(grad[i], 0.0, 1e-3);
    }
  }
}

TEST(Barrier, NudgesInfeasibleStartIntoBox) {
  const auto result = maximize_with_barrier(quadratic_objective({0.5, 0.5}),
                                            {Vec{0.0, 0.0}, Vec{1.0, 1.0}},
                                            LinearInequalities{}, Vec{5.0, -5.0});
  EXPECT_NEAR(result.x[0], 0.5, 1e-4);
  EXPECT_NEAR(result.x[1], 0.5, 1e-4);
}

TEST(Barrier, ThrowsWhenNoStrictlyFeasiblePoint) {
  LinearInequalities ineq;
  ineq.a = Matrix(1, 1);
  ineq.a.at(0, 0) = 1.0;
  ineq.b = {-1.0};  // x <= -1 impossible for x in [0, 1]
  EXPECT_THROW(maximize_with_barrier(quadratic_objective({0.5}), {Vec{0.0}, Vec{1.0}}, ineq,
                                     Vec{0.5}),
               std::invalid_argument);
}

TEST(Barrier, RejectsDegenerateBox) {
  EXPECT_THROW(maximize_with_barrier(quadratic_objective({0.5}), {Vec{1.0}, Vec{1.0}},
                                     LinearInequalities{}, Vec{1.0}),
               std::invalid_argument);
}

TEST(Barrier, NanObjectiveIsTrappedNotReturned) {
  // Regression: a NaN gradient used to flow straight through solve_spd (NaN
  // fails the `diag <= 0.0` SPD test, so the factorization "succeeded") and
  // out via result.x without any diagnostic. The solver must throw instead
  // of handing back a poisoned iterate.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  SmoothObjective poisoned;
  poisoned.value = [nan](const Vec&) { return nan; };
  poisoned.gradient = [nan](const Vec& x) {
    Vec grad(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) grad[i] = nan;
    return grad;
  };
  poisoned.hessian = [](const Vec& x) {
    Matrix h(x.size(), x.size());
    h.add_diagonal(-1.0);
    return h;
  };
  BarrierOptions options;
  options.max_stages = 1;
  options.max_newton_per_stage = 2;
  EXPECT_THROW(maximize_with_barrier(poisoned, {Vec{0.0, 0.0}, Vec{1.0, 1.0}},
                                     LinearInequalities{}, Vec{0.5, 0.5}, options),
               tradefl::ContractViolation);
}

TEST(Barrier, DualityGapShrinksWithTolerance) {
  BarrierOptions loose;
  loose.duality_gap_tol = 1e-3;
  BarrierOptions tight;
  tight.duality_gap_tol = 1e-10;
  const auto coarse = maximize_with_barrier(quadratic_objective({0.4}), {Vec{0.0}, Vec{1.0}},
                                            LinearInequalities{}, Vec{0.5}, loose);
  const auto fine = maximize_with_barrier(quadratic_objective({0.4}), {Vec{0.0}, Vec{1.0}},
                                          LinearInequalities{}, Vec{0.5}, tight);
  EXPECT_LT(fine.duality_gap, coarse.duality_gap);
  EXPECT_LE(std::abs(fine.x[0] - 0.4), std::abs(coarse.x[0] - 0.4) + 1e-12);
}

}  // namespace
}  // namespace tradefl::math
