#include "math/matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tradefl::math {
namespace {

TEST(Matrix, IdentityMultiply) {
  const Matrix eye = Matrix::identity(3);
  const Vec x{1.0, 2.0, 3.0};
  EXPECT_EQ(eye.multiply(x), x);
}

TEST(Matrix, OuterProduct) {
  const Matrix m = Matrix::outer({1.0, 2.0}, 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 12.0);
}

TEST(Matrix, Transpose) {
  Matrix m(2, 3);
  m.at(0, 2) = 5.0;
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 5.0);
}

TEST(Matrix, MatrixMultiply) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  const Matrix sq = a.multiply(a);
  EXPECT_DOUBLE_EQ(sq.at(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(sq.at(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(sq.at(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(sq.at(1, 1), 22.0);
}

TEST(Matrix, SolveRandomSystem) {
  tradefl::Rng rng(5);
  const std::size_t n = 8;
  Matrix a(n, n);
  Vec x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = rng.uniform(-2.0, 2.0);
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1.0, 1.0);
    a.at(i, i) += 5.0;  // diagonally dominant => nonsingular
  }
  const Vec b = a.multiply(x_true);
  const Vec x = a.solve(b);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-9);
}

TEST(Matrix, SolveSingularThrows) {
  Matrix a(2, 2);  // all zeros
  EXPECT_THROW(a.solve({1.0, 1.0}), std::runtime_error);
}

TEST(Matrix, SolveSpdMatchesLu) {
  tradefl::Rng rng(9);
  const std::size_t n = 6;
  Matrix base(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) base.at(i, j) = rng.uniform(-1.0, 1.0);
  }
  // SPD via B B^T + I.
  Matrix spd = base.multiply(base.transposed());
  spd.add_diagonal(1.0);
  Vec b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = rng.uniform(-1.0, 1.0);
  const Vec x_spd = spd.solve_spd(b);
  const Vec x_lu = spd.solve(b);
  EXPECT_LT(max_abs_diff(x_spd, x_lu), 1e-8);
}

TEST(Matrix, SolveSpdRejectsIndefinite) {
  Matrix m(2, 2);
  m.at(0, 0) = 1.0;
  m.at(1, 1) = -1.0;
  EXPECT_THROW(m.solve_spd({1.0, 1.0}), std::runtime_error);
}

TEST(Matrix, SolveSpdRidgeRegularizes) {
  Matrix m(2, 2);  // singular PSD (rank one)
  m.at(0, 0) = 1.0;
  EXPECT_THROW(m.solve_spd({1.0, 1.0}), std::runtime_error);
  EXPECT_NO_THROW(m.solve_spd({1.0, 1.0}, 1e-6));
}

TEST(Matrix, AddDiagonalVector) {
  Matrix m(2, 2);
  m.add_diagonal(Vec{1.0, 2.0});
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 2.0);
  EXPECT_THROW(m.add_diagonal(Vec{1.0}), std::invalid_argument);
}

TEST(Matrix, ShapeErrors) {
  Matrix m(2, 3);
  EXPECT_THROW(m.multiply(Vec{1.0}), std::invalid_argument);
  EXPECT_THROW(m.solve(Vec{1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace tradefl::math
