#include "math/vec.h"

#include <gtest/gtest.h>

namespace tradefl::math {
namespace {

TEST(Vec, Constructors) {
  EXPECT_EQ(zeros(3), (Vec{0.0, 0.0, 0.0}));
  EXPECT_EQ(constant(2, 1.5), (Vec{1.5, 1.5}));
}

TEST(Vec, DotAndNorms) {
  const Vec a{1.0, 2.0, 3.0};
  const Vec b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf({1.0, -7.0, 3.0}), 7.0);
  EXPECT_DOUBLE_EQ(sum(a), 6.0);
}

TEST(Vec, Arithmetic) {
  const Vec a{1.0, 2.0};
  const Vec b{3.0, 5.0};
  EXPECT_EQ(add(a, b), (Vec{4.0, 7.0}));
  EXPECT_EQ(subtract(b, a), (Vec{2.0, 3.0}));
  EXPECT_EQ(scale(a, 2.0), (Vec{2.0, 4.0}));
}

TEST(Vec, Axpy) {
  Vec a{1.0, 1.0};
  axpy(a, 2.0, {0.5, -1.0});
  EXPECT_EQ(a, (Vec{2.0, -1.0}));
}

TEST(Vec, Clamp) {
  const Vec x{-1.0, 0.5, 2.0};
  EXPECT_EQ(clamp(x, zeros(3), constant(3, 1.0)), (Vec{0.0, 0.5, 1.0}));
}

TEST(Vec, MaxAbsDiff) {
  EXPECT_DOUBLE_EQ(max_abs_diff({1.0, 2.0}, {1.5, -1.0}), 3.0);
}

TEST(Vec, SizeMismatchThrows) {
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(add({1.0}, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace tradefl::math
