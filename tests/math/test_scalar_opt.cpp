#include "math/scalar_opt.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tradefl::math {
namespace {

TEST(GoldenSection, FindsInteriorMaximum) {
  const auto result = golden_section_maximize(
      [](double x) { return -(x - 2.0) * (x - 2.0) + 5.0; }, 0.0, 10.0, 1e-10);
  EXPECT_NEAR(result.x, 2.0, 1e-7);
  EXPECT_NEAR(result.value, 5.0, 1e-12);
}

TEST(GoldenSection, FindsBoundaryMaximum) {
  // Monotone increasing: maximum at the right endpoint.
  const auto inc = golden_section_maximize([](double x) { return x; }, -1.0, 3.0);
  EXPECT_NEAR(inc.x, 3.0, 1e-8);
  const auto dec = golden_section_maximize([](double x) { return -x; }, -1.0, 3.0);
  EXPECT_NEAR(dec.x, -1.0, 1e-8);
}

TEST(GoldenSection, DegenerateInterval) {
  const auto result = golden_section_maximize([](double x) { return x * x; }, 2.0, 2.0);
  EXPECT_DOUBLE_EQ(result.x, 2.0);
}

TEST(GoldenSection, RejectsInvertedInterval) {
  EXPECT_THROW(golden_section_maximize([](double x) { return x; }, 1.0, 0.0),
               std::invalid_argument);
}

TEST(ConcaveMaximize, InteriorViaDerivative) {
  // f(x) = -(x-1)^2, f'(x) = -2(x-1).
  const auto result = concave_maximize_with_derivative(
      [](double x) { return -(x - 1.0) * (x - 1.0); },
      [](double x) { return -2.0 * (x - 1.0); }, -3.0, 3.0, 1e-12);
  EXPECT_NEAR(result.x, 1.0, 1e-9);
}

TEST(ConcaveMaximize, BoundaryCases) {
  // Increasing derivative everywhere positive -> hi.
  const auto hi = concave_maximize_with_derivative(
      [](double x) { return x; }, [](double) { return 1.0; }, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(hi.x, 2.0);
  // Decreasing everywhere -> lo.
  const auto lo = concave_maximize_with_derivative(
      [](double x) { return -x; }, [](double) { return -1.0; }, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(lo.x, 0.0);
}

TEST(ConcaveMaximize, MatchesGoldenSectionOnLogShape) {
  // Concave saturating shape like the payoff in d: a log minus a line.
  auto f = [](double x) { return std::log(1.0 + 4.0 * x) - 0.8 * x; };
  auto df = [](double x) { return 4.0 / (1.0 + 4.0 * x) - 0.8; };
  const auto a = concave_maximize_with_derivative(f, df, 0.0, 5.0, 1e-13);
  const auto b = golden_section_maximize(f, 0.0, 5.0, 1e-12);
  EXPECT_NEAR(a.x, b.x, 1e-6);
  EXPECT_NEAR(a.value, b.value, 1e-10);
}

TEST(BisectRoot, FindsRoot) {
  const double root =
      bisect_root([](double x) { return x * x - 2.0; }, 0.0, 2.0, 1e-13);
  EXPECT_NEAR(root, std::sqrt(2.0), 1e-10);
}

TEST(BisectRoot, ExactEndpoints) {
  EXPECT_DOUBLE_EQ(bisect_root([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(bisect_root([](double x) { return x - 1.0; }, 0.0, 1.0), 1.0);
}

TEST(BisectRoot, SameSignThrows) {
  EXPECT_THROW(bisect_root([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace tradefl::math
