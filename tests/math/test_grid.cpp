#include "math/grid.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tradefl::math {
namespace {

TEST(Linspace, EndpointsAndSpacing) {
  const auto grid = linspace(0.0, 1.0, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
  EXPECT_DOUBLE_EQ(grid[2], 0.5);
}

TEST(Linspace, SinglePoint) {
  EXPECT_EQ(linspace(3.0, 9.0, 1), (std::vector<double>{3.0}));
}

TEST(Linspace, ZeroThrows) {
  EXPECT_THROW(linspace(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Logspace, DecadeGrid) {
  const auto grid = logspace(1e-9, 1e-7, 3);
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_NEAR(grid[0], 1e-9, 1e-18);
  EXPECT_NEAR(grid[1], 1e-8, 1e-15);
  EXPECT_NEAR(grid[2], 1e-7, 1e-14);
}

TEST(Logspace, RejectsNonPositive) {
  EXPECT_THROW(logspace(0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(logspace(-1.0, 1.0, 3), std::invalid_argument);
}

TEST(CartesianSize, Products) {
  EXPECT_EQ(cartesian_size({3, 3, 3}), 27u);
  EXPECT_EQ(cartesian_size({}), 1u);
  EXPECT_EQ(cartesian_size({5, 0}), 0u);
}

TEST(CartesianSize, OverflowThrows) {
  const std::vector<std::size_t> huge(64, 1000);
  EXPECT_THROW(cartesian_size(huge), std::overflow_error);
}

TEST(EnumerateCartesian, VisitsEveryTuple) {
  std::set<std::vector<std::size_t>> seen;
  const auto visited = enumerate_cartesian({2, 3}, [&](const std::vector<std::size_t>& t) {
    seen.insert(t);
    return true;
  });
  EXPECT_EQ(visited, 6u);
  EXPECT_EQ(seen.size(), 6u);
}

TEST(EnumerateCartesian, EarlyStop) {
  int count = 0;
  const auto visited = enumerate_cartesian({10, 10}, [&](const std::vector<std::size_t>&) {
    return ++count < 5;
  });
  EXPECT_EQ(visited, 5u);
}

TEST(EnumerateCartesian, ZeroRadixVisitsNothing) {
  const auto visited =
      enumerate_cartesian({2, 0}, [](const std::vector<std::size_t>&) { return true; });
  EXPECT_EQ(visited, 0u);
}

TEST(EnumerateCartesian, MatchesCartesianSize) {
  for (const std::vector<std::size_t> radices :
       {std::vector<std::size_t>{2, 2, 2}, {1, 5}, {4}}) {
    const auto visited =
        enumerate_cartesian(radices, [](const std::vector<std::size_t>&) { return true; });
    EXPECT_EQ(visited, cartesian_size(radices));
  }
}

}  // namespace
}  // namespace tradefl::math
