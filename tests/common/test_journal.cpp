// MapUndoJournal: the O(touched) rollback primitive behind atomic chain
// transactions. The contract under test: after revert(), the map is
// byte-for-byte as if the scope never ran — mutated entries restored,
// created entries erased.
#include "common/journal.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace tradefl {
namespace {

using IntMap = std::map<std::string, int>;

TEST(UndoJournal, RevertRestoresMutatedEntries) {
  IntMap map{{"a", 1}, {"b", 2}};
  MapUndoJournal<IntMap> journal;
  journal.note(map, "a");
  map["a"] = 99;
  journal.revert(map);
  EXPECT_EQ(map, (IntMap{{"a", 1}, {"b", 2}}));
  EXPECT_TRUE(journal.empty());
}

TEST(UndoJournal, RevertErasesCreatedEntries) {
  IntMap map{{"a", 1}};
  MapUndoJournal<IntMap> journal;
  // note() before the entry-creating operator[] — the required call order.
  journal.note(map, "fresh");
  map["fresh"] = 7;
  journal.revert(map);
  EXPECT_EQ(map.count("fresh"), 0u);
  EXPECT_EQ(map, (IntMap{{"a", 1}}));
}

TEST(UndoJournal, FirstTouchWinsOnRepeatNotes) {
  IntMap map{{"a", 1}};
  MapUndoJournal<IntMap> journal;
  journal.note(map, "a");
  map["a"] = 10;
  journal.note(map, "a");  // no-op: the pre-scope value is already recorded
  map["a"] = 20;
  EXPECT_EQ(journal.touched(), 1u);
  journal.revert(map);
  EXPECT_EQ(map.at("a"), 1);
}

TEST(UndoJournal, ClearCommitsTheScope) {
  IntMap map{{"a", 1}};
  MapUndoJournal<IntMap> journal;
  journal.note(map, "a");
  map["a"] = 42;
  journal.clear();
  journal.revert(map);  // nothing recorded: revert is a no-op
  EXPECT_EQ(map.at("a"), 42);
}

TEST(UndoJournal, MixedCreateAndMutateRevertsBoth) {
  IntMap map{{"keep", 5}, {"mut", 6}};
  MapUndoJournal<IntMap> journal;
  journal.note(map, "mut");
  map["mut"] -= 3;
  journal.note(map, "new1");
  map["new1"] += 3;
  journal.note(map, "new2");
  map["new2"] = 0;
  EXPECT_EQ(journal.touched(), 3u);
  journal.revert(map);
  EXPECT_EQ(map, (IntMap{{"keep", 5}, {"mut", 6}}));
}

TEST(UndoJournal, TouchedCountsDistinctKeys) {
  IntMap map;
  MapUndoJournal<IntMap> journal;
  EXPECT_TRUE(journal.empty());
  journal.note(map, "x");
  journal.note(map, "y");
  journal.note(map, "x");
  EXPECT_EQ(journal.touched(), 2u);
}

}  // namespace
}  // namespace tradefl
