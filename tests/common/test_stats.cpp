#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tradefl {
namespace {

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.5};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.5);
}

TEST(Stats, EmptyThrows) {
  EXPECT_THROW(mean({}), std::invalid_argument);
  EXPECT_THROW(min_value({}), std::invalid_argument);
}

TEST(Stats, CorrelationPerfect) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(correlation(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(correlation(xs, neg), -1.0, 1e-12);
}

TEST(Stats, CorrelationConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(correlation({1, 2, 3}, {5, 5, 5}), 0.0);
}

TEST(LinearFit, RecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 0.5 * i);
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-10);
  EXPECT_NEAR(fit.slope, 0.5, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-10);
}

TEST(SqrtSaturationFit, RecoversKnownCurve) {
  // y = 0.8 - 2.0 / sqrt(x + 10)
  std::vector<double> xs, ys;
  for (double x = 1.0; x <= 200.0; x += 10.0) {
    xs.push_back(x);
    ys.push_back(0.8 - 2.0 / std::sqrt(x + 10.0));
  }
  const SqrtSaturationFit fit = fit_sqrt_saturation(xs, ys);
  EXPECT_GT(fit.r_squared, 0.999);
  // Evaluate near the data, not the raw parameters (c is grid-searched).
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(fit.evaluate(xs[i]), ys[i], 0.01);
  }
}

TEST(SqrtSaturationFit, NonNegativeB) {
  // Decreasing data would want b < 0; the fit clamps to b >= 0.
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{4, 3, 2, 1};
  const SqrtSaturationFit fit = fit_sqrt_saturation(xs, ys);
  EXPECT_GE(fit.b, 0.0);
}

TEST(ShapeCheck, DetectsMonotoneConcave) {
  std::vector<double> xs, ys;
  for (double x = 0.0; x <= 10.0; x += 1.0) {
    xs.push_back(x);
    ys.push_back(std::sqrt(x));
  }
  const ShapeCheck check = check_monotone_concave(xs, ys, 1e-9);
  EXPECT_TRUE(check.nondecreasing);
  EXPECT_TRUE(check.concave);
}

TEST(ShapeCheck, DetectsViolation) {
  // Convex increasing: monotone yes, concave no.
  std::vector<double> xs, ys;
  for (double x = 0.0; x <= 10.0; x += 1.0) {
    xs.push_back(x);
    ys.push_back(x * x);
  }
  const ShapeCheck check = check_monotone_concave(xs, ys, 1e-9);
  EXPECT_TRUE(check.nondecreasing);
  EXPECT_FALSE(check.concave);

  // Decreasing: monotone no.
  std::vector<double> zs;
  for (double x : xs) zs.push_back(-x);
  EXPECT_FALSE(check_monotone_concave(xs, zs, 1e-9).nondecreasing);
}

TEST(ShapeCheck, ToleranceAbsorbsNoise) {
  const std::vector<double> xs{0, 1, 2, 3};
  const std::vector<double> ys{0.0, 0.5, 0.49, 0.8};  // tiny dip
  EXPECT_FALSE(check_monotone_concave(xs, ys, 1e-6).nondecreasing);
  EXPECT_TRUE(check_monotone_concave(xs, ys, 0.05).nondecreasing);
}

TEST(ShapeCheck, RequiresIncreasingX) {
  EXPECT_THROW(check_monotone_concave({1, 1}, {0, 0}, 1e-9), std::invalid_argument);
}

}  // namespace
}  // namespace tradefl
