#include "common/string_util.h"

#include <gtest/gtest.h>

namespace tradefl {
namespace {

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("nospace"), "nospace");
  EXPECT_EQ(trim("   "), "");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StartsWith, Matches) {
  EXPECT_TRUE(starts_with("prefix-rest", "prefix"));
  EXPECT_FALSE(starts_with("pre", "prefix"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("MiXeD123"), "mixed123");
}

TEST(FormatDouble, CompactRepresentation) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(-0.25), "-0.25");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159265358979, 3), "3.14");
}

TEST(FormatDouble, SpecialValues) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
}

}  // namespace
}  // namespace tradefl
