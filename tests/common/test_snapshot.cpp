// Crash-consistent snapshot layer: canonical encoding round trips, atomic
// file framing, and — the robustness contract — every corruption mode fails
// closed with a typed error while the previous checkpoint stays intact.
#include "common/snapshot.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

namespace tradefl {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  return {std::istreambuf_iterator<char>(file), std::istreambuf_iterator<char>()};
}

void dump(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(file.good()) << path;
}

SnapshotWriter sample_payload() {
  SnapshotWriter writer;
  writer.put_u8(7);
  writer.put_u32(0xDEADBEEFu);
  writer.put_u64(1ull << 60);
  writer.put_i64(-42);
  writer.put_bool(true);
  writer.put_f32(1.5f);
  writer.put_f64(-0.0);
  writer.put_string("TradeFL");
  writer.put_bytes({0x00, 0xFF, 0x10});
  writer.put_f32s({0.25f, std::numeric_limits<float>::quiet_NaN()});
  writer.put_f64s({1e-300, 2.5});
  writer.put_u64s({1, 2, 3});
  return writer;
}

TEST(Snapshot, Crc32MatchesKnownVector) {
  // IEEE CRC-32 of "123456789" is the classic check value.
  const std::string check = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(check.data()), check.size()),
            0xCBF43926u);
}

TEST(Snapshot, WriterReaderRoundTripsEveryFieldType) {
  const SnapshotWriter writer = sample_payload();
  SnapshotReader reader(writer.payload());
  EXPECT_EQ(reader.get_u8(), 7u);
  EXPECT_EQ(reader.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.get_u64(), 1ull << 60);
  EXPECT_EQ(reader.get_i64(), -42);
  EXPECT_TRUE(reader.get_bool());
  EXPECT_EQ(reader.get_f32(), 1.5f);
  const double negative_zero = reader.get_f64();
  EXPECT_EQ(negative_zero, 0.0);
  EXPECT_TRUE(std::signbit(negative_zero));  // bit-exact, not value-equal
  EXPECT_EQ(reader.get_string(), "TradeFL");
  EXPECT_EQ(reader.get_bytes(), (std::vector<std::uint8_t>{0x00, 0xFF, 0x10}));
  const std::vector<float> floats = reader.get_f32s();
  ASSERT_EQ(floats.size(), 2u);
  EXPECT_EQ(floats[0], 0.25f);
  EXPECT_TRUE(std::isnan(floats[1]));  // NaN payloads survive
  EXPECT_EQ(reader.get_f64s(), (std::vector<double>{1e-300, 2.5}));
  EXPECT_EQ(reader.get_u64s(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_NO_THROW(reader.require_exhausted());
}

TEST(Snapshot, ReaderOverrunThrowsInsteadOfFabricating) {
  SnapshotWriter writer;
  writer.put_u32(5);
  SnapshotReader reader(writer.payload());
  EXPECT_EQ(reader.get_u32(), 5u);
  EXPECT_THROW(static_cast<void>(reader.get_u64()), SnapshotError);
}

TEST(Snapshot, FileRoundTripPreservesPayload) {
  const std::string path = temp_path("roundtrip.snap");
  const SnapshotWriter writer = sample_payload();
  const auto written = write_snapshot_file(path, "test.kind", 3, writer);
  ASSERT_TRUE(written.ok()) << written.error().to_string();
  EXPECT_EQ(written.value(), slurp(path).size());
  EXPECT_TRUE(snapshot_exists(path));

  const auto payload = read_snapshot_file(path, "test.kind", 3);
  ASSERT_TRUE(payload.ok()) << payload.error().to_string();
  EXPECT_EQ(payload.value(), writer.payload());
}

TEST(Snapshot, OlderVersionStillReadable) {
  const std::string path = temp_path("old_version.snap");
  ASSERT_TRUE(write_snapshot_file(path, "test.kind", 2, sample_payload()).ok());
  EXPECT_TRUE(read_snapshot_file(path, "test.kind", 5).ok());
}

TEST(Snapshot, MissingFileIsTypedIoError) {
  const auto payload = read_snapshot_file(temp_path("never_written.snap"), "test.kind", 1);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.error().code, "io");
  EXPECT_FALSE(snapshot_exists(temp_path("never_written.snap")));
}

TEST(Snapshot, WriteToUnwritablePathFailsClosed) {
  const auto written =
      write_snapshot_file("/nonexistent-dir/x.snap", "test.kind", 1, sample_payload());
  ASSERT_FALSE(written.ok());
  EXPECT_EQ(written.error().code, "io");
}

// ----- satellite: corruption suite. Each mode must fail closed with a
// descriptive typed error, and a prior good checkpoint must stay intact. ---

/// Writes a good snapshot, applies `corrupt` to its bytes, and returns the
/// read error. Also asserts a sibling "previous" checkpoint still reads back.
template <typename Corrupt>
Error corrupt_and_read(const std::string& name, Corrupt&& corrupt) {
  const std::string previous = temp_path(name + ".previous.snap");
  const std::string path = temp_path(name + ".snap");
  EXPECT_TRUE(write_snapshot_file(previous, "test.kind", 1, sample_payload()).ok());
  EXPECT_TRUE(write_snapshot_file(path, "test.kind", 1, sample_payload()).ok());

  std::vector<std::uint8_t> bytes = slurp(path);
  corrupt(bytes);
  dump(path, bytes);

  const auto damaged = read_snapshot_file(path, "test.kind", 1);
  EXPECT_FALSE(damaged.ok());

  // The corruption of one file can never bleed into the previous checkpoint.
  const auto intact = read_snapshot_file(previous, "test.kind", 1);
  EXPECT_TRUE(intact.ok());
  if (intact.ok()) EXPECT_EQ(intact.value(), sample_payload().payload());
  return damaged.ok() ? Error{"", ""} : damaged.error();
}

TEST(SnapshotCorruption, TruncatedBelowMinimumFrameFailsClosed) {
  const Error error = corrupt_and_read("truncated", [](std::vector<std::uint8_t>& bytes) {
    bytes.resize(10);  // smaller than any legal header + trailer
  });
  EXPECT_EQ(error.code, "snapshot.truncated");
  EXPECT_FALSE(error.message.empty());
}

TEST(SnapshotCorruption, TruncatedMidPayloadFailsClosed) {
  // A torn write that keeps a plausible header still dies at the CRC gate:
  // the checksum covers the whole frame, so missing tail bytes cannot pass.
  const Error error = corrupt_and_read("torn", [](std::vector<std::uint8_t>& bytes) {
    bytes.resize(bytes.size() / 2);
  });
  EXPECT_EQ(error.code, "snapshot.crc");
}

TEST(SnapshotCorruption, SingleFlippedByteTripsCrc) {
  const Error error = corrupt_and_read("bitflip", [](std::vector<std::uint8_t>& bytes) {
    bytes[bytes.size() / 2] ^= 0x01;  // one bit, mid-payload
  });
  EXPECT_EQ(error.code, "snapshot.crc");
}

TEST(SnapshotCorruption, WrongMagicFailsClosed) {
  const Error error = corrupt_and_read("magic", [](std::vector<std::uint8_t>& bytes) {
    bytes[0] = 'X';
  });
  EXPECT_EQ(error.code, "snapshot.magic");
}

TEST(SnapshotCorruption, FutureSchemaVersionRejected) {
  const std::string path = temp_path("future.snap");
  ASSERT_TRUE(write_snapshot_file(path, "test.kind", 9, sample_payload()).ok());
  const auto payload = read_snapshot_file(path, "test.kind", 1);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.error().code, "snapshot.version");
  EXPECT_NE(payload.error().message.find("9"), std::string::npos)
      << "error should name the offending version: " << payload.error().message;
}

TEST(SnapshotCorruption, KindMismatchRejected) {
  const std::string path = temp_path("kind.snap");
  ASSERT_TRUE(write_snapshot_file(path, "fl.fedavg", 1, sample_payload()).ok());
  const auto payload = read_snapshot_file(path, "core.gbd", 1);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.error().code, "snapshot.kind");
}

TEST(SnapshotCorruption, EmptyFileFailsClosed) {
  const std::string path = temp_path("empty.snap");
  dump(path, {});
  const auto payload = read_snapshot_file(path, "test.kind", 1);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.error().code, "snapshot.truncated");
}

TEST(Snapshot, RewriteIsAtomicReplacingOldContent) {
  const std::string path = temp_path("rewrite.snap");
  SnapshotWriter first;
  first.put_u64(1);
  SnapshotWriter second;
  second.put_u64(2);
  ASSERT_TRUE(write_snapshot_file(path, "test.kind", 1, first).ok());
  ASSERT_TRUE(write_snapshot_file(path, "test.kind", 1, second).ok());
  const auto payload = read_snapshot_file(path, "test.kind", 1);
  ASSERT_TRUE(payload.ok());
  SnapshotReader reader(payload.value());
  EXPECT_EQ(reader.get_u64(), 2u);
  // No stray temp file left behind.
  EXPECT_FALSE(snapshot_exists(path + ".tmp"));
}

TEST(Snapshot, DecodeSnapshotConvertsThrowToTypedError) {
  SnapshotWriter writer;
  writer.put_u32(1);
  // Decoder demands more than the payload holds -> snapshot.decode, no throw.
  const Result<int> decoded =
      decode_snapshot<int>(writer.payload(), [](SnapshotReader& reader) {
        (void)reader.get_u64();
        return 1;
      });
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "snapshot.decode");
}

TEST(Snapshot, DecodeSnapshotRejectsTrailingBytes) {
  SnapshotWriter writer;
  writer.put_u32(1);
  writer.put_u32(2);
  const Result<int> decoded =
      decode_snapshot<int>(writer.payload(), [](SnapshotReader& reader) {
        (void)reader.get_u32();
        return 1;  // leaves 4 bytes unread
      });
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "snapshot.decode");
}

}  // namespace
}  // namespace tradefl
