#include "common/result.h"

#include <gtest/gtest.h>

namespace tradefl {
namespace {

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> result(Error{"code", "message"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "code");
  EXPECT_EQ(result.error().to_string(), "code: message");
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(Result, ValueOnErrorThrows) {
  Result<int> result(Error{"e", "boom"});
  EXPECT_THROW((void)result.value(), std::runtime_error);
}

TEST(Result, MapTransformsValue) {
  Result<int> result(21);
  const auto doubled = result.map([](int x) { return x * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 42);
}

TEST(Result, MapPropagatesError) {
  Result<int> result(Error{"e", "nope"});
  const auto mapped = result.map([](int x) { return x + 1; });
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.error().code, "e");
}

TEST(Result, TakeMovesValue) {
  Result<std::string> result(std::string("moveme"));
  const std::string taken = std::move(result).take();
  EXPECT_EQ(taken, "moveme");
}

TEST(Status, OkHelper) {
  EXPECT_TRUE(ok_status().ok());
}

}  // namespace
}  // namespace tradefl
