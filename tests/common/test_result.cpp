#include "common/result.h"

#include <gtest/gtest.h>

namespace tradefl {
namespace {

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> result(Error{"code", "message"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "code");
  EXPECT_EQ(result.error().to_string(), "code: message");
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(Result, ValueOnErrorThrows) {
  Result<int> result(Error{"e", "boom"});
  EXPECT_THROW((void)result.value(), std::runtime_error);
}

TEST(Result, MapTransformsValue) {
  Result<int> result(21);
  const auto doubled = result.map([](int x) { return x * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 42);
}

TEST(Result, MapPropagatesError) {
  Result<int> result(Error{"e", "nope"});
  const auto mapped = result.map([](int x) { return x + 1; });
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.error().code, "e");
}

TEST(Result, AndThenChainsResults) {
  Result<int> result(20);
  const auto chained = result
                           .and_then([](int x) -> Result<int> { return x + 1; })
                           .and_then([](int x) -> Result<int> { return x * 2; });
  ASSERT_TRUE(chained.ok());
  EXPECT_EQ(chained.value(), 42);
}

TEST(Result, AndThenShortCircuitsOnError) {
  Result<int> result(1);
  bool second_ran = false;
  const auto chained = result
                           .and_then([](int) -> Result<int> { return Error{"mid", "stop"}; })
                           .and_then([&](int x) -> Result<int> {
                             second_ran = true;
                             return x;
                           });
  ASSERT_FALSE(chained.ok());
  EXPECT_EQ(chained.error().code, "mid");
  EXPECT_FALSE(second_ran);
}

TEST(Result, AndThenCanChangeType) {
  Result<int> result(7);
  const Result<std::string> text =
      result.and_then([](int x) -> Result<std::string> { return std::to_string(x); });
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), "7");
}

TEST(Result, OrElseRecoversFromError) {
  Result<int> result(Error{"e", "broken"});
  const Result<int> recovered = result.or_else([](const Error&) -> Result<int> { return 5; });
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 5);
}

TEST(Result, OrElseCanRewrapError) {
  Result<int> result(Error{"inner", "detail"});
  const Result<int> rewrapped = result.or_else([](const Error& error) -> Result<int> {
    return Error{"outer", "context: " + error.message};
  });
  ASSERT_FALSE(rewrapped.ok());
  EXPECT_EQ(rewrapped.error().code, "outer");
  EXPECT_EQ(rewrapped.error().message, "context: detail");
}

TEST(Result, OrElsePassesValueThrough) {
  Result<int> result(3);
  bool handler_ran = false;
  const Result<int> passed = result.or_else([&](const Error&) -> Result<int> {
    handler_ran = true;
    return 0;
  });
  ASSERT_TRUE(passed.ok());
  EXPECT_EQ(passed.value(), 3);
  EXPECT_FALSE(handler_ran);
}

TEST(Result, TakeMovesValue) {
  Result<std::string> result(std::string("moveme"));
  const std::string taken = std::move(result).take();
  EXPECT_EQ(taken, "moveme");
}

TEST(Status, OkHelper) {
  EXPECT_TRUE(ok_status().ok());
}

}  // namespace
}  // namespace tradefl
