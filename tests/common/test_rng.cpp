#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace tradefl {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double draw = rng.uniform01();
    EXPECT_GE(draw, 0.0);
    EXPECT_LT(draw, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  double total = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) total += rng.uniform01();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double draw = rng.uniform(-2.5, 7.5);
    EXPECT_GE(draw, -2.5);
    EXPECT_LT(draw, 7.5);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t draw = rng.uniform_int(-3, 3);
    EXPECT_GE(draw, -3);
    EXPECT_LE(draw, 3);
    seen.insert(draw);
  }
  EXPECT_EQ(seen.size(), 7u);  // all seven values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double draw = rng.normal();
    sum += draw;
    sum_sq += draw * draw;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, TruncatedNormalStaysInBounds) {
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) {
    const double draw = rng.truncated_normal(0.05, 0.01, 0.0, 1.0);
    EXPECT_GE(draw, 0.0);
    EXPECT_LE(draw, 1.0);
  }
}

TEST(Rng, TruncatedNormalTightBoundsClamped) {
  Rng rng(23);
  // Mean far outside [0, 0.001]: rejection fails, must clamp into range.
  const double draw = rng.truncated_normal(100.0, 0.1, 0.0, 0.001);
  EXPECT_GE(draw, 0.0);
  EXPECT_LE(draw, 0.001);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(31);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(Rng, PermutationEmpty) {
  Rng rng(31);
  EXPECT_TRUE(rng.permutation(0).empty());
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.split();
  // Child stream should not mirror the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleMatchesPermutationGather) {
  // shuffle(items) must reorder exactly as gathering through permutation(n)
  // from the same generator state: it is the allocation-free equivalent.
  std::vector<std::size_t> items{10, 11, 12, 13, 14, 15, 16, 17, 18};
  Rng a(91), b(91);
  std::vector<std::size_t> shuffled = items;
  a.shuffle(shuffled);
  const std::vector<std::size_t> perm = b.permutation(items.size());
  std::vector<std::size_t> gathered(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) gathered[i] = items[perm[i]];
  EXPECT_EQ(shuffled, gathered);
}

TEST(Rng, DeriveStreamSeedIsStateless) {
  const std::uint64_t base = 12345;
  const std::uint64_t seed3 = Rng::derive_stream_seed(base, 3);
  // Same inputs, same seed — no hidden generator state involved.
  EXPECT_EQ(seed3, Rng::derive_stream_seed(base, 3));
  // Distinct streams and distinct bases diverge.
  EXPECT_NE(seed3, Rng::derive_stream_seed(base, 4));
  EXPECT_NE(seed3, Rng::derive_stream_seed(base + 1, 3));
  // Consecutive stream ids yield uncorrelated generators.
  Rng s0(Rng::derive_stream_seed(base, 0));
  Rng s1(Rng::derive_stream_seed(base, 1));
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (s0.next_u64() == s1.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, StateRestoreRoundTripsAllFourWords) {
  Rng rng(2024);
  for (int i = 0; i < 37; ++i) (void)rng.next_u64();  // advance off the seed
  const Rng::State state = rng.state();

  Rng restored(1);  // deliberately different seed — restore must overwrite it
  restored.restore(state);
  EXPECT_EQ(restored.state(), state);
  EXPECT_EQ(restored.state(), rng.state());
}

TEST(Rng, RestoredGeneratorContinuesIdentically) {
  // The checkpoint contract: capture state mid-stream, keep drawing from the
  // original, then restore into a fresh generator — both must produce the
  // exact same continuation across every draw type.
  Rng original(777);
  for (int i = 0; i < 11; ++i) (void)original.uniform01();
  const Rng::State state = original.state();

  Rng resumed(0);
  resumed.restore(state);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(original.next_u64(), resumed.next_u64()) << "draw " << i;
  }
  EXPECT_EQ(original.uniform01(), resumed.uniform01());

  std::vector<std::size_t> a{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::size_t> b = a;
  original.shuffle(a);
  resumed.shuffle(b);
  EXPECT_EQ(a, b);
}

TEST(Rng, RestoreClearsBoxMullerCache) {
  // normal() caches the second Box–Muller draw. restore() must drop that
  // cache: the four state words alone define the continuation. If the cache
  // survived, the first normal() after restore would return the stale value
  // without advancing the state, desynchronizing the streams immediately.
  Rng rng(99);
  (void)rng.normal();  // leaves a cached second normal behind
  const Rng::State state = rng.state();
  rng.restore(state);  // self-restore must clear the cache

  Rng resumed(0);
  resumed.restore(state);  // fresh generator, trivially cache-free
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rng.normal(), resumed.normal()) << "draw " << i;
}

}  // namespace
}  // namespace tradefl
