// Contract macro behavior: pass-through, failure message content, finite and
// bounds checks. Contracts are force-enabled for this translation unit so the
// debug-tier macros stay testable in every build type; the definition below
// must precede the include.
#define TRADEFL_ENABLE_CONTRACTS 1

#include "common/check.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.h"

namespace tradefl {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  EXPECT_NO_THROW(TFL_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(TFL_CHECK(true, "unused ", 42));
  EXPECT_NO_THROW(TFL_ASSERT(3 > 2));
  EXPECT_NO_THROW(TFL_BOUNDS(std::size_t{3}, std::size_t{4}));
  EXPECT_NO_THROW(TFL_FINITE(0.0));
  EXPECT_NO_THROW(TFL_FINITE(-1.5e300));
}

TEST(CheckTest, FailedCheckThrowsWithExpressionAndLocation) {
  try {
    TFL_CHECK(2 + 2 == 5);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("TFL_CHECK(2 + 2 == 5)"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
  }
}

TEST(CheckTest, FailedCheckFormatsDetailParts) {
  const int lhs = 3;
  const double rhs = 0.5;
  try {
    TFL_CHECK(lhs < rhs, "lhs=", lhs, " rhs=", rhs);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("lhs=3"), std::string::npos) << what;
    EXPECT_NE(what.find("rhs=0.5"), std::string::npos) << what;
  }
}

TEST(CheckTest, FailedAssertNamesItsTier) {
  try {
    TFL_ASSERT(false, "context");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("TFL_ASSERT(false)"), std::string::npos) << what;
    EXPECT_NE(what.find("context"), std::string::npos) << what;
  }
}

TEST(CheckTest, BoundsReportsIndexAndRange) {
  const std::size_t index = 7;
  const std::size_t size = 4;
  try {
    TFL_BOUNDS(index, size);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("index 7 out of range [0, 4)"), std::string::npos) << what;
  }
}

TEST(CheckTest, BoundsEvaluatesOperandsExactlyOnce) {
  std::size_t calls = 0;
  auto next = [&calls]() {
    ++calls;
    return std::size_t{0};
  };
  TFL_BOUNDS(next(), std::size_t{1});
  EXPECT_EQ(calls, 1u);
}

TEST(CheckTest, FiniteRejectsNanWithName) {
  const double nan_value = std::numeric_limits<double>::quiet_NaN();
  try {
    TFL_FINITE(nan_value);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("TFL_FINITE(nan_value)"), std::string::npos) << what;
    EXPECT_NE(what.find("NaN"), std::string::npos) << what;
  }
}

TEST(CheckTest, FiniteRejectsInfinitiesWithSign) {
  const double pos = std::numeric_limits<double>::infinity();
  const double neg = -std::numeric_limits<double>::infinity();
  EXPECT_THROW(TFL_FINITE(pos), ContractViolation);
  try {
    TFL_FINITE(neg);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& violation) {
    EXPECT_NE(std::string(violation.what()).find("-Inf"), std::string::npos);
  }
}

TEST(CheckTest, FiniteAcceptsFloatArguments) {
  const float value = 1.25f;
  EXPECT_NO_THROW(TFL_FINITE(value));
  EXPECT_THROW(TFL_FINITE(std::numeric_limits<float>::infinity()), ContractViolation);
}

TEST(CheckTest, ViolationIsLoggedBeforeThrowing) {
  std::string captured;
  set_log_sink([&captured](LogLevel level, const std::string& line) {
    if (level == LogLevel::kError) captured = line;
  });
  EXPECT_THROW(TFL_CHECK(false, "logged-detail"), ContractViolation);
  reset_log_sink();
  EXPECT_NE(captured.find("logged-detail"), std::string::npos) << captured;
}

TEST(CheckTest, ViolationIsALogicError) {
  // Callers that blanket-catch std::exception (the CLI) must see contract
  // failures; ContractViolation therefore sits in the std::logic_error tree.
  EXPECT_THROW(TFL_CHECK(false), std::logic_error);
}

}  // namespace
}  // namespace tradefl
