// FaultPlan parsing and the FaultInjector determinism contract: every query
// must be a pure function of (plan, kind, round, target), independent of
// query order and of which other faults fired.
#include "common/faults.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tradefl {
namespace {

TEST(FaultPlan, DefaultIsEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(FaultInjector(plan).enabled());
  EXPECT_FALSE(FaultInjector().enabled());
}

TEST(FaultPlan, ParsesSpec) {
  const auto plan =
      parse_fault_plan("drop:0.2,straggle:0.1,scale:4,corrupt:0.05,noise:0.5,"
                       "revert:0.01,gas:0.02,submit:0.03,solver:0.04,seed:7");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan.value().dropout_rate, 0.2);
  EXPECT_DOUBLE_EQ(plan.value().straggler_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan.value().straggler_scale, 4.0);
  EXPECT_DOUBLE_EQ(plan.value().corrupt_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan.value().corrupt_noise, 0.5);
  EXPECT_DOUBLE_EQ(plan.value().revert_rate, 0.01);
  EXPECT_DOUBLE_EQ(plan.value().gas_exhaustion_rate, 0.02);
  EXPECT_DOUBLE_EQ(plan.value().submit_failure_rate, 0.03);
  EXPECT_DOUBLE_EQ(plan.value().solver_perturb_rate, 0.04);
  EXPECT_EQ(plan.value().seed, 7u);
  EXPECT_FALSE(plan.value().empty());
}

TEST(FaultPlan, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_fault_plan("drop").ok());           // no colon
  EXPECT_FALSE(parse_fault_plan("bogus:1").ok());        // unknown key
  EXPECT_FALSE(parse_fault_plan("drop:1.5").ok());       // rate out of range
  EXPECT_FALSE(parse_fault_plan("drop:-0.1").ok());      // negative rate
  EXPECT_FALSE(parse_fault_plan("drop:abc").ok());       // not a number
  EXPECT_FALSE(parse_fault_plan("scale:0.5").ok());      // scale must be >= 1
  EXPECT_FALSE(parse_fault_plan("noise:-1").ok());       // noise must be >= 0
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  const auto plan = parse_fault_plan("");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().empty());
}

TEST(FaultPlan, SummaryMentionsActiveRates) {
  FaultPlan plan;
  plan.dropout_rate = 0.25;
  plan.seed = 11;
  const std::string summary = plan.summary();
  EXPECT_NE(summary.find("drop"), std::string::npos);
  EXPECT_NE(summary.find("seed"), std::string::npos);
}

TEST(FaultInjector, QueriesArePureFunctions) {
  FaultPlan plan;
  plan.seed = 5;
  plan.dropout_rate = 0.3;
  plan.revert_rate = 0.2;
  plan.solver_perturb_rate = 0.1;
  const FaultInjector injector(plan);
  // Repeating a query — and interleaving it with others — never changes it.
  for (std::uint64_t round = 1; round <= 20; ++round) {
    for (std::uint64_t client = 0; client < 8; ++client) {
      const bool first = injector.drop_client(round, client);
      (void)injector.revert_call(round * 8 + client);
      (void)injector.perturb_solver(round);
      EXPECT_EQ(injector.drop_client(round, client), first);
    }
  }
}

TEST(FaultInjector, TwoInjectorsSamePlanAgree) {
  FaultPlan plan;
  plan.seed = 9;
  plan.dropout_rate = 0.5;
  plan.submit_failure_rate = 0.4;
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(a.drop_client(k / 10, k % 10), b.drop_client(k / 10, k % 10));
    EXPECT_EQ(a.fail_submission(k), b.fail_submission(k));
  }
}

TEST(FaultInjector, SeedChangesSchedule) {
  FaultPlan lhs;
  lhs.dropout_rate = 0.5;
  lhs.seed = 1;
  FaultPlan rhs = lhs;
  rhs.seed = 2;
  const FaultInjector a(lhs);
  const FaultInjector b(rhs);
  int differences = 0;
  for (std::uint64_t k = 0; k < 200; ++k) {
    if (a.drop_client(k / 10, k % 10) != b.drop_client(k / 10, k % 10)) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(FaultInjector, RatesHitApproximatelyAtRate) {
  FaultPlan plan;
  plan.dropout_rate = 0.3;
  plan.seed = 13;
  const FaultInjector injector(plan);
  int hits = 0;
  const int trials = 2000;
  for (int k = 0; k < trials; ++k) {
    if (injector.drop_client(static_cast<std::uint64_t>(k / 40),
                             static_cast<std::uint64_t>(k % 40))) {
      ++hits;
    }
  }
  const double observed = static_cast<double>(hits) / trials;
  EXPECT_NEAR(observed, 0.3, 0.05);
}

TEST(FaultInjector, ExplicitEventFiresExactlyWhereScheduled) {
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultKind::kClientDropout, 3, 1, 0.0});
  const FaultInjector injector(plan);
  EXPECT_TRUE(injector.enabled());
  EXPECT_TRUE(injector.drop_client(3, 1));
  EXPECT_FALSE(injector.drop_client(3, 0));
  EXPECT_FALSE(injector.drop_client(2, 1));
  EXPECT_FALSE(injector.drop_client(4, 1));
}

TEST(FaultInjector, AnyTargetEventHitsEveryClient) {
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultKind::kClientDropout, 2, kAnyFaultTarget, 0.0});
  const FaultInjector injector(plan);
  for (std::uint64_t client = 0; client < 5; ++client) {
    EXPECT_TRUE(injector.drop_client(2, client));
    EXPECT_FALSE(injector.drop_client(1, client));
  }
}

TEST(FaultInjector, StragglerScaleUsesMagnitude) {
  FaultPlan plan;
  plan.straggler_scale = 5.0;
  plan.events.push_back(FaultEvent{FaultKind::kStragglerDelay, 1, 0, 2.5});
  plan.events.push_back(FaultEvent{FaultKind::kStragglerDelay, 1, 1, 0.0});
  const FaultInjector injector(plan);
  EXPECT_DOUBLE_EQ(injector.straggler_scale(1, 0), 2.5);   // event magnitude
  EXPECT_DOUBLE_EQ(injector.straggler_scale(1, 1), 5.0);   // plan default
  EXPECT_DOUBLE_EQ(injector.straggler_scale(2, 0), 1.0);   // no fault
}

TEST(FaultInjector, CorruptionSpecSelectsNanOrNoise) {
  FaultPlan nan_plan;
  nan_plan.events.push_back(FaultEvent{FaultKind::kUpdateCorruption, 1, 0, 0.0});
  const CorruptionSpec nan_spec = FaultInjector(nan_plan).corrupt_update(1, 0);
  EXPECT_TRUE(nan_spec.corrupt);
  EXPECT_TRUE(nan_spec.use_nan);

  FaultPlan noise_plan = nan_plan;
  noise_plan.corrupt_noise = 0.7;
  const CorruptionSpec noise_spec = FaultInjector(noise_plan).corrupt_update(1, 0);
  EXPECT_TRUE(noise_spec.corrupt);
  EXPECT_FALSE(noise_spec.use_nan);
  EXPECT_DOUBLE_EQ(noise_spec.noise_stddev, 0.7);

  EXPECT_FALSE(FaultInjector(nan_plan).corrupt_update(2, 0).corrupt);
}

TEST(FaultInjector, CorruptionRngIsStatelessPerCell) {
  FaultPlan plan;
  plan.corrupt_rate = 1.0;
  plan.corrupt_noise = 1.0;
  const FaultInjector injector(plan);
  Rng first = injector.corruption_rng(4, 2);
  Rng second = injector.corruption_rng(4, 2);
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(first.uniform01(), second.uniform01());
  }
  // Distinct cells get distinct streams.
  Rng other = injector.corruption_rng(4, 3);
  Rng base = injector.corruption_rng(4, 2);
  bool any_different = false;
  for (int k = 0; k < 8; ++k) {
    if (base.uniform01() != other.uniform01()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(FaultKindName, StableNames) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kClientDropout), "dropout");
  EXPECT_STREQ(fault_kind_name(FaultKind::kTxRevert), "revert");
  EXPECT_STREQ(fault_kind_name(FaultKind::kSolverPerturbation), "solver_perturbation");
  EXPECT_STREQ(fault_kind_name(FaultKind::kSignFlip), "signflip");
  EXPECT_STREQ(fault_kind_name(FaultKind::kScaleAttack), "scale_attack");
  EXPECT_STREQ(fault_kind_name(FaultKind::kFreeRide), "freeride");
  EXPECT_STREQ(fault_kind_name(FaultKind::kCollude), "collude");
}

TEST(FaultPlan, ParseErrorsEchoTokenAndGrammar) {
  // Satellite contract: every typed parse error names the offending token
  // verbatim and repeats the accepted grammar, so a mistyped CLI spec is
  // self-diagnosing.
  struct Case {
    const char* spec;
    const char* token;
  };
  const Case cases[] = {
      {"drop:0.2,bogus:1", "bogus:1"},       // unknown key
      {"drop", "drop"},                      // missing colon
      {"drop:1.5", "drop:1.5"},              // rate out of range
      {"crash:1.5", "crash:1.5"},            // point must be an integer
      {"signflip:2.5", "signflip:2.5"},      // silo count must be an integer
      {"collude:-1", "collude:-1"},          // negative count
      {"amplifyx:0", "amplifyx:0"},          // factor must be positive
      {"colludex:abc", "colludex:abc"},      // not a number
  };
  for (const Case& test : cases) {
    const auto parsed = parse_fault_plan(test.spec);
    ASSERT_FALSE(parsed.ok()) << test.spec;
    EXPECT_EQ(parsed.error().code, "faults") << test.spec;
    EXPECT_NE(parsed.error().message.find(std::string("'") + test.token + "'"),
              std::string::npos)
        << parsed.error().message;
    EXPECT_NE(parsed.error().message.find(kFaultGrammar), std::string::npos) << test.spec;
  }
}

TEST(FaultPlan, ParsesAttackKeysAndRoundTrips) {
  const auto parsed = parse_fault_plan(
      "seed:9,collude:2,colludex:1.5,signflip:1,amplify:3,amplifyx:4,freeride:2");
  ASSERT_TRUE(parsed.ok());
  const FaultPlan& plan = parsed.value();
  EXPECT_EQ(plan.collude_silos, 2u);
  EXPECT_DOUBLE_EQ(plan.collude_shift, 1.5);
  EXPECT_EQ(plan.signflip_silos, 1u);
  EXPECT_EQ(plan.scale_silos, 3u);
  EXPECT_DOUBLE_EQ(plan.scale_factor, 4.0);
  EXPECT_EQ(plan.freeride_silos, 2u);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.has_attacks());

  const auto reparsed = parse_fault_plan(plan.spec_string());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().spec_string(), plan.spec_string());
}

TEST(FaultInjector, AttackBlocksAssignLowestIndexedSilosCollersFirst) {
  FaultPlan plan;
  plan.collude_silos = 2;
  plan.signflip_silos = 1;
  plan.freeride_silos = 1;
  const FaultInjector injector(plan);
  // Blocks in declaration order: silos 0-1 collude, 2 sign-flips, 3 free-
  // rides, 4+ honest — identical at every round.
  for (std::uint64_t round = 0; round < 3; ++round) {
    EXPECT_EQ(injector.attack_update(round, 0).kind, FaultKind::kCollude);
    EXPECT_EQ(injector.attack_update(round, 1).kind, FaultKind::kCollude);
    EXPECT_EQ(injector.attack_update(round, 2).kind, FaultKind::kSignFlip);
    EXPECT_EQ(injector.attack_update(round, 3).kind, FaultKind::kFreeRide);
    EXPECT_FALSE(injector.attack_update(round, 4).attack);
    EXPECT_TRUE(injector.attack_update(round, 0).attack);
  }
}

TEST(FaultInjector, CollusionRngIsSharedPerRoundAndVariesAcrossRounds) {
  FaultPlan plan;
  plan.seed = 21;
  plan.collude_silos = 3;
  const FaultInjector injector(plan);
  Rng a = injector.collusion_rng(5);
  Rng b = injector.collusion_rng(5);
  EXPECT_EQ(a.next_u64(), b.next_u64());  // every colluder draws the same stream
  Rng c = injector.collusion_rng(6);
  EXPECT_NE(injector.collusion_rng(5).next_u64(), c.next_u64());
}

}  // namespace
}  // namespace tradefl
