#include "common/config.h"

#include <gtest/gtest.h>

namespace tradefl {
namespace {

TEST(Config, ParsesKeyValueArgs) {
  const auto config = Config::from_args({"gamma=5e-9", "scheme=dbr", "rounds=25"});
  ASSERT_TRUE(config.ok());
  EXPECT_DOUBLE_EQ(config.value().get_double("gamma", 0.0), 5e-9);
  EXPECT_EQ(config.value().get_string("scheme", ""), "dbr");
  EXPECT_EQ(config.value().get_int("rounds", 0), 25);
}

TEST(Config, LaterKeysOverride) {
  const auto config = Config::from_args({"x=1", "x=2"});
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().get_int("x", 0), 2);
}

TEST(Config, IgnoresCommentsAndBlanks) {
  const auto config = Config::from_text("# comment\n\na=1\n  # another\nb=2\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().entries().size(), 2u);
}

TEST(Config, RejectsMissingEquals) {
  EXPECT_FALSE(Config::from_args({"no-equals-here"}).ok());
}

TEST(Config, RejectsEmptyKey) {
  EXPECT_FALSE(Config::from_args({"=value"}).ok());
}

TEST(Config, FallbacksWhenMissing) {
  Config config;
  EXPECT_DOUBLE_EQ(config.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(config.get_int("missing", -7), -7);
  EXPECT_TRUE(config.get_bool("missing", true));
  EXPECT_EQ(config.get_string("missing", "dflt"), "dflt");
}

TEST(Config, BoolParsing) {
  Config config;
  config.set("t1", "true");
  config.set("t2", "1");
  config.set("t3", "YES");
  config.set("f1", "false");
  config.set("f2", "off");
  EXPECT_TRUE(config.get_bool("t1", false));
  EXPECT_TRUE(config.get_bool("t2", false));
  EXPECT_TRUE(config.get_bool("t3", false));
  EXPECT_FALSE(config.get_bool("f1", true));
  EXPECT_FALSE(config.get_bool("f2", true));
}

TEST(Config, ThrowsOnMalformedNumbers) {
  Config config;
  config.set("x", "12abc");
  EXPECT_THROW(static_cast<void>(config.get_double("x", 0.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(config.get_int("x", 0)), std::invalid_argument);
  config.set("b", "maybe");
  EXPECT_THROW(static_cast<void>(config.get_bool("b", false)), std::invalid_argument);
}

TEST(Config, TrimsWhitespace) {
  const auto config = Config::from_args({"  key =  value  "});
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().get_string("key", ""), "value");
}

}  // namespace
}  // namespace tradefl
