#include "common/logging.h"

#include <gtest/gtest.h>

#include <vector>

namespace tradefl {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_level(LogLevel::kTrace);
    set_log_sink([this](LogLevel level, const std::string& message) {
      captured_.emplace_back(level, message);
    });
  }
  void TearDown() override {
    reset_log_sink();
    set_log_level(LogLevel::kWarn);
    set_log_timestamps(false);
    set_log_thread_ids(false);
  }
  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, CapturesMessageThroughSink) {
  TFL_INFO << "hello " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "hello 42");
}

TEST_F(LoggingTest, LevelFiltering) {
  set_log_level(LogLevel::kError);
  TFL_DEBUG << "dropped";
  TFL_WARN << "dropped too";
  TFL_ERROR << "kept";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "kept");
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  TFL_ERROR << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LoggingTest, TimestampPrefix) {
  set_log_timestamps(true);
  TFL_INFO << "stamped";
  ASSERT_EQ(captured_.size(), 1u);
  // "[+<seconds>s] stamped" with three decimals.
  const std::string& line = captured_[0].second;
  EXPECT_EQ(line.substr(0, 2), "[+");
  const auto close = line.find("s] ");
  ASSERT_NE(close, std::string::npos);
  EXPECT_EQ(line.substr(close + 3), "stamped");
  const std::string seconds = line.substr(2, close - 2);
  EXPECT_NE(seconds.find('.'), std::string::npos);
  EXPECT_GE(std::stod(seconds), 0.0);
}

TEST_F(LoggingTest, ThreadIdPrefix) {
  set_log_thread_ids(true);
  TFL_INFO << "tagged";
  ASSERT_EQ(captured_.size(), 1u);
  const std::string& line = captured_[0].second;
  ASSERT_EQ(line.substr(0, 2), "[t");
  const auto close = line.find("] ");
  ASSERT_NE(close, std::string::npos);
  EXPECT_EQ(line.substr(close + 2), "tagged");
  // The index is a small non-negative integer.
  EXPECT_GE(std::stoi(line.substr(2, close - 2)), 0);
}

TEST_F(LoggingTest, BothPrefixesComposeInOrder) {
  set_log_timestamps(true);
  set_log_thread_ids(true);
  TFL_WARN << "x";
  ASSERT_EQ(captured_.size(), 1u);
  const std::string& line = captured_[0].second;
  EXPECT_EQ(line.substr(0, 2), "[+");
  EXPECT_NE(line.find("s] [t"), std::string::npos);
}

TEST_F(LoggingTest, EveryNLogsFirstAndEveryNth) {
  for (int i = 0; i < 10; ++i) {
    TFL_LOG_EVERY_N(LogLevel::kInfo, 4) << "tick " << i;
  }
  // Occurrences 0, 4, 8 pass.
  ASSERT_EQ(captured_.size(), 3u);
  EXPECT_EQ(captured_[0].second, "tick 0");
  EXPECT_EQ(captured_[1].second, "tick 4");
  EXPECT_EQ(captured_[2].second, "tick 8");
}

TEST_F(LoggingTest, EveryNCountsPerCallSite) {
  for (int i = 0; i < 3; ++i) {
    TFL_LOG_EVERY_N(LogLevel::kInfo, 100) << "site a " << i;
    TFL_LOG_EVERY_N(LogLevel::kInfo, 100) << "site b " << i;
  }
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].second, "site a 0");
  EXPECT_EQ(captured_[1].second, "site b 0");
}

TEST_F(LoggingTest, EveryNStillRespectsLevel) {
  set_log_level(LogLevel::kError);
  for (int i = 0; i < 5; ++i) {
    TFL_LOG_EVERY_N(LogLevel::kDebug, 1) << "suppressed";
  }
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LoggingTest, EveryNIsSafeInUnbracedIf) {
  for (int i = 0; i < 2; ++i) {
    if (i == 1)
      TFL_LOG_EVERY_N(LogLevel::kInfo, 1) << "branch " << i;
  }
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "branch 1");
}

TEST(LogLevelName, AllNamed) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace tradefl
