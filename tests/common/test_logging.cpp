#include "common/logging.h"

#include <gtest/gtest.h>

#include <vector>

namespace tradefl {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_level(LogLevel::kTrace);
    set_log_sink([this](LogLevel level, const std::string& message) {
      captured_.emplace_back(level, message);
    });
  }
  void TearDown() override {
    reset_log_sink();
    set_log_level(LogLevel::kWarn);
  }
  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, CapturesMessageThroughSink) {
  TFL_INFO << "hello " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "hello 42");
}

TEST_F(LoggingTest, LevelFiltering) {
  set_log_level(LogLevel::kError);
  TFL_DEBUG << "dropped";
  TFL_WARN << "dropped too";
  TFL_ERROR << "kept";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "kept");
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  TFL_ERROR << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST(LogLevelName, AllNamed) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace tradefl
