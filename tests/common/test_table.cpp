#include "common/table.h"

#include <gtest/gtest.h>

namespace tradefl {
namespace {

TEST(AsciiTable, RendersAlignedGrid) {
  AsciiTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.render();
  // Every line has identical width.
  std::size_t width = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
  EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(AsciiTable, RejectsBadRows) {
  AsciiTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(AsciiTable({}), std::invalid_argument);
  EXPECT_THROW(AsciiTable({"a"}, {Align::kLeft, Align::kRight}), std::invalid_argument);
}

TEST(AsciiTable, LabeledDoubleRows) {
  AsciiTable table({"scheme", "welfare", "damage"});
  table.add_labeled_row("DBR", {8582.7, 16.3}, 6);
  EXPECT_EQ(table.row_count(), 1u);
  const std::string out = table.render();
  EXPECT_NE(out.find("8582.7"), std::string::npos);
  EXPECT_NE(out.find("DBR"), std::string::npos);
}

TEST(AsciiTable, AlignmentLeftVsRight) {
  AsciiTable table({"l", "r"}, {Align::kLeft, Align::kRight});
  table.add_row({"a", "b"});
  const std::string out = table.render();
  // Left cell pads on the right; right cell pads on the left.
  EXPECT_NE(out.find("| a |"), std::string::npos);
}

}  // namespace
}  // namespace tradefl
