#include "common/csv.h"

#include <gtest/gtest.h>

namespace tradefl {
namespace {

TEST(CsvWriter, HeaderAndRows) {
  CsvWriter writer({"a", "b"});
  writer.add_row({"1", "2"});
  writer.add_row({"x", "y"});
  EXPECT_EQ(writer.to_string(), "a,b\n1,2\nx,y\n");
  EXPECT_EQ(writer.row_count(), 2u);
}

TEST(CsvWriter, RejectsEmptyHeader) {
  EXPECT_THROW(CsvWriter({}), std::invalid_argument);
}

TEST(CsvWriter, RejectsWidthMismatch) {
  CsvWriter writer({"a", "b"});
  EXPECT_THROW(writer.add_row({"only one"}), std::invalid_argument);
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  CsvWriter writer({"text"});
  writer.add_row({"hello, world"});
  writer.add_row({"line\nbreak"});
  writer.add_row({"has \"quotes\""});
  const std::string out = writer.to_string();
  EXPECT_NE(out.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(out.find("\"line\nbreak\""), std::string::npos);
  EXPECT_NE(out.find("\"has \"\"quotes\"\"\""), std::string::npos);
}

TEST(CsvWriter, DoubleRows) {
  CsvWriter writer({"x", "y"});
  writer.add_row_doubles({1.5, -2.25});
  EXPECT_EQ(writer.to_string(), "x,y\n1.5,-2.25\n");
}

TEST(CsvParse, RoundTripsWriterOutput) {
  CsvWriter writer({"name", "value"});
  writer.add_row({"plain", "1"});
  writer.add_row({"with, comma", "2"});
  writer.add_row({"with \"quote\"", "3"});
  const auto parsed = parse_csv(writer.to_string());
  ASSERT_TRUE(parsed.ok());
  const CsvTable& table = parsed.value();
  ASSERT_EQ(table.rows.size(), 3u);
  EXPECT_EQ(table.header, (std::vector<std::string>{"name", "value"}));
  EXPECT_EQ(table.rows[1][0], "with, comma");
  EXPECT_EQ(table.rows[2][0], "with \"quote\"");
}

TEST(CsvParse, HandlesCrlf) {
  const auto parsed = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().rows.size(), 1u);
  EXPECT_EQ(parsed.value().rows[0][1], "2");
}

TEST(CsvParse, RejectsRowWidthMismatch) {
  const auto parsed = parse_csv("a,b\n1,2,3\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "csv");
}

TEST(CsvParse, RejectsUnterminatedQuote) {
  const auto parsed = parse_csv("a\n\"unterminated\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(CsvParse, RejectsEmptyInput) {
  EXPECT_FALSE(parse_csv("").ok());
}

TEST(CsvFile, WriteAndReadBack) {
  CsvWriter writer({"k", "v"});
  writer.add_row({"x", "42"});
  const std::string path = testing::TempDir() + "/tradefl_csv_test.csv";
  ASSERT_TRUE(writer.write_file(path).ok());
  const auto parsed = read_csv_file(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().rows[0][1], "42");
}

TEST(CsvFile, MissingFileReportsIoError) {
  const auto parsed = read_csv_file("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "io");
}

}  // namespace
}  // namespace tradefl
