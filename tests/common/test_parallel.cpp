// The execution layer's contract: every chunk runs exactly once, nesting is
// inline (no deadlock), exceptions propagate, and ordered_reduce makes the
// fold bit-identical for any pool size.
#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tradefl {
namespace {

TEST(ThreadPool, SizeClampsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(ThreadPool(3).size(), 3u);
}

TEST(ThreadPool, RunChunksVisitsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(257);
  for (auto& v : visits) v.store(0);
  pool.run_chunks(visits.size(), [&](std::size_t chunk, std::size_t worker) {
    EXPECT_LT(worker, pool.size());
    visits[chunk].fetch_add(1);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, SerialFallbackRunsInlineOnCaller) {
  std::vector<int> visits(10, 0);
  run_chunks(nullptr, visits.size(), [&](std::size_t chunk, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    ++visits[chunk];
  });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(ThreadPool, ParallelForCoversRangeWithGrainBound) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(100);
  for (auto& v : touched) v.store(0);
  pool.parallel_for(5, 100, 7, [&](std::size_t lo, std::size_t hi, std::size_t) {
    EXPECT_LE(hi - lo, 7u);
    for (std::size_t i = lo; i < hi; ++i) touched[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i].load(), i >= 5 ? 1 : 0) << "index " << i;
  }
}

TEST(ThreadPool, ChunkCountMath) {
  EXPECT_EQ(chunk_count(0, 8), 0u);
  EXPECT_EQ(chunk_count(1, 8), 1u);
  EXPECT_EQ(chunk_count(8, 8), 1u);
  EXPECT_EQ(chunk_count(9, 8), 2u);
  EXPECT_EQ(chunk_count(17, 8), 3u);
}

TEST(ThreadPool, NestedRegionsRunInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.run_chunks(8, [&](std::size_t, std::size_t outer_worker) {
    // A nested region on the same pool must not wait for pool workers (they
    // are all busy here) — it runs inline on this worker.
    pool.run_chunks(4, [&](std::size_t, std::size_t inner_worker) {
      EXPECT_EQ(inner_worker, outer_worker);
      inner_total.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 4);
}

TEST(ThreadPool, FirstExceptionIsRethrownAfterDrain) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_chunks(64,
                               [&](std::size_t chunk, std::size_t) {
                                 if (chunk == 13) throw std::runtime_error("chunk 13");
                               }),
               std::runtime_error);
  // The pool stays usable after a failed batch.
  std::atomic<int> count{0};
  pool.run_chunks(16, [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, QueueDepthZeroWhenIdle) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.queue_depth(), 0u);
  pool.run_chunks(8, [](std::size_t, std::size_t) {});
  EXPECT_EQ(pool.queue_depth(), 0u);
}

double chunk_value(std::size_t chunk) {
  double acc = 0.0;
  for (int i = 0; i < 50; ++i) {
    acc += std::sin(static_cast<double>(chunk) * 0.1 + static_cast<double>(i));
  }
  return acc;
}

TEST(ParallelOrderedReduce, BitIdenticalAcrossPoolSizes) {
  const std::size_t chunks = 97;
  const auto fold = [&](ThreadPool* pool) {
    return ordered_reduce<double>(
        pool, chunks, 0.0, [](std::size_t chunk, std::size_t) { return chunk_value(chunk); },
        [](double& acc, double&& value) { acc += value; });
  };
  const double serial = fold(nullptr);
  ThreadPool pool2(2), pool4(4), pool7(7);
  EXPECT_EQ(serial, fold(&pool2));  // exact: same fold order, same rounding
  EXPECT_EQ(serial, fold(&pool4));
  EXPECT_EQ(serial, fold(&pool7));
}

TEST(ParallelGlobalPool, SizedByThreadsSetting) {
  set_global_threads(1);
  EXPECT_EQ(global_pool(), nullptr);
  EXPECT_EQ(global_threads(), 1u);
  set_global_threads(4);
  ASSERT_NE(global_pool(), nullptr);
  EXPECT_EQ(global_pool()->size(), 4u);
  EXPECT_EQ(global_threads(), 4u);
  set_global_threads(1);
  EXPECT_EQ(global_pool(), nullptr);
}

}  // namespace
}  // namespace tradefl
