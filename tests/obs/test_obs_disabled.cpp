// Compiled with TRADEFL_ENABLE_TRACING=0 (forced in tests/CMakeLists.txt) no
// matter how the enclosing build is configured: regression-proves that a
// fully disabled build records no metric, no span, and never evaluates the
// macro operands — the guarantee behind "byte-identical solver results".
#include "obs/obs.h"

#include <gtest/gtest.h>

static_assert(TRADEFL_ENABLE_TRACING == 0,
              "this test must be compiled with the tracing gate off");

namespace tradefl::obs {
namespace {

class ObsDisabledTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics().reset();
    trace().reset();
    set_enabled(true);  // even the runtime switch must not matter
  }
  void TearDown() override {
    set_enabled(false);
    metrics().reset();
    trace().reset();
  }
};

TEST_F(ObsDisabledTest, MacrosRegisterAndRecordNothing) {
  TFL_COUNTER_INC("disabled.counter");
  TFL_COUNTER_ADD("disabled.counter", 5);
  TFL_GAUGE_SET("disabled.gauge", 1.25);
  TFL_OBSERVE("disabled.latency", 0.5);
  TFL_OBSERVE_BUCKETS("disabled.buckets", 0.5, 1.0, 2.0);
  TFL_SERIES_APPEND("disabled.series", 3.0);
  {
    TFL_SPAN("disabled.span");
    TFL_SCOPED_TIMER("disabled.timer");
    TFL_LATENCY_TIMER("disabled.slo.seconds");
    TFL_LEDGER_PHASE("disabled.phase");
  }
  TFL_LEDGER_EVENT("disabled.event", {"round", 1.0});
  const MetricsSnapshot snap = metrics().snapshot();
  EXPECT_EQ(snap.find_counter("disabled.counter"), nullptr);
  EXPECT_EQ(snap.find_gauge("disabled.gauge"), nullptr);
  EXPECT_EQ(snap.find_histogram("disabled.latency"), nullptr);
  EXPECT_EQ(snap.find_histogram("disabled.buckets"), nullptr);
  EXPECT_EQ(snap.find_histogram("disabled.timer"), nullptr);
  EXPECT_EQ(snap.find_histogram("disabled.slo.seconds"), nullptr);
  EXPECT_EQ(snap.find_series("disabled.series"), nullptr);
  EXPECT_TRUE(trace().events().empty());
}

TEST_F(ObsDisabledTest, OperandsAreParsedButNeverEvaluated) {
  int calls = 0;
  const auto touch = [&calls] {
    ++calls;
    return 1;
  };
  TFL_COUNTER_ADD("disabled.counter", touch());
  TFL_GAUGE_SET("disabled.gauge", touch());
  TFL_OBSERVE("disabled.latency", touch());
  TFL_SERIES_APPEND("disabled.series", touch());
  EXPECT_EQ(calls, 0);
}

TEST_F(ObsDisabledTest, ObsOnlyCompilesToNothing) {
  int value = 0;
  TFL_OBS_ONLY(value = 1;)
  EXPECT_EQ(value, 0);
}

}  // namespace
}  // namespace tradefl::obs
