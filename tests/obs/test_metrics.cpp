#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace tradefl::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter counter("c");
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Counter, ResetZeroes) {
  Counter counter("c");
  counter.add(7);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Gauge, LastWriteWins) {
  Gauge gauge("g");
  gauge.set(1.5);
  gauge.set(-2.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -2.25);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram("h", {}), std::invalid_argument);
  EXPECT_THROW(Histogram("h", {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram("h", {2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, BucketEdgesUseLessOrEqualSemantics) {
  Histogram histogram("h", {1.0, 2.0, 5.0});
  histogram.observe(0.5);  // <= 1.0
  histogram.observe(1.0);  // exactly on the edge: still the 1.0 bucket
  histogram.observe(1.5);  // <= 2.0
  histogram.observe(5.0);  // exactly on the last finite edge
  histogram.observe(7.0);  // overflow -> +Inf bucket
  const Histogram::Snapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 finite bounds + overflow
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 15.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 7.0);
}

TEST(Histogram, EmptySnapshotReportsZeroMinMax) {
  Histogram histogram("h", {1.0});
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
}

TEST(Histogram, ResetClearsCountsButKeepsBounds) {
  Histogram histogram("h", {1.0, 2.0});
  histogram.observe(0.5);
  histogram.reset();
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.counts, (std::vector<std::uint64_t>{0, 0, 0}));
  EXPECT_EQ(snap.upper_bounds, (std::vector<double>{1.0, 2.0}));
  histogram.observe(10.0);
  EXPECT_DOUBLE_EQ(histogram.snapshot().min, 10.0);  // reset restored +inf seed
}

TEST(Quantile, EmptyHistogramReportsZero) {
  Histogram histogram("h", {1.0, 2.0});
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.p50(), 0.0);
  EXPECT_DOUBLE_EQ(snap.p99(), 0.0);
}

TEST(Quantile, SingleSampleReportsTheSampleExactly) {
  Histogram histogram("h", {1.0, 2.0, 5.0});
  histogram.observe(1.5);  // somewhere inside the (1, 2] bucket
  const Histogram::Snapshot snap = histogram.snapshot();
  // min == max == 1.5, so the clamp pins every quantile to the sample.
  EXPECT_DOUBLE_EQ(snap.p50(), 1.5);
  EXPECT_DOUBLE_EQ(snap.p90(), 1.5);
  EXPECT_DOUBLE_EQ(snap.p99(), 1.5);
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 1.5);
}

TEST(Quantile, InterpolatesLinearlyInsideABucket) {
  Histogram histogram("h", {10.0, 20.0});
  for (double v : {10.5, 12.0, 14.0, 19.0}) histogram.observe(v);  // all (10, 20]
  const Histogram::Snapshot snap = histogram.snapshot();
  // Rank q*4 inside the (10, 20] bucket: lo = 10, hi = 20, fraction = q.
  EXPECT_DOUBLE_EQ(snap.quantile(0.25), 12.5);
  EXPECT_DOUBLE_EQ(snap.p50(), 15.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.75), 17.5);
  // q = 0 / q = 1 are the observed extremes, not bucket edges.
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 10.5);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 19.0);
}

TEST(Quantile, OverflowBucketInterpolatesUpToObservedMax) {
  Histogram histogram("h", {1.0});
  histogram.observe(0.5);  // <= 1.0
  histogram.observe(3.0);  // overflow
  histogram.observe(7.0);  // overflow, sets max
  const Histogram::Snapshot snap = histogram.snapshot();
  // p99: target rank 2.97 lands in the overflow bucket (1 before it, 2 in
  // it); the bucket spans [1.0, max=7.0], fraction (2.97-1)/2.
  EXPECT_DOUBLE_EQ(snap.p99(), 1.0 + (0.99 * 3.0 - 1.0) / 2.0 * 6.0);
  EXPECT_LE(snap.p99(), snap.max);
}

TEST(Quantile, EstimateNeverLeavesObservedRange) {
  Histogram histogram("h", {1.0, 2.0});
  histogram.observe(0.9);
  histogram.observe(0.9);
  const Histogram::Snapshot snap = histogram.snapshot();
  // Raw interpolation inside [min=0.9, 1.0] would say 0.95; the clamp to the
  // observed [0.9, 0.9] wins.
  EXPECT_DOUBLE_EQ(snap.p50(), 0.9);
  EXPECT_DOUBLE_EQ(snap.p99(), 0.9);
}

TEST(Quantile, QuantilesAreMonotoneInQ) {
  Histogram histogram("h", log_bucket_bounds(1e-6, 1.0, 4));
  for (int i = 1; i <= 100; ++i) histogram.observe(1e-5 * i);
  const Histogram::Snapshot snap = histogram.snapshot();
  double previous = snap.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double estimate = snap.quantile(q);
    EXPECT_GE(estimate, previous) << "q=" << q;
    previous = estimate;
  }
}

TEST(LogBucketBounds, RejectsBadArguments) {
  EXPECT_THROW(log_bucket_bounds(0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(log_bucket_bounds(-1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(log_bucket_bounds(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(log_bucket_bounds(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(log_bucket_bounds(1.0, 2.0, 0), std::invalid_argument);
}

TEST(LogBucketBounds, CoversRangeWithStrictlyIncreasingBounds) {
  const std::vector<double> bounds = log_bucket_bounds(1.0, 10.0, 2);
  ASSERT_EQ(bounds.size(), 3u);  // 1, sqrt(10), 10
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
  EXPECT_NEAR(bounds[1], std::sqrt(10.0), 1e-12);
  EXPECT_GE(bounds.back(), 10.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_GT(bounds[i], bounds[i - 1]);
}

TEST(LatencyHistogram, UsesFineLogBucketsAndRegistersOnce) {
  const std::vector<double> bounds = latency_histogram_bounds();
  EXPECT_NEAR(bounds.front(), 1e-7, 1e-15);
  EXPECT_GE(bounds.back(), 10.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_GT(bounds[i], bounds[i - 1]);
  Histogram& histogram = latency_histogram("test.latency.seconds");
  EXPECT_EQ(&histogram, &latency_histogram("test.latency.seconds"));
  EXPECT_EQ(histogram.bounds(), bounds);
}

TEST(Series, AppendsUpToCapacityAndCountsOverflow) {
  Series series("s", 4);
  for (int i = 0; i < 6; ++i) series.append(static_cast<double>(i));
  EXPECT_EQ(series.values(), (std::vector<double>{0.0, 1.0, 2.0, 3.0}));
  EXPECT_EQ(series.total_appends(), 6u);
  series.reset();
  EXPECT_TRUE(series.values().empty());
  EXPECT_EQ(series.total_appends(), 0u);
}

TEST(Registry, SameNameReturnsSameObject) {
  MetricsRegistry registry;
  EXPECT_EQ(&registry.counter("a"), &registry.counter("a"));
  EXPECT_NE(&registry.counter("a"), &registry.counter("b"));
  EXPECT_EQ(&registry.gauge("a"), &registry.gauge("a"));
  EXPECT_EQ(&registry.series("a"), &registry.series("a"));
}

TEST(Registry, FirstHistogramRegistrationFixesBounds) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("h", {1.0, 2.0});
  Histogram& again = registry.histogram("h", {99.0});
  EXPECT_EQ(&histogram, &again);
  EXPECT_EQ(again.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(Registry, EmptyBoundsSelectDefaultLatencyBounds) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.histogram("h").bounds(), default_latency_bounds());
}

TEST(Registry, ResetZeroesButKeepsRegistrationsAndAddresses) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("c");
  counter.add(3);
  registry.series("s").append(1.0);
  registry.reset();
  EXPECT_EQ(&registry.counter("c"), &counter);  // cached references stay valid
  EXPECT_EQ(counter.value(), 0u);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_NE(snap.find_counter("c"), nullptr);  // still registered
  ASSERT_NE(snap.find_series("s"), nullptr);
  EXPECT_TRUE(snap.find_series("s")->values.empty());
}

TEST(Snapshot, FindHelpersAndDeterministicOrder) {
  MetricsRegistry registry;
  registry.counter("z.second").add(2);
  registry.counter("a.first").add(1);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.first");  // sorted by name
  EXPECT_EQ(snap.counters[1].name, "z.second");
  ASSERT_NE(snap.find_counter("a.first"), nullptr);
  EXPECT_EQ(snap.find_counter("a.first")->value, 1u);
  EXPECT_EQ(snap.find_counter("missing"), nullptr);
  EXPECT_EQ(snap.find_gauge("missing"), nullptr);
  EXPECT_EQ(snap.find_histogram("missing"), nullptr);
  EXPECT_EQ(snap.find_series("missing"), nullptr);
}

TEST(Snapshot, EmptyReportsEmpty) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.snapshot().empty());
  registry.counter("c");
  EXPECT_FALSE(registry.snapshot().empty());
}

TEST(Snapshot, ToJsonCarriesEveryKind) {
  MetricsRegistry registry;
  registry.counter("solver.newton.iterations").add(12);
  registry.gauge("solver.gap").set(0.25);
  registry.histogram("chain.call.seconds", {0.5, 1.0}).observe(0.75);
  registry.series("fl.accuracy.trajectory").append(0.5);
  registry.series("fl.accuracy.trajectory").append(0.625);
  const std::string json = registry.snapshot().to_json();
  EXPECT_NE(json.find("\"solver.newton.iterations\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"solver.gap\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": 0.5, \"count\": 0}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": 1, \"count\": 1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": \"+Inf\", \"count\": 0}"), std::string::npos);
  EXPECT_NE(json.find("\"fl.accuracy.trajectory\": [0.5, 0.625]"), std::string::npos);
}

TEST(Snapshot, ToJsonTurnsNonFiniteIntoNull) {
  MetricsRegistry registry;
  registry.gauge("g").set(std::nan(""));
  EXPECT_NE(registry.snapshot().to_json().find("\"g\": null"), std::string::npos);
}

TEST(Snapshot, ToTableListsOneRowPerMetric) {
  MetricsRegistry registry;
  registry.counter("c").add(3);
  registry.gauge("g").set(1.5);
  registry.histogram("h", {1.0}).observe(0.5);
  registry.series("s").append(2.0);
  const std::string table = registry.snapshot().to_table();
  EXPECT_NE(table.find("counter"), std::string::npos);
  EXPECT_NE(table.find("gauge"), std::string::npos);
  EXPECT_NE(table.find("(mean)"), std::string::npos);
  EXPECT_NE(table.find("(last)"), std::string::npos);
}

TEST(Metrics, ConcurrentUpdatesLoseNothing) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("c");
  Histogram& histogram = registry.histogram("h", {0.5});
  Gauge& gauge = registry.gauge("g");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram, &gauge] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        histogram.observe(1.0);
        gauge.set(1.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.0);
}

TEST(Enabled, RuntimeToggleRoundTrips) {
  const bool before = enabled();
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
  set_enabled(before);
}

TEST(GlobalRegistry, IsAProcessSingleton) {
  EXPECT_EQ(&metrics(), &metrics());
}

}  // namespace
}  // namespace tradefl::obs
