#include "obs/event_log.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace tradefl::obs {
namespace {

std::string ledger_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Replaces the numeric payload of every `"dt_us": N` / `"dur_us": N` field
/// with `X` — the documented way to diff two ledgers of the same workload.
std::string strip_timestamps(std::string line) {
  for (const std::string& field : {std::string("\"dt_us\": "), std::string("\"dur_us\": ")}) {
    std::size_t pos = 0;
    while ((pos = line.find(field, pos)) != std::string::npos) {
      std::size_t digit = pos + field.size();
      std::size_t end = digit;
      while (end < line.size() && std::isdigit(static_cast<unsigned char>(line[end])) != 0) {
        ++end;
      }
      line.replace(digit, end - digit, "X");
      pos = digit;
    }
  }
  return line;
}

/// Every test opens/closes the process-wide log; leave it closed for the
/// rest of the binary.
class EventLogTest : public ::testing::Test {
 protected:
  void TearDown() override { event_log().close(); }
};

TEST_F(EventLogTest, OpenFailureIsTypedAndLeavesLogInactive) {
  const Status status = event_log().open(ledger_path("no/such/dir/ledger.jsonl"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "io");
  EXPECT_FALSE(event_log().active());
  event_log().event("dropped");  // must be a silent no-op, not a crash
  EXPECT_EQ(event_log().events_written(), 0u);
}

TEST_F(EventLogTest, LedgerMatchesGoldenAfterTimestampStrip) {
  const std::string path = ledger_path("tradefl_ledger_golden.jsonl");
  ASSERT_TRUE(event_log().open(path).ok());
  EXPECT_TRUE(event_log().active());
  {
    LedgerPhase phase("session.solve");
    event_log().event("fedavg.round", {{"round", 3.0}, {"participants", 2.5}});
  }
  MetricsRegistry registry;
  registry.counter("c.count").add(2);
  registry.histogram("h.seconds", {1.0}).observe(0.5);
  event_log().metrics_event(registry.snapshot());
  EXPECT_EQ(event_log().events_written(), 5u);
  event_log().close();
  EXPECT_FALSE(event_log().active());

  const std::vector<std::string> lines = read_lines(path);
  const std::vector<std::string> expected{
      "{\"dt_us\": X, \"type\": \"ledger\", \"name\": \"open\", \"version\": 1}",
      "{\"dt_us\": X, \"type\": \"phase_begin\", \"name\": \"session.solve\"}",
      "{\"dt_us\": X, \"type\": \"event\", \"name\": \"fedavg.round\", "
      "\"round\": 3, \"participants\": 2.5}",
      "{\"dt_us\": X, \"type\": \"phase_end\", \"name\": \"session.solve\", \"dur_us\": X}",
      "{\"dt_us\": X, \"type\": \"metrics\", \"counters\": {\"c.count\": 2}, "
      "\"histogram_counts\": {\"h.seconds\": 1}}",
      "{\"dt_us\": X, \"type\": \"ledger\", \"name\": \"close\", \"events\": 5}",
  };
  ASSERT_EQ(lines.size(), expected.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(strip_timestamps(lines[i]), expected[i]) << "line " << i;
  }
}

TEST_F(EventLogTest, EscapesNamesAndTurnsNonFiniteIntoNull) {
  const std::string path = ledger_path("tradefl_ledger_escape.jsonl");
  ASSERT_TRUE(event_log().open(path).ok());
  event_log().event("quote\"back\\slash", {{"bad", std::nan("")}});
  event_log().close();
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[1].find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(lines[1].find("\"bad\": null"), std::string::npos);
}

TEST_F(EventLogTest, AutoMetricsCadenceIsDeterministic) {
  const std::string path = ledger_path("tradefl_ledger_cadence.jsonl");
  ASSERT_TRUE(event_log().open(path).ok());
  event_log().set_metrics_every(2);
  for (int i = 0; i < 4; ++i) event_log().event("tick");
  event_log().close();
  std::size_t metrics_lines = 0;
  std::size_t event_lines = 0;
  for (const std::string& line : read_lines(path)) {
    if (line.find("\"type\": \"metrics\"") != std::string::npos) ++metrics_lines;
    if (line.find("\"type\": \"event\"") != std::string::npos) ++event_lines;
  }
  EXPECT_EQ(event_lines, 4u);
  EXPECT_EQ(metrics_lines, 2u);  // one snapshot after every second line
}

TEST_F(EventLogTest, ReopenTruncatesAndRestartsCounts) {
  const std::string path = ledger_path("tradefl_ledger_reopen.jsonl");
  ASSERT_TRUE(event_log().open(path).ok());
  event_log().event("first-run");
  ASSERT_TRUE(event_log().open(path).ok());  // implicit close + truncate
  event_log().close();
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);  // open + close only; "first-run" is gone
  EXPECT_NE(lines[1].find("\"events\": 1"), std::string::npos);
}

TEST_F(EventLogTest, PhaseConstructedWhileInactiveStaysSilent) {
  const std::string path = ledger_path("tradefl_ledger_phase_gate.jsonl");
  {
    LedgerPhase phase("never.recorded");  // log not open: captures inactive
    ASSERT_TRUE(event_log().open(path).ok());
  }  // destructor must not emit a phase_end with no matching begin
  event_log().close();
  for (const std::string& line : read_lines(path)) {
    EXPECT_EQ(line.find("never.recorded"), std::string::npos);
  }
}

}  // namespace
}  // namespace tradefl::obs
