#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace tradefl::obs {
namespace {

SpanEvent make_event(const std::string& name, double start_us, double duration_us,
                     int thread = 0, int depth = 0) {
  SpanEvent event;
  event.name = name;
  event.start_us = start_us;
  event.duration_us = duration_us;
  event.thread = thread;
  event.depth = depth;
  return event;
}

std::vector<std::string> names_of(const std::vector<SpanEvent>& events) {
  std::vector<std::string> names;
  names.reserve(events.size());
  for (const SpanEvent& event : events) names.push_back(event.name);
  return names;
}

/// Serializes spans recorded through the global trace() sink; tests that use
/// it restore a clean disabled state on exit.
class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace().reset();
    set_enabled(false);
  }
  void TearDown() override {
    set_enabled(false);
    trace().reset();
  }
};

TEST(TraceBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(TraceBuffer(0), std::invalid_argument);
  TraceBuffer buffer(4);
  EXPECT_THROW(buffer.set_capacity(0), std::invalid_argument);
}

TEST(TraceBuffer, RecordsInOrderUntilFull) {
  TraceBuffer buffer(4);
  buffer.record(make_event("a", 0.0, 1.0));
  buffer.record(make_event("b", 1.0, 1.0));
  buffer.record(make_event("c", 2.0, 1.0));
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.dropped(), 0u);
  EXPECT_EQ(names_of(buffer.events()), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TraceBuffer, OverwritesOldestWhenFull) {
  TraceBuffer buffer(3);
  for (const char* name : {"a", "b", "c", "d", "e"}) {
    buffer.record(make_event(name, 0.0, 1.0));
  }
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.dropped(), 2u);
  // Oldest surviving first: a and b were overwritten.
  EXPECT_EQ(names_of(buffer.events()), (std::vector<std::string>{"c", "d", "e"}));
}

TEST(TraceBuffer, ResetClearsEventsAndDropCount) {
  TraceBuffer buffer(2);
  buffer.record(make_event("a", 0.0, 1.0));
  buffer.record(make_event("b", 0.0, 1.0));
  buffer.record(make_event("c", 0.0, 1.0));
  buffer.reset();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
  EXPECT_EQ(buffer.capacity(), 2u);
}

TEST(TraceBuffer, SetCapacityRebounds) {
  TraceBuffer buffer(2);
  buffer.record(make_event("a", 0.0, 1.0));
  buffer.set_capacity(5);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.capacity(), 5u);
}

TEST(TraceBuffer, ChromeTraceMatchesGolden) {
  TraceBuffer buffer(8);
  buffer.record(make_event("cgbd.master_step", 1.5, 2.25, 0, 0));
  buffer.record(make_event("cgbd.primal_solve", 2.0, 0.5, 1, 1));
  std::ostringstream out;
  buffer.write_chrome_trace(out);
  const std::string expected =
      "{\"traceEvents\": [\n"
      "  {\"name\": \"cgbd.master_step\", \"ph\": \"X\", \"ts\": 1.500, \"dur\": 2.250, "
      "\"pid\": 0, \"tid\": 0, \"args\": {\"depth\": 0}},\n"
      "  {\"name\": \"cgbd.primal_solve\", \"ph\": \"X\", \"ts\": 2.000, \"dur\": 0.500, "
      "\"pid\": 0, \"tid\": 1, \"args\": {\"depth\": 1}}\n"
      "]}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(TraceBuffer, ChromeTraceEmptyBuffer) {
  TraceBuffer buffer(2);
  std::ostringstream out;
  buffer.write_chrome_trace(out);
  EXPECT_EQ(out.str(), "{\"traceEvents\": []}\n");
}

TEST(TraceBuffer, ChromeTraceEscapesNames) {
  TraceBuffer buffer(2);
  buffer.record(make_event("quote\"back\\slash", 0.0, 1.0));
  std::ostringstream out;
  buffer.write_chrome_trace(out);
  EXPECT_NE(out.str().find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(TraceNow, IsMonotonicNonNegative) {
  const double first = trace_now_us();
  const double second = trace_now_us();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
}

TEST_F(SpanTest, RecordsNothingWhenDisabled) {
  { Span span("quiet"); }
  EXPECT_TRUE(trace().events().empty());
}

TEST_F(SpanTest, NestedSpansRecordDepthAndCloseInnerFirst) {
  set_enabled(true);
  {
    Span outer("outer");
    { Span inner("inner"); }
  }
  const std::vector<SpanEvent> events = trace().events();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes (and therefore records) before outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_GE(events[0].duration_us, 0.0);
  EXPECT_GE(events[1].duration_us, events[0].duration_us);
}

TEST_F(SpanTest, SpanOpenedWhileEnabledStillClosesAfterDisable) {
  set_enabled(true);
  {
    Span span("toggled");
    set_enabled(false);  // mid-flight toggle must not lose or corrupt the span
  }
  ASSERT_EQ(trace().events().size(), 1u);
  EXPECT_EQ(trace().events()[0].name, "toggled");
}

#if TRADEFL_ENABLE_TRACING
TEST_F(SpanTest, SpanMacroRecordsScope) {
  set_enabled(true);
  { TFL_SPAN("macro.scope"); }
  ASSERT_EQ(trace().events().size(), 1u);
  EXPECT_EQ(trace().events()[0].name, "macro.scope");
}
#endif

TEST(ScopedTimer, FeedsSecondsHistogram) {
  Histogram histogram("t", {0.5, 1.0, 10.0});
  { ScopedTimer timer(&histogram); }
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.sum, 0.0);
  EXPECT_LT(snap.sum, 10.0);  // a no-op scope is nowhere near 10 s
}

TEST(ScopedTimer, NullSinkIsInert) {
  ScopedTimer timer(nullptr);  // must not crash or record anything
}

}  // namespace
}  // namespace tradefl::obs
