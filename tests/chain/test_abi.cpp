#include "chain/abi.h"

#include <gtest/gtest.h>

namespace tradefl::chain {
namespace {

TEST(Abi, CallRoundTripAllTypes) {
  CallPayload payload;
  payload.method = "contributionSubmit";
  payload.args = {std::uint64_t{7},
                  std::int64_t{-42},
                  std::string("hello"),
                  Address::from_name("org-1"),
                  Bytes{1, 2, 3},
                  Fixed::from_double(0.75)};
  const Bytes encoded = encode_call(payload);
  const CallPayload decoded = decode_call(encoded);
  EXPECT_EQ(decoded.method, payload.method);
  ASSERT_EQ(decoded.args.size(), payload.args.size());
  EXPECT_EQ(std::get<std::uint64_t>(decoded.args[0]), 7u);
  EXPECT_EQ(std::get<std::int64_t>(decoded.args[1]), -42);
  EXPECT_EQ(std::get<std::string>(decoded.args[2]), "hello");
  EXPECT_EQ(std::get<Address>(decoded.args[3]), Address::from_name("org-1"));
  EXPECT_EQ(std::get<Bytes>(decoded.args[4]), (Bytes{1, 2, 3}));
  EXPECT_EQ(std::get<Fixed>(decoded.args[5]), Fixed::from_double(0.75));
}

TEST(Abi, ValuesRoundTrip) {
  const std::vector<AbiValue> values{std::uint64_t{1}, Fixed::from_int(2)};
  EXPECT_EQ(decode_values(encode_values(values)).size(), 2u);
  EXPECT_TRUE(decode_values(encode_values({})).empty());
}

TEST(Abi, MalformedPayloadRejected) {
  EXPECT_THROW(decode_call({0xFF, 0xFF}), std::invalid_argument);
  EXPECT_THROW(decode_call({}), std::invalid_argument);
  // Trailing garbage.
  Bytes encoded = encode_call(CallPayload{"m", {}});
  encoded.push_back(0x00);
  EXPECT_THROW(decode_call(encoded), std::invalid_argument);
}

TEST(Abi, UnknownTagRejected) {
  ByteWriter writer;
  writer.put_string("m");
  writer.put_u32(1);
  writer.put_u8(99);  // bogus tag
  EXPECT_THROW(decode_call(writer.data()), std::invalid_argument);
}

TEST(Abi, TypedExtractors) {
  const std::vector<AbiValue> args{std::uint64_t{5}, std::int64_t{-3},
                                   std::string("s"), Address::from_name("x"),
                                   Fixed::from_int(9)};
  EXPECT_EQ(abi_u64(args, 0), 5u);
  EXPECT_EQ(abi_i64(args, 1), -3);
  EXPECT_EQ(abi_string(args, 2), "s");
  EXPECT_EQ(abi_address(args, 3), Address::from_name("x"));
  EXPECT_EQ(abi_fixed(args, 4), Fixed::from_int(9));
}

TEST(Abi, ExtractorErrors) {
  const std::vector<AbiValue> args{std::uint64_t{5}};
  EXPECT_THROW(abi_u64(args, 1), std::invalid_argument);   // missing index
  EXPECT_THROW(abi_i64(args, 0), std::invalid_argument);   // wrong type
  EXPECT_THROW(abi_fixed(args, 0), std::invalid_argument);
}

TEST(Abi, TypeNames) {
  EXPECT_EQ(abi_type_name(AbiValue{std::uint64_t{1}}), "u64");
  EXPECT_EQ(abi_type_name(AbiValue{Fixed{}}), "fixed");
  EXPECT_EQ(abi_type_name(AbiValue{std::string{}}), "string");
}

}  // namespace
}  // namespace tradefl::chain
