#include "chain/bytes.h"

#include <gtest/gtest.h>

namespace tradefl::chain {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data{0x00, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(to_hex(data), "00deadbeefff");
  EXPECT_EQ(from_hex("00deadbeefff"), data);
  EXPECT_EQ(from_hex("00DEADBEEFFF"), data);
}

TEST(Hex, RejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // bad digit
  EXPECT_TRUE(from_hex("").empty());
}

TEST(ByteWriterReader, ScalarRoundTrip) {
  ByteWriter writer;
  writer.put_u8(0xAB);
  writer.put_u32(0xDEADBEEF);
  writer.put_u64(0x0123456789ABCDEFULL);
  writer.put_i64(-42);
  ByteReader reader(writer.data());
  EXPECT_EQ(reader.get_u8(), 0xAB);
  EXPECT_EQ(reader.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.get_i64(), -42);
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteWriterReader, BlobAndStringRoundTrip) {
  ByteWriter writer;
  writer.put_bytes({1, 2, 3});
  writer.put_string("hello");
  writer.put_bytes({});
  ByteReader reader(writer.data());
  EXPECT_EQ(reader.get_bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(reader.get_string(), "hello");
  EXPECT_TRUE(reader.get_bytes().empty());
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteReader, TruncatedThrows) {
  ByteWriter writer;
  writer.put_u32(7);
  ByteReader reader(writer.data());
  EXPECT_EQ(reader.get_u32(), 7u);
  EXPECT_THROW(reader.get_u8(), std::out_of_range);
}

TEST(ByteReader, TruncatedBlobThrows) {
  ByteWriter writer;
  writer.put_u32(100);  // claims 100 bytes follow, but none do
  ByteReader reader(writer.data());
  EXPECT_THROW(reader.get_bytes(), std::out_of_range);
}

TEST(ByteWriterReader, NegativeI64MinMax) {
  ByteWriter writer;
  writer.put_i64(std::numeric_limits<std::int64_t>::min());
  writer.put_i64(std::numeric_limits<std::int64_t>::max());
  ByteReader reader(writer.data());
  EXPECT_EQ(reader.get_i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(reader.get_i64(), std::numeric_limits<std::int64_t>::max());
}

}  // namespace
}  // namespace tradefl::chain
