// Deterministic mempool + batch sealing: the sealed block layout depends
// only on the set of queued transactions (nonce asc, fee desc, hash asc),
// never on arrival order, and chain-level `seal_every` batching keeps
// receipts pointing at the block their transaction actually lands in.
#include "chain/mempool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "chain/blockchain.h"
#include "chain/web3.h"

namespace tradefl::chain {
namespace {

const Address kAlice = Address::from_name("alice");
const Address kBob = Address::from_name("bob");

PendingTx pending(std::uint64_t nonce, Wei fee, std::uint8_t hash_byte) {
  PendingTx entry;
  entry.tx.from = kAlice;
  entry.tx.to = kBob;
  entry.tx.nonce = nonce;
  entry.tx.fee = fee;
  entry.hash.fill(hash_byte);
  return entry;
}

TEST(Mempool, DrainOrdersByNonceThenFeeThenHash) {
  Mempool pool;
  const PendingTx late_nonce = pending(2, 100, 0x01);
  const PendingTx low_fee = pending(1, 5, 0x02);
  const PendingTx high_fee = pending(1, 50, 0x03);
  const PendingTx hash_small = pending(1, 50, 0x00);
  for (const PendingTx& entry : {late_nonce, low_fee, high_fee, hash_small}) {
    pool.add(entry.tx, entry.hash);
  }
  const std::vector<PendingTx> drained = pool.drain();
  ASSERT_EQ(drained.size(), 4u);
  // nonce 1 before nonce 2; within nonce 1, fee 50 before fee 5; within
  // (1, 50), hash 0x00.. before 0x03...
  EXPECT_EQ(drained[0].hash, hash_small.hash);
  EXPECT_EQ(drained[1].hash, high_fee.hash);
  EXPECT_EQ(drained[2].hash, low_fee.hash);
  EXPECT_EQ(drained[3].hash, late_nonce.hash);
  EXPECT_TRUE(pool.empty());
}

TEST(Mempool, DrainedOrderIsArrivalIndependent) {
  std::vector<PendingTx> entries;
  for (std::uint64_t n = 0; n < 4; ++n) {
    for (Wei fee : {0, 10, 25}) {
      entries.push_back(pending(n, fee, static_cast<std::uint8_t>(16 * n + fee)));
    }
  }
  Mempool forward;
  for (const PendingTx& entry : entries) forward.add(entry.tx, entry.hash);
  Mempool backward;
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) backward.add(it->tx, it->hash);

  const std::vector<PendingTx> a = forward.drain();
  const std::vector<PendingTx> b = backward.drain();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].hash, b[i].hash) << "position " << i;
    EXPECT_EQ(a[i].tx.serialize(), b[i].tx.serialize()) << "position " << i;
  }
}

TEST(Mempool, OrderedBeforeIsAStrictTotalOrder) {
  const PendingTx a = pending(1, 50, 0x01);
  const PendingTx b = pending(1, 50, 0x02);
  EXPECT_TRUE(Mempool::ordered_before(a, b));
  EXPECT_FALSE(Mempool::ordered_before(b, a));
  EXPECT_FALSE(Mempool::ordered_before(a, a));  // irreflexive
}

TEST(Mempool, ChainSealsEveryKSubmissions) {
  Blockchain chain;
  chain.set_seal_every(4);
  chain.credit(kAlice, 1000);
  Transaction tx;
  tx.from = kAlice;
  tx.to = kBob;
  tx.value = 1;
  for (int i = 0; i < 10; ++i) chain.submit(tx);
  // 10 submissions at K=4: two sealed blocks of 4, two txs still pending.
  EXPECT_EQ(chain.block_count(), 3u);  // genesis + 2
  EXPECT_EQ(chain.block(1).transactions.size(), 4u);
  EXPECT_EQ(chain.block(2).transactions.size(), 4u);
  EXPECT_EQ(chain.pending_count(), 2u);
  chain.seal_block();
  EXPECT_EQ(chain.block(3).transactions.size(), 2u);
  EXPECT_TRUE(chain.validate().valid);
}

TEST(Mempool, ReceiptBlockIndexCorrectUnderBatching) {
  Blockchain chain;
  chain.set_seal_every(5);
  chain.credit(kAlice, 1000);
  Transaction tx;
  tx.from = kAlice;
  tx.to = kBob;
  tx.value = 1;
  std::vector<Receipt> receipts;
  for (int i = 0; i < 13; ++i) receipts.push_back(chain.submit(tx));
  chain.seal_block();  // seal the 3-tx remainder
  for (const Receipt& receipt : receipts) {
    const Block& sealed = chain.block(receipt.block_index);
    const bool present = std::any_of(
        sealed.transactions.begin(), sealed.transactions.end(),
        [&receipt](const Transaction& t) { return t.hash() == receipt.tx_hash; });
    EXPECT_TRUE(present) << "receipt claims block " << receipt.block_index;
  }
  EXPECT_TRUE(chain.validate().valid);
}

TEST(Mempool, HigherFeeSealsEarlierWithinABlock) {
  Blockchain chain;
  chain.credit(kAlice, 100);
  chain.credit(kBob, 100);
  Transaction cheap;
  cheap.from = kAlice;
  cheap.to = kBob;
  cheap.value = 1;
  cheap.fee = 1;
  Transaction rich;
  rich.from = kBob;
  rich.to = kAlice;
  rich.value = 1;
  rich.fee = 9;
  chain.submit(cheap);  // both senders are at nonce 0
  chain.submit(rich);
  chain.seal_block();
  const Block& sealed = chain.block(1);
  ASSERT_EQ(sealed.transactions.size(), 2u);
  EXPECT_EQ(sealed.transactions[0].fee, 9);
  EXPECT_EQ(sealed.transactions[1].fee, 1);
  EXPECT_TRUE(chain.validate().valid);
}

TEST(Mempool, Web3ClientArmsBatchSealing) {
  Blockchain chain;
  Web3Client web3(chain, /*seal_every=*/3);
  chain.credit(kAlice, 100);
  const std::size_t before = chain.block_count();
  web3.transfer(kAlice, kBob, 1);
  web3.transfer(kAlice, kBob, 1);
  EXPECT_EQ(chain.block_count(), before);  // below threshold: nothing sealed
  EXPECT_EQ(chain.pending_count(), 2u);
  web3.transfer(kAlice, kBob, 1);
  EXPECT_EQ(chain.block_count(), before + 1);
  EXPECT_FALSE(chain.has_pending());
  EXPECT_EQ(chain.block(before).transactions.size(), 3u);
}

}  // namespace
}  // namespace tradefl::chain
