// Merkle inclusion proofs: light-client verification for arbitration.
#include <gtest/gtest.h>

#include "chain/block.h"

namespace tradefl::chain {
namespace {

Transaction make_tx(int n) {
  Transaction tx;
  tx.from = Address::from_name("from-" + std::to_string(n));
  tx.to = Address::from_name("to-" + std::to_string(n));
  tx.value = n;
  return tx;
}

std::vector<Transaction> make_txs(int count) {
  std::vector<Transaction> txs;
  for (int i = 0; i < count; ++i) txs.push_back(make_tx(i));
  return txs;
}

TEST(MerkleProof, VerifiesEveryLeafForVariousSizes) {
  for (int count : {1, 2, 3, 4, 5, 7, 8, 13}) {
    const auto txs = make_txs(count);
    const Hash256 root = Block::merkle_root(txs);
    for (int i = 0; i < count; ++i) {
      const MerkleProof proof = MerkleProof::build(txs, static_cast<std::size_t>(i));
      EXPECT_TRUE(proof.verify(txs[static_cast<std::size_t>(i)].hash(), root))
          << "count " << count << " leaf " << i;
    }
  }
}

TEST(MerkleProof, RejectsWrongLeaf) {
  const auto txs = make_txs(6);
  const Hash256 root = Block::merkle_root(txs);
  const MerkleProof proof = MerkleProof::build(txs, 2);
  EXPECT_FALSE(proof.verify(txs[3].hash(), root));     // different tx
  EXPECT_FALSE(proof.verify(Hash256{}, root));         // bogus leaf
}

TEST(MerkleProof, RejectsWrongRoot) {
  const auto txs = make_txs(6);
  const MerkleProof proof = MerkleProof::build(txs, 2);
  EXPECT_FALSE(proof.verify(txs[2].hash(), Hash256{}));
}

TEST(MerkleProof, DetectsTamperedTransaction) {
  auto txs = make_txs(8);
  const Hash256 root = Block::merkle_root(txs);
  const MerkleProof proof = MerkleProof::build(txs, 5);
  ASSERT_TRUE(proof.verify(txs[5].hash(), root));
  txs[5].value = 999;  // the org rewrites its recorded contribution
  EXPECT_FALSE(proof.verify(txs[5].hash(), root));
}

TEST(MerkleProof, ProofSizeLogarithmic) {
  const auto txs = make_txs(16);
  EXPECT_EQ(MerkleProof::build(txs, 0).siblings.size(), 4u);  // log2(16)
  const auto small = make_txs(2);
  EXPECT_EQ(MerkleProof::build(small, 1).siblings.size(), 1u);
  const auto single = make_txs(1);
  EXPECT_TRUE(MerkleProof::build(single, 0).siblings.empty());
  EXPECT_TRUE(MerkleProof::build(single, 0).verify(single[0].hash(),
                                                   Block::merkle_root(single)));
}

TEST(MerkleProof, OutOfRangeThrows) {
  const auto txs = make_txs(3);
  EXPECT_THROW(MerkleProof::build(txs, 3), std::out_of_range);
}

TEST(MerkleProof, WorksAgainstSealedBlockHeader) {
  Block block;
  block.transactions = make_txs(5);
  block.header.tx_root = Block::merkle_root(block.transactions);
  const MerkleProof proof = MerkleProof::build(block.transactions, 4);
  EXPECT_TRUE(proof.verify(block.transactions[4].hash(), block.header.tx_root));
}

}  // namespace
}  // namespace tradefl::chain
