// Merkle inclusion proofs: light-client verification for arbitration.
#include <gtest/gtest.h>

#include "chain/block.h"
#include "chain/blockchain.h"

namespace tradefl::chain {
namespace {

Transaction make_tx(int n) {
  Transaction tx;
  tx.from = Address::from_name("from-" + std::to_string(n));
  tx.to = Address::from_name("to-" + std::to_string(n));
  tx.value = n;
  return tx;
}

std::vector<Transaction> make_txs(int count) {
  std::vector<Transaction> txs;
  for (int i = 0; i < count; ++i) txs.push_back(make_tx(i));
  return txs;
}

TEST(MerkleProof, VerifiesEveryLeafForVariousSizes) {
  // Odd counts exercise the duplicated-last-leaf rule at every layer (9 ->
  // 5 -> 3 -> 2 duplicates on three consecutive levels).
  for (int count : {1, 2, 3, 4, 5, 7, 8, 9, 11, 13}) {
    const auto txs = make_txs(count);
    const Hash256 root = Block::merkle_root(txs);
    for (int i = 0; i < count; ++i) {
      const MerkleProof proof = MerkleProof::build(txs, static_cast<std::size_t>(i));
      EXPECT_TRUE(proof.verify(txs[static_cast<std::size_t>(i)].hash(), root))
          << "count " << count << " leaf " << i;
    }
  }
}

TEST(MerkleProof, RejectsWrongLeaf) {
  const auto txs = make_txs(6);
  const Hash256 root = Block::merkle_root(txs);
  const MerkleProof proof = MerkleProof::build(txs, 2);
  EXPECT_FALSE(proof.verify(txs[3].hash(), root));     // different tx
  EXPECT_FALSE(proof.verify(Hash256{}, root));         // bogus leaf
}

TEST(MerkleProof, RejectsWrongRoot) {
  const auto txs = make_txs(6);
  const MerkleProof proof = MerkleProof::build(txs, 2);
  EXPECT_FALSE(proof.verify(txs[2].hash(), Hash256{}));
}

TEST(MerkleProof, DetectsTamperedTransaction) {
  auto txs = make_txs(8);
  const Hash256 root = Block::merkle_root(txs);
  const MerkleProof proof = MerkleProof::build(txs, 5);
  ASSERT_TRUE(proof.verify(txs[5].hash(), root));
  txs[5].value = 999;  // the org rewrites its recorded contribution
  EXPECT_FALSE(proof.verify(txs[5].hash(), root));
}

TEST(MerkleProof, ProofSizeLogarithmic) {
  const auto txs = make_txs(16);
  EXPECT_EQ(MerkleProof::build(txs, 0).siblings.size(), 4u);  // log2(16)
  const auto small = make_txs(2);
  EXPECT_EQ(MerkleProof::build(small, 1).siblings.size(), 1u);
  const auto single = make_txs(1);
  EXPECT_TRUE(MerkleProof::build(single, 0).siblings.empty());
  EXPECT_TRUE(MerkleProof::build(single, 0).verify(single[0].hash(),
                                                   Block::merkle_root(single)));
}

TEST(MerkleProof, OutOfRangeThrows) {
  const auto txs = make_txs(3);
  EXPECT_THROW(MerkleProof::build(txs, 3), std::out_of_range);
}

TEST(MerkleProof, WorksAgainstSealedBlockHeader) {
  Block block;
  block.transactions = make_txs(5);
  block.header.tx_root = Block::merkle_root(block.transactions);
  const MerkleProof proof = MerkleProof::build(block.transactions, 4);
  EXPECT_TRUE(proof.verify(block.transactions[4].hash(), block.header.tx_root));
}

TEST(MerkleProof, SingleBufferRootMatchesTransactionRoot) {
  // merkle_root delegates to the in-place merkle_root_of_leaves; pin the
  // equivalence for every size class around the power-of-two boundaries.
  for (int count : {1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17}) {
    const auto txs = make_txs(count);
    std::vector<Hash256> leaves;
    for (const Transaction& tx : txs) leaves.push_back(tx.hash());
    EXPECT_EQ(Block::merkle_root_of_leaves(std::move(leaves)), Block::merkle_root(txs))
        << "count " << count;
  }
}

TEST(MerkleProof, OddLayerDuplicatesItsLastLeaf) {
  // Three leaves: root = H(H(h0,h1), H(h2,h2)) — the odd node pairs with
  // itself, exactly what the proof builder assumes when it emits a
  // self-sibling.
  const auto txs = make_txs(3);
  const Hash256 h0 = txs[0].hash();
  const Hash256 h1 = txs[1].hash();
  const Hash256 h2 = txs[2].hash();
  const Hash256 expected = sha256_pair(sha256_pair(h0, h1), sha256_pair(h2, h2));
  EXPECT_EQ(Block::merkle_root(txs), expected);
}

TEST(MerkleProof, VerifiesAgainstBatchSealedHeaders) {
  // The same 13 transfers sealed under different batch sizes: every sealed
  // block's header.tx_root must verify an inclusion proof for each of its
  // transactions, including the odd-sized remainder blocks.
  for (std::size_t seal_every : {std::size_t{1}, std::size_t{4}, std::size_t{5},
                                 std::size_t{13}}) {
    Blockchain chain;
    chain.set_seal_every(seal_every);
    const Address alice = Address::from_name("alice");
    chain.credit(alice, 100);
    Transaction tx;
    tx.from = alice;
    tx.to = Address::from_name("bob");
    tx.value = 1;
    for (int i = 0; i < 13; ++i) chain.submit(tx);
    if (chain.has_pending()) chain.seal_block();
    for (std::size_t b = 1; b < chain.block_count(); ++b) {
      const Block& sealed = chain.block(b);
      for (std::size_t i = 0; i < sealed.transactions.size(); ++i) {
        const MerkleProof proof = MerkleProof::build(sealed.transactions, i);
        EXPECT_TRUE(proof.verify(sealed.transactions[i].hash(), sealed.header.tx_root))
            << "seal_every " << seal_every << " block " << b << " tx " << i;
      }
    }
    EXPECT_TRUE(chain.validate().valid) << "seal_every " << seal_every;
  }
}

}  // namespace
}  // namespace tradefl::chain
