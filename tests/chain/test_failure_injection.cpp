// Failure injection on the chain substrate: gas exhaustion mid-settlement,
// partially funded rounds, and hostile call sequences must always leave the
// ledger in a consistent, recoverable state (atomicity of submit()).
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "chain/tradefl_contract.h"
#include "chain/web3.h"

namespace tradefl::chain {
namespace {

struct Round {
  Blockchain chain;
  Web3Client web3{chain};
  std::vector<Address> orgs;
  Address contract;
  static constexpr Wei kDeposit = 300'000'000'000;

  explicit Round(std::size_t n = 4) {
    TradeFlContractConfig config;
    config.org_count = n;
    config.gamma_scaled = Fixed::from_double(5.12);
    config.lambda = Fixed::from_double(2.0);
    config.rho.assign(n * n, Fixed{});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j) config.rho[i * n + j] = Fixed::from_double(0.05);
      }
    }
    config.data_size_gb.assign(n, Fixed::from_double(20.0));
    config.min_deposit = kDeposit;
    contract = chain.deploy(std::make_unique<TradeFlContract>(config));
    for (std::size_t i = 0; i < n; ++i) {
      orgs.push_back(Address::from_name("org-" + std::to_string(i)));
      chain.credit(orgs[i], 4 * kDeposit);
    }
  }

  Transaction call_tx(std::size_t org, const std::string& method,
                      std::vector<AbiValue> args = {}, Wei value = 0) {
    Transaction tx;
    tx.from = orgs[org];
    tx.to = contract;
    tx.value = value;
    tx.data = encode_call(CallPayload{method, std::move(args)});
    return tx;
  }

  void advance_to_calculated() {
    for (std::size_t i = 0; i < orgs.size(); ++i) {
      web3.call_or_throw(orgs[i], contract, "register",
                         {orgs[i], static_cast<std::uint64_t>(i)});
      web3.call_or_throw(orgs[i], contract, "depositSubmit", {}, kDeposit);
    }
    for (std::size_t i = 0; i < orgs.size(); ++i) {
      web3.call_or_throw(orgs[i], contract, "contributionSubmit",
                         {Fixed::from_double(0.1 + 0.2 * static_cast<double>(i)),
                          Fixed::from_double(3.0)});
    }
    web3.call_or_throw(orgs[0], contract, "payoffCalculate");
  }
};

TEST(FailureInjection, OutOfGasDuringTransferIsAtomic) {
  Round round;
  round.advance_to_calculated();
  const Wei contract_before = round.chain.balance(round.contract);
  const Wei org0_before = round.chain.balance(round.orgs[0]);

  Transaction tx = round.call_tx(0, "payoffTransfer");
  tx.gas_limit = 40'000;  // enough to start, not enough to finish the refunds
  const Receipt receipt = round.chain.submit(std::move(tx));
  ASSERT_FALSE(receipt.success);
  EXPECT_EQ(receipt.revert_reason, "out of gas");
  // Nothing moved, nothing half-settled.
  EXPECT_EQ(round.chain.balance(round.contract), contract_before);
  EXPECT_EQ(round.chain.balance(round.orgs[0]), org0_before);
  // And the settlement still works afterwards with proper gas.
  round.web3.call_or_throw(round.orgs[0], round.contract, "payoffTransfer");
  EXPECT_EQ(round.chain.balance(round.contract), 0);
}

TEST(FailureInjection, PartialFundingKeepsContributionsClosed) {
  Round round;
  for (std::size_t i = 0; i < round.orgs.size(); ++i) {
    round.web3.call_or_throw(round.orgs[i], round.contract, "register",
                             {round.orgs[i], static_cast<std::uint64_t>(i)});
  }
  // Only half the consortium deposits.
  round.web3.call_or_throw(round.orgs[0], round.contract, "depositSubmit", {},
                           Round::kDeposit);
  round.web3.call_or_throw(round.orgs[1], round.contract, "depositSubmit", {},
                           Round::kDeposit);
  const auto outcome =
      round.web3.call(round.orgs[0], round.contract, "contributionSubmit",
                      {Fixed::from_double(0.5), Fixed::from_double(3.0)});
  EXPECT_FALSE(outcome.receipt.success);  // phase still Registration
}

TEST(FailureInjection, UnderfundedDepositDoesNotOpenPhase) {
  Round round;
  for (std::size_t i = 0; i < round.orgs.size(); ++i) {
    round.web3.call_or_throw(round.orgs[i], round.contract, "register",
                             {round.orgs[i], static_cast<std::uint64_t>(i)});
    // Everyone deposits HALF the minimum.
    round.web3.call_or_throw(round.orgs[i], round.contract, "depositSubmit", {},
                             Round::kDeposit / 2);
  }
  const auto phase = round.web3.call_or_throw(round.orgs[0], round.contract, "phase");
  EXPECT_EQ(std::get<std::uint64_t>(phase.returned.at(0)), 0u);
  // Topping up opens the round.
  for (std::size_t i = 0; i < round.orgs.size(); ++i) {
    round.web3.call_or_throw(round.orgs[i], round.contract, "depositSubmit", {},
                             Round::kDeposit / 2);
  }
  const auto opened = round.web3.call_or_throw(round.orgs[0], round.contract, "phase");
  EXPECT_EQ(std::get<std::uint64_t>(opened.returned.at(0)), 1u);
}

TEST(FailureInjection, HostileReplaySequenceLeavesChainValid) {
  Round round;
  round.advance_to_calculated();
  // A hostile org spams every method out of order with bogus arguments.
  for (int attempt = 0; attempt < 3; ++attempt) {
    round.web3.call(round.orgs[3], round.contract, "register",
                    {round.orgs[3], std::uint64_t{0}});
    round.web3.call(round.orgs[3], round.contract, "contributionSubmit",
                    {Fixed::from_double(-1.0), Fixed::from_double(3.0)});
    round.web3.call(round.orgs[3], round.contract, "payoffOf", {std::uint64_t{99}});
    round.web3.call(round.orgs[3], round.contract, "payoffCalculate");
  }
  round.web3.call_or_throw(round.orgs[0], round.contract, "payoffTransfer");
  EXPECT_TRUE(round.chain.validate().valid);
  EXPECT_EQ(round.chain.balance(round.contract), 0);
  // Every failed attempt is on the ledger with its revert reason — the
  // traceability the paper's arbitration story needs.
  std::size_t failed_receipts = 0;
  for (const Receipt& receipt : round.chain.receipts()) {
    if (!receipt.success) ++failed_receipts;
  }
  EXPECT_GE(failed_receipts, 9u);
}

TEST(FailureInjection, MalformedPayloadRejectedNotCrashing) {
  Round round;
  Transaction tx;
  tx.from = round.orgs[0];
  tx.to = round.contract;
  tx.data = {0xDE, 0xAD, 0xBE, 0xEF};  // not a valid ABI payload
  const Receipt receipt = round.chain.submit(std::move(tx));
  EXPECT_FALSE(receipt.success);
  EXPECT_TRUE(round.chain.validate().valid);
}

TEST(FailureInjection, ValueOverflowGuard) {
  Round round;
  round.web3.call_or_throw(round.orgs[0], round.contract, "register",
                           {round.orgs[0], std::uint64_t{0}});
  Transaction tx = round.call_tx(0, "depositSubmit", {}, -5);
  const Receipt receipt = round.chain.submit(std::move(tx));
  EXPECT_FALSE(receipt.success);
  EXPECT_EQ(round.chain.balance(round.orgs[0]), 4 * Round::kDeposit);
}

}  // namespace
}  // namespace tradefl::chain
