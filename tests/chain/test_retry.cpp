// Web3Client fault injection + RetryPolicy: transient failures (submission
// loss, gas exhaustion) are retried with deterministic simulated backoff;
// reverts fail fast; injected faults never touch the chain itself.
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "chain/tradefl_contract.h"
#include "chain/web3.h"
#include "common/faults.h"

namespace tradefl::chain {
namespace {

struct Rig {
  Blockchain chain;
  Web3Client web3{chain};
  std::vector<Address> orgs;
  Address contract;
  static constexpr Wei kDeposit = 300'000'000'000;

  explicit Rig(std::size_t n = 3) {
    TradeFlContractConfig config;
    config.org_count = n;
    config.gamma_scaled = Fixed::from_double(5.12);
    config.lambda = Fixed::from_double(2.0);
    config.rho.assign(n * n, Fixed{});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j) config.rho[i * n + j] = Fixed::from_double(0.05);
      }
    }
    config.data_size_gb.assign(n, Fixed::from_double(20.0));
    config.min_deposit = kDeposit;
    contract = chain.deploy(std::make_unique<TradeFlContract>(config));
    for (std::size_t i = 0; i < n; ++i) {
      orgs.push_back(Address::from_name("org-" + std::to_string(i)));
      chain.credit(orgs[i], 4 * kDeposit);
    }
  }
};

/// Plan whose only faults are explicit events at the given call indices.
FaultPlan events_at(FaultKind kind, std::initializer_list<std::uint64_t> calls) {
  FaultPlan plan;
  for (std::uint64_t call : calls) {
    plan.events.push_back(FaultEvent{kind, call, kAnyFaultTarget, 0.0});
  }
  return plan;
}

TEST(Retry, SucceedsFirstTryWithoutInjector) {
  Rig rig;
  const auto outcome = rig.web3.call_with_retry(
      rig.orgs[0], rig.contract, "register", {rig.orgs[0], std::uint64_t{0}});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().receipt.success);
  EXPECT_EQ(outcome.value().attempts, 1);
  EXPECT_DOUBLE_EQ(outcome.value().simulated_backoff_seconds, 0.0);
  EXPECT_EQ(rig.web3.retry_attempts(), 0u);
}

TEST(Retry, TransientSubmitFailureIsRetried) {
  Rig rig;
  const FaultInjector injector(events_at(FaultKind::kTxSubmitFailure, {0}));
  rig.web3.set_fault_injector(&injector);
  const auto outcome = rig.web3.call_with_retry(
      rig.orgs[0], rig.contract, "register", {rig.orgs[0], std::uint64_t{0}});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().receipt.success);
  EXPECT_EQ(outcome.value().attempts, 2);
  EXPECT_GT(outcome.value().simulated_backoff_seconds, 0.0);
  EXPECT_EQ(rig.web3.retry_attempts(), 1u);
  EXPECT_EQ(rig.web3.injected_faults(), 1u);
  // The failed submission never reached the chain: exactly one receipt.
  EXPECT_EQ(rig.chain.receipts().size(), 1u);
}

TEST(Retry, GasExhaustionIsTransient) {
  Rig rig;
  const FaultInjector injector(events_at(FaultKind::kTxGasExhaustion, {0}));
  rig.web3.set_fault_injector(&injector);
  const auto outcome = rig.web3.call_with_retry(
      rig.orgs[0], rig.contract, "register", {rig.orgs[0], std::uint64_t{0}});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().attempts, 2);
}

TEST(Retry, RevertFailsFast) {
  Rig rig;
  const FaultInjector injector(events_at(FaultKind::kTxRevert, {0}));
  rig.web3.set_fault_injector(&injector);
  const auto outcome = rig.web3.call_with_retry(
      rig.orgs[0], rig.contract, "register", {rig.orgs[0], std::uint64_t{0}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, "revert");
  EXPECT_EQ(rig.web3.retry_attempts(), 0u);
  // The very next call is not faulted and succeeds.
  const auto retried = rig.web3.call_with_retry(
      rig.orgs[0], rig.contract, "register", {rig.orgs[0], std::uint64_t{0}});
  ASSERT_TRUE(retried.ok());
}

TEST(Retry, GivesUpAfterMaxAttempts) {
  Rig rig;
  FaultPlan plan;
  plan.submit_failure_rate = 1.0;  // every attempt is lost
  const FaultInjector injector(plan);
  rig.web3.set_fault_injector(&injector);
  RetryPolicy policy;
  policy.max_attempts = 3;
  rig.web3.set_retry_policy(policy);
  const auto outcome = rig.web3.call_with_retry(
      rig.orgs[0], rig.contract, "register", {rig.orgs[0], std::uint64_t{0}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, "retry-exhausted");
  EXPECT_EQ(rig.web3.retry_attempts(), 2u);  // attempts 1->2 and 2->3
  EXPECT_EQ(rig.web3.retry_giveups(), 1u);
  // Nothing ever reached the chain.
  EXPECT_TRUE(rig.chain.receipts().empty());
  EXPECT_TRUE(rig.chain.validate().valid);
}

TEST(Retry, BackoffIsDeterministic) {
  const FaultPlan plan = events_at(FaultKind::kTxSubmitFailure, {0, 1});
  double backoffs[2] = {0.0, 0.0};
  for (int run = 0; run < 2; ++run) {
    Rig rig;
    const FaultInjector injector(plan);
    rig.web3.set_fault_injector(&injector);
    const auto outcome = rig.web3.call_with_retry(
        rig.orgs[0], rig.contract, "register", {rig.orgs[0], std::uint64_t{0}});
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().attempts, 3);
    backoffs[run] = outcome.value().simulated_backoff_seconds;
  }
  EXPECT_EQ(backoffs[0], backoffs[1]);  // bitwise: seeded jitter, no wall clock
}

TEST(Retry, BackoffGrowsAndIsCapped) {
  Rig rig;
  FaultPlan plan;
  plan.submit_failure_rate = 1.0;
  const FaultInjector injector(plan);
  rig.web3.set_fault_injector(&injector);
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff_seconds = 0.1;
  policy.backoff_multiplier = 10.0;
  policy.max_backoff_seconds = 0.5;
  policy.jitter_fraction = 0.0;
  rig.web3.set_retry_policy(policy);
  const auto outcome = rig.web3.call_with_retry(
      rig.orgs[0], rig.contract, "register", {rig.orgs[0], std::uint64_t{0}});
  ASSERT_FALSE(outcome.ok());
  // 7 delays: 0.1 + 0.5*6 (growth 10x immediately hits the 0.5 cap).
  // We can't read the sum on error, but the attempt counters pin the loop.
  EXPECT_EQ(rig.web3.retry_attempts(), 7u);
}

TEST(Retry, InjectedFaultsLeaveChainStateIdentical) {
  // Same successful call sequence with and without transient faults in the
  // way: the chain must end up identical (faults die before submission).
  Rig clean;
  Rig faulty;
  const FaultInjector injector(events_at(FaultKind::kTxSubmitFailure, {0, 3}));
  faulty.web3.set_fault_injector(&injector);
  for (std::size_t i = 0; i < clean.orgs.size(); ++i) {
    ASSERT_TRUE(clean.web3
                    .call_with_retry(clean.orgs[i], clean.contract, "register",
                                     {clean.orgs[i], static_cast<std::uint64_t>(i)})
                    .ok());
    ASSERT_TRUE(faulty.web3
                    .call_with_retry(faulty.orgs[i], faulty.contract, "register",
                                     {faulty.orgs[i], static_cast<std::uint64_t>(i)})
                    .ok());
  }
  EXPECT_EQ(clean.chain.receipts().size(), faulty.chain.receipts().size());
  EXPECT_EQ(clean.chain.block_count(), faulty.chain.block_count());
  for (std::size_t i = 0; i < clean.orgs.size(); ++i) {
    EXPECT_EQ(clean.chain.balance(clean.orgs[i]), faulty.chain.balance(faulty.orgs[i]));
  }
  EXPECT_TRUE(faulty.chain.validate().valid);
}

TEST(CallOrThrow, MessageNamesMethodReasonAndGas) {
  Rig rig;
  // contributionSubmit before the contribution phase opens genuinely reverts.
  try {
    rig.web3.call_or_throw(rig.orgs[0], rig.contract, "contributionSubmit",
                           {Fixed::from_double(0.5), Fixed::from_double(3.0)});
    FAIL() << "expected call_or_throw to throw on revert";
  } catch (const std::runtime_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("contributionSubmit"), std::string::npos) << message;
    EXPECT_NE(message.find("gas used"), std::string::npos) << message;
    // The contract's revert reason is forwarded verbatim (non-empty).
    EXPECT_NE(message.find("reverted: "), std::string::npos) << message;
  }
}

}  // namespace
}  // namespace tradefl::chain
