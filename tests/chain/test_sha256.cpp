// SHA-256 against the FIPS 180-4 / NIST test vectors.
#include "chain/sha256.h"

#include <gtest/gtest.h>

namespace tradefl::chain {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_to_hex(sha256(std::string(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_to_hex(sha256(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_to_hex(sha256(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.update(reinterpret_cast<const std::uint8_t*>(chunk.data()), chunk.size());
  }
  EXPECT_EQ(hash_to_hex(hasher.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64-byte message exercises the padding-into-second-block path.
  const std::string msg(64, 'x');
  const Hash256 direct = sha256(msg);
  Sha256 streaming;
  streaming.update(reinterpret_cast<const std::uint8_t*>(msg.data()), 32);
  streaming.update(reinterpret_cast<const std::uint8_t*>(msg.data()) + 32, 32);
  EXPECT_EQ(hash_to_hex(direct), hash_to_hex(streaming.finish()));
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog repeatedly";
  Sha256 streaming;
  for (char c : msg) {
    const auto byte = static_cast<std::uint8_t>(c);
    streaming.update(&byte, 1);
  }
  EXPECT_EQ(hash_to_hex(streaming.finish()), hash_to_hex(sha256(msg)));
}

TEST(Sha256, PairCombination) {
  const Hash256 left = sha256(std::string("left"));
  const Hash256 right = sha256(std::string("right"));
  Bytes concatenated(left.begin(), left.end());
  concatenated.insert(concatenated.end(), right.begin(), right.end());
  EXPECT_EQ(sha256_pair(left, right), sha256(concatenated));
  EXPECT_NE(sha256_pair(left, right), sha256_pair(right, left));
}

TEST(Sha256, AvalancheEffect) {
  const Hash256 a = sha256(std::string("message"));
  const Hash256 b = sha256(std::string("messagf"));
  int differing_bits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differing_bits += __builtin_popcount(a[i] ^ b[i]);
  }
  EXPECT_GT(differing_bits, 80);  // ~128 expected
}

}  // namespace
}  // namespace tradefl::chain
