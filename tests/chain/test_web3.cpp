#include "chain/web3.h"

#include <gtest/gtest.h>

#include "chain/tradefl_contract.h"

namespace tradefl::chain {
namespace {

TradeFlContractConfig two_org_config() {
  TradeFlContractConfig config;
  config.org_count = 2;
  config.gamma_scaled = Fixed::from_double(5.0);
  config.lambda = Fixed::from_double(2.0);
  config.rho.assign(4, Fixed{});
  config.rho[1] = Fixed::from_double(0.1);
  config.rho[2] = Fixed::from_double(0.1);
  config.data_size_gb.assign(2, Fixed::from_int(20));
  config.min_deposit = 1000;
  return config;
}

TEST(Web3, AutoSealsOneBlockPerCall) {
  Blockchain chain;
  Web3Client web3(chain);
  const Address a = Address::from_name("a");
  const Address b = Address::from_name("b");
  chain.credit(a, 100);
  const std::size_t blocks_before = chain.block_count();
  web3.transfer(a, b, 10);
  EXPECT_EQ(chain.block_count(), blocks_before + 1);
  EXPECT_FALSE(chain.has_pending());
  EXPECT_EQ(web3.balance(b), 10);
}

TEST(Web3, ManualSealMode) {
  Blockchain chain;
  Web3Client web3(chain, /*seal_every=*/0);
  const Address a = Address::from_name("a");
  chain.credit(a, 100);
  web3.transfer(a, Address::from_name("b"), 10);
  EXPECT_TRUE(chain.has_pending());
  chain.seal_block();
  EXPECT_FALSE(chain.has_pending());
}

TEST(Web3, CallDecodesReturnValues) {
  Blockchain chain;
  Web3Client web3(chain);
  const Address contract = chain.deploy(
      std::make_unique<TradeFlContract>(two_org_config()));
  const Address org = Address::from_name("org-0");
  chain.credit(org, 10000);
  web3.call_or_throw(org, contract, "register", {org, std::uint64_t{0}});
  const CallOutcome outcome = web3.call_or_throw(org, contract, "phase");
  ASSERT_EQ(outcome.returned.size(), 1u);
  EXPECT_EQ(std::get<std::uint64_t>(outcome.returned[0]), 0u);
}

TEST(Web3, CallReportsRevertWithoutThrowing) {
  Blockchain chain;
  Web3Client web3(chain);
  const Address contract = chain.deploy(
      std::make_unique<TradeFlContract>(two_org_config()));
  const Address stranger = Address::from_name("stranger");
  chain.credit(stranger, 10000);
  const CallOutcome outcome = web3.call(stranger, contract, "depositSubmit", {}, 100);
  EXPECT_FALSE(outcome.receipt.success);
  EXPECT_TRUE(outcome.returned.empty());
}

TEST(Web3, CallOrThrowThrowsOnRevert) {
  Blockchain chain;
  Web3Client web3(chain);
  const Address contract = chain.deploy(
      std::make_unique<TradeFlContract>(two_org_config()));
  const Address stranger = Address::from_name("stranger");
  chain.credit(stranger, 10000);
  EXPECT_THROW(web3.call_or_throw(stranger, contract, "depositSubmit", {}, 100),
               std::runtime_error);
}

}  // namespace
}  // namespace tradefl::chain
