// Parallel chain validation: validate() fans the per-block re-hash + Merkle
// recompute over the shared pool, but its verdict — and the reported first
// problem — must be bit-identical for any thread count (the repo-wide
// determinism contract). The workload is sized past the chunk grain so the
// 4-thread run genuinely splits.
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "common/parallel.h"

namespace tradefl::chain {
namespace {

const Address kAlice = Address::from_name("alice");
const Address kBob = Address::from_name("bob");

/// Every test restores the serial default so no pool leaks across suites.
class ParallelValidation : public ::testing::Test {
 protected:
  void TearDown() override { set_global_threads(1); }
};

/// Builds a chain of `blocks` sealed blocks with two transfers each.
void grow_chain(Blockchain& chain, std::size_t blocks) {
  chain.credit(kAlice, static_cast<Wei>(4 * blocks));
  Transaction tx;
  tx.from = kAlice;
  tx.to = kBob;
  tx.value = 1;
  for (std::size_t b = 0; b < blocks; ++b) {
    chain.submit(tx);
    chain.submit(tx);
    chain.seal_block();
  }
}

TEST_F(ParallelValidation, ValidChainVerdictIdenticalAcrossThreadCounts) {
  Blockchain chain;
  grow_chain(chain, 200);  // > the 64-block chunk grain

  set_global_threads(1);
  const ChainValidation serial = chain.validate();
  set_global_threads(4);
  const ChainValidation parallel = chain.validate();

  EXPECT_TRUE(serial.valid);
  EXPECT_EQ(serial.valid, parallel.valid);
  EXPECT_EQ(serial.problem, parallel.problem);
}

TEST_F(ParallelValidation, TamperedChainReportsTheSameProblemAcrossThreadCounts) {
  Blockchain chain;
  grow_chain(chain, 200);
  chain.mutable_block_for_test(150).transactions[0].value = 99;

  set_global_threads(1);
  const ChainValidation serial = chain.validate();
  set_global_threads(4);
  const ChainValidation parallel = chain.validate();

  EXPECT_FALSE(serial.valid);
  EXPECT_NE(serial.problem.find("block 150"), std::string::npos) << serial.problem;
  EXPECT_EQ(serial.valid, parallel.valid);
  EXPECT_EQ(serial.problem, parallel.problem);
}

TEST_F(ParallelValidation, FirstProblemInBlockOrderWins) {
  Blockchain chain;
  grow_chain(chain, 200);
  // Corrupt two blocks in different chunks; the report must name the earlier
  // one no matter which worker finds its own problem first.
  chain.mutable_block_for_test(30).transactions[0].value = 99;
  chain.mutable_block_for_test(180).transactions[0].value = 99;

  set_global_threads(4);
  const ChainValidation validation = chain.validate();
  EXPECT_FALSE(validation.valid);
  EXPECT_NE(validation.problem.find("block 30"), std::string::npos) << validation.problem;
}

TEST_F(ParallelValidation, HeaderTamperBeatsLaterMerkleTamper) {
  Blockchain chain;
  grow_chain(chain, 100);
  // Block 20's header mutation surfaces as block 21's broken prev-hash link;
  // that still precedes block 70's Merkle mismatch in block order.
  chain.mutable_block_for_test(20).header.timestamp += 1000;
  chain.mutable_block_for_test(70).transactions[0].value = 99;

  set_global_threads(4);
  const ChainValidation validation = chain.validate();
  EXPECT_FALSE(validation.valid);
  EXPECT_NE(validation.problem.find("block 21"), std::string::npos) << validation.problem;
  EXPECT_NE(validation.problem.find("prev-hash"), std::string::npos) << validation.problem;
}

TEST_F(ParallelValidation, SealedChainBytesIdenticalAcrossThreadCounts) {
  set_global_threads(1);
  Blockchain serial_chain;
  grow_chain(serial_chain, 100);
  const Bytes serial_bytes = serial_chain.save_chain_state();

  set_global_threads(4);
  Blockchain parallel_chain;
  grow_chain(parallel_chain, 100);
  const Bytes parallel_bytes = parallel_chain.save_chain_state();

  EXPECT_EQ(serial_bytes, parallel_bytes);
}

}  // namespace
}  // namespace tradefl::chain
