#include "chain/block.h"

#include <gtest/gtest.h>

namespace tradefl::chain {
namespace {

Transaction make_tx(const std::string& from, const std::string& to, Wei value) {
  Transaction tx;
  tx.from = Address::from_name(from);
  tx.to = Address::from_name(to);
  tx.value = value;
  return tx;
}

TEST(Address, DeterministicAndDistinct) {
  EXPECT_EQ(Address::from_name("alice"), Address::from_name("alice"));
  EXPECT_NE(Address::from_name("alice"), Address::from_name("bob"));
  EXPECT_TRUE(Address::zero().is_zero());
  EXPECT_FALSE(Address::from_name("alice").is_zero());
  EXPECT_EQ(Address::from_name("alice").to_hex().size(), 42u);  // 0x + 40
}

TEST(Transaction, HashChangesWithEveryField) {
  Transaction base = make_tx("a", "b", 10);
  const Hash256 h0 = base.hash();
  Transaction t = base;
  t.value = 11;
  EXPECT_NE(t.hash(), h0);
  t = base;
  t.nonce = 1;
  EXPECT_NE(t.hash(), h0);
  t = base;
  t.data = {0x01};
  EXPECT_NE(t.hash(), h0);
  t = base;
  t.from = Address::from_name("c");
  EXPECT_NE(t.hash(), h0);
}

TEST(Block, MerkleRootEmpty) {
  EXPECT_EQ(Block::merkle_root({}), Hash256{});
}

TEST(Block, MerkleRootSingleTxIsItsHash) {
  const Transaction tx = make_tx("a", "b", 1);
  EXPECT_EQ(Block::merkle_root({tx}), tx.hash());
}

TEST(Block, MerkleRootOrderSensitive) {
  const Transaction t1 = make_tx("a", "b", 1);
  const Transaction t2 = make_tx("c", "d", 2);
  EXPECT_NE(Block::merkle_root({t1, t2}), Block::merkle_root({t2, t1}));
}

TEST(Block, MerkleRootOddCountDuplicatesLast) {
  const Transaction t1 = make_tx("a", "b", 1);
  const Transaction t2 = make_tx("c", "d", 2);
  const Transaction t3 = make_tx("e", "f", 3);
  // Manual computation of the 3-leaf tree.
  const Hash256 left = sha256_pair(t1.hash(), t2.hash());
  const Hash256 right = sha256_pair(t3.hash(), t3.hash());
  EXPECT_EQ(Block::merkle_root({t1, t2, t3}), sha256_pair(left, right));
}

TEST(Block, VerifyTxRootDetectsTamper) {
  Block block;
  block.transactions = {make_tx("a", "b", 5), make_tx("c", "d", 6)};
  block.header.tx_root = Block::merkle_root(block.transactions);
  EXPECT_TRUE(block.verify_tx_root());
  block.transactions[0].value = 500;  // tamper
  EXPECT_FALSE(block.verify_tx_root());
}

TEST(BlockHeader, HashCoversAllFields) {
  BlockHeader header;
  header.index = 1;
  header.timestamp = 2;
  const Hash256 h0 = header.hash();
  BlockHeader changed = header;
  changed.timestamp = 3;
  EXPECT_NE(changed.hash(), h0);
  changed = header;
  changed.prev_hash[0] = 0xFF;
  EXPECT_NE(changed.hash(), h0);
  changed = header;
  changed.tx_root[31] = 0x01;
  EXPECT_NE(changed.hash(), h0);
}

}  // namespace
}  // namespace tradefl::chain
