// Chain durability: the write-ahead block log (append-on-seal, startup
// replay, torn-tail truncation vs mid-log rejection) and the full chain
// state snapshot used by the trading-session checkpoint.
#include "chain/blockchain.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace tradefl::chain {
namespace {

const Address kAlice = Address::from_name("alice");
const Address kBob = Address::from_name("bob");

class CounterContract final : public Contract {
 public:
  [[nodiscard]] std::string contract_name() const override { return "Counter"; }

  std::vector<AbiValue> call(CallContext& context, const std::string& method,
                             const std::vector<AbiValue>& args) override {
    if (method == "increment") {
      context.gas->charge_storage_write();
      count_ += abi_u64(args, 0);
      context.host->emit_event("Incremented", {std::uint64_t{count_}});
      return {std::uint64_t{count_}};
    }
    if (method == "read") return {std::uint64_t{count_}};
    throw Revert("unknown method");
  }

  [[nodiscard]] Bytes save_state() const override {
    ByteWriter writer;
    writer.put_u64(count_);
    return writer.data();
  }
  void load_state(const Bytes& state) override {
    ByteReader reader(state);
    count_ = reader.get_u64();
  }

 private:
  std::uint64_t count_ = 0;
};

Transaction call_tx(const Address& from, const Address& to, const std::string& method,
                    std::vector<AbiValue> args = {}, Wei value = 0) {
  Transaction tx;
  tx.from = from;
  tx.to = to;
  tx.value = value;
  tx.data = encode_call(CallPayload{method, std::move(args)});
  return tx;
}

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  return {std::istreambuf_iterator<char>(file), std::istreambuf_iterator<char>()};
}

void dump(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(file.good()) << path;
}

/// Runs a few contract calls, sealing one block per call (dev-chain style).
void run_activity(Blockchain& chain, const Address& counter, int calls) {
  for (int i = 0; i < calls; ++i) {
    const Receipt receipt =
        chain.submit(call_tx(kAlice, counter, "increment", {std::uint64_t{1}}));
    ASSERT_TRUE(receipt.success) << receipt.revert_reason;
    chain.seal_block();
  }
}

/// Builds a chain that logs `calls` sealed blocks into `wal`.
std::vector<Hash256> build_logged_chain(const std::string& wal, int calls) {
  Blockchain chain;
  EXPECT_TRUE(chain.attach_wal(wal).ok());
  chain.credit(kAlice, 1'000'000);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  run_activity(chain, counter, calls);
  std::vector<Hash256> hashes;
  for (std::size_t b = 0; b < chain.block_count(); ++b) {
    hashes.push_back(chain.block(b).header.hash());
  }
  return hashes;
}

TEST(ChainWal, MissingFileIsCleanFirstBoot) {
  Blockchain chain;
  const auto report = chain.replay_wal(temp_path("fresh.wal"));
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(report.value().blocks_replayed, 0u);
  EXPECT_FALSE(report.value().tail_truncated);
  EXPECT_TRUE(chain.wal_attached());
  EXPECT_TRUE(std::filesystem::exists(temp_path("fresh.wal")));
}

TEST(ChainWal, ReplayRecoversEverySealedBlock) {
  const std::string wal = temp_path("replay.wal");
  const std::vector<Hash256> expected = build_logged_chain(wal, 4);

  Blockchain restored;
  const auto report = restored.replay_wal(wal);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(report.value().blocks_replayed, expected.size() - 1);  // genesis not logged
  EXPECT_FALSE(report.value().tail_truncated);
  ASSERT_EQ(restored.block_count(), expected.size());
  for (std::size_t b = 0; b < expected.size(); ++b) {
    EXPECT_EQ(restored.block(b).header.hash(), expected[b]) << "block " << b;
  }
}

TEST(ChainWal, ReplayRequiresFreshChain) {
  const std::string wal = temp_path("dirty.wal");
  build_logged_chain(wal, 2);
  Blockchain dirty;
  dirty.credit(kAlice, 10);
  const Address counter = dirty.deploy(std::make_unique<CounterContract>());
  run_activity(dirty, counter, 1);
  const auto report = dirty.replay_wal(wal);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, "wal.state");
}

TEST(ChainWal, TornTailIsTruncatedKeepingCommittedBlocks) {
  const std::string wal = temp_path("torn.wal");
  const std::vector<Hash256> expected = build_logged_chain(wal, 3);

  // Simulate a crash mid-append: half of a new record made it to disk.
  std::vector<std::uint8_t> raw = slurp(wal);
  const std::size_t committed = raw.size();
  std::vector<std::uint8_t> torn = raw;
  torn.insert(torn.end(), raw.begin(), raw.begin() + 9);  // partial frame
  dump(wal, torn);

  Blockchain restored;
  const auto report = restored.replay_wal(wal);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_TRUE(report.value().tail_truncated);
  EXPECT_EQ(report.value().bytes_truncated, 9u);
  EXPECT_EQ(report.value().blocks_replayed, expected.size() - 1);
  EXPECT_EQ(restored.block_count(), expected.size());
  // The log itself was repaired: a second replay is clean.
  EXPECT_EQ(slurp(wal).size(), committed);
  Blockchain again;
  const auto second = again.replay_wal(wal);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().tail_truncated);
}

TEST(ChainWal, CorruptLastRecordDropsOnlyThatRecord) {
  const std::string wal = temp_path("tail_flip.wal");
  const std::vector<Hash256> expected = build_logged_chain(wal, 3);

  // Flip one byte inside the LAST record: it fails its CRC, nothing valid
  // follows, so it is torn-tail — all fully-committed earlier blocks survive.
  std::vector<std::uint8_t> raw = slurp(wal);
  raw[raw.size() - 5] ^= 0x40;
  dump(wal, raw);

  Blockchain restored;
  const auto report = restored.replay_wal(wal);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_TRUE(report.value().tail_truncated);
  EXPECT_EQ(report.value().blocks_replayed, expected.size() - 2);
  EXPECT_EQ(restored.block_count(), expected.size() - 1);
}

TEST(ChainWal, MidLogCorruptionIsRejectedNotTruncated) {
  const std::string wal = temp_path("midlog.wal");
  build_logged_chain(wal, 3);

  // Damage the FIRST record while valid records follow: truncating here
  // would silently drop committed blocks, so replay must refuse.
  std::vector<std::uint8_t> raw = slurp(wal);
  raw[6] ^= 0x01;
  dump(wal, raw);

  Blockchain restored;
  const auto report = restored.replay_wal(wal);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, "wal.corrupt");
  EXPECT_NE(report.error().message.find("mid-log"), std::string::npos)
      << report.error().message;
  EXPECT_EQ(restored.block_count(), 1u);  // only genesis; no partial replay
}

TEST(ChainWal, ForeignRecordFailsChainContinuity) {
  // A CRC-valid record from ANOTHER chain's log must not splice in.
  const std::string wal_a = temp_path("continuity_a.wal");
  const std::string wal_b = temp_path("continuity_b.wal");
  build_logged_chain(wal_a, 2);
  {
    Blockchain other;
    ASSERT_TRUE(other.attach_wal(wal_b).ok());
    other.credit(kBob, 500);
    Transaction tx;
    tx.from = kBob;
    tx.to = kAlice;
    tx.value = 100;
    other.submit(tx);
    other.seal_block();
  }
  // Replace log A's content with log B's first record: valid frame, wrong
  // lineage (prev_hash cannot match A's genesis successor chain).
  std::vector<std::uint8_t> spliced = slurp(wal_a);
  const std::vector<std::uint8_t> foreign = slurp(wal_b);
  spliced.insert(spliced.end(), foreign.begin(), foreign.end());
  dump(wal_a, spliced);

  Blockchain restored;
  const auto report = restored.replay_wal(wal_a);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, "wal.corrupt");
  EXPECT_NE(report.error().message.find("does not extend"), std::string::npos);
}

TEST(ChainWal, AttachAfterTheFactMirrorsSealedBlocks) {
  const std::string wal = temp_path("mirror.wal");
  Blockchain chain;
  chain.credit(kAlice, 1'000'000);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  run_activity(chain, counter, 2);
  ASSERT_TRUE(chain.attach_wal(wal).ok());  // rewrite to mirror current chain
  run_activity(chain, counter, 1);          // and keep appending

  Blockchain restored;
  const auto report = restored.replay_wal(wal);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(restored.block_count(), chain.block_count());
  EXPECT_EQ(restored.block(restored.block_count() - 1).header.hash(),
            chain.block(chain.block_count() - 1).header.hash());
}

// ----- full chain state snapshot (session checkpoint payload) -----

ContractFactory counter_factory() {
  return [](const std::string& name) -> ContractPtr {
    if (name != "Counter") return nullptr;
    return std::make_unique<CounterContract>();
  };
}

TEST(ChainState, SaveRestoreRoundTripsLedgerAndContracts) {
  Blockchain chain;
  chain.credit(kAlice, 1'000'000);
  chain.credit(kBob, 777);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  run_activity(chain, counter, 3);
  const Bytes saved = chain.save_chain_state();

  Blockchain restored;
  const Status status = restored.restore_chain_state(saved, counter_factory());
  ASSERT_TRUE(status.ok()) << status.error().to_string();

  EXPECT_EQ(restored.balance(kAlice), chain.balance(kAlice));
  EXPECT_EQ(restored.balance(kBob), 777);
  EXPECT_EQ(restored.block_count(), chain.block_count());
  EXPECT_EQ(restored.receipts().size(), chain.receipts().size());
  EXPECT_EQ(restored.events().size(), chain.events().size());
  EXPECT_TRUE(restored.validate().valid);
  // Contract storage came back: the counter continues from 3.
  const Receipt receipt = restored.submit(call_tx(kAlice, counter, "read"));
  ASSERT_TRUE(receipt.success);
  EXPECT_EQ(std::get<std::uint64_t>(decode_values(receipt.return_data).at(0)), 3u);
  // And the two chains keep producing identical blocks afterwards.
  restored.seal_block();
  chain.submit(call_tx(kAlice, counter, "read"));
  chain.seal_block();
  EXPECT_EQ(restored.block_count(), chain.block_count());
}

TEST(ChainState, RestoreWithoutFactoryFailsClosed) {
  Blockchain chain;
  chain.credit(kAlice, 100);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  run_activity(chain, counter, 1);
  const Bytes saved = chain.save_chain_state();

  Blockchain restored;
  const Status status = restored.restore_chain_state(saved, ContractFactory{});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "chain.snapshot");
  // Fail closed: the target chain is untouched (still only genesis).
  EXPECT_EQ(restored.block_count(), 1u);
  EXPECT_EQ(restored.balance(kAlice), 0);
}

TEST(ChainState, CorruptStateBytesFailClosed) {
  Blockchain chain;
  chain.credit(kAlice, 100);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  run_activity(chain, counter, 1);
  Bytes saved = chain.save_chain_state();
  saved.resize(saved.size() / 2);

  Blockchain restored;
  const Status status = restored.restore_chain_state(saved, counter_factory());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "chain.snapshot");
  EXPECT_EQ(restored.block_count(), 1u);
}

TEST(ChainState, RestoreDetachesTheOldWal) {
  const std::string wal = temp_path("detach.wal");
  Blockchain chain;
  ASSERT_TRUE(chain.attach_wal(wal).ok());
  chain.credit(kAlice, 1'000'000);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  run_activity(chain, counter, 2);
  const Bytes saved = chain.save_chain_state();
  const auto wal_before = slurp(wal);

  ASSERT_TRUE(chain.wal_attached());
  ASSERT_TRUE(chain.restore_chain_state(saved, counter_factory()).ok());
  // The old log mirrors the old chain; continuing to append would fork it.
  EXPECT_FALSE(chain.wal_attached());
  run_activity(chain, counter, 1);
  EXPECT_EQ(slurp(wal), wal_before);  // file untouched after restore
}

// ----- snapshot_sync: fast catch-up from snapshot + WAL tail -----

TEST(ChainSnapshotSync, CatchesUpFromSnapshotPlusWalTail) {
  const std::string wal = temp_path("sync.wal");
  const std::string snap = temp_path("sync.snap");
  Blockchain chain;
  ASSERT_TRUE(chain.attach_wal(wal).ok());
  chain.credit(kAlice, 1'000'000);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  run_activity(chain, counter, 3);
  ASSERT_TRUE(chain.save_snapshot(snap).ok());
  run_activity(chain, counter, 2);  // the tail the snapshot does not cover

  Blockchain synced;
  const auto report = synced.snapshot_sync(snap, wal, counter_factory());
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  // Blocks 1..3 are covered by the snapshot (CRC-checked, skipped without
  // decoding); 4..5 replay from the tail.
  EXPECT_EQ(report.value().blocks_skipped, 3u);
  EXPECT_EQ(report.value().blocks_replayed, 2u);
  EXPECT_FALSE(report.value().tail_truncated);
  // Block history is bit-identical to the original chain (the WAL is a block
  // log: execution state — balances, contract storage, receipts — is the
  // snapshot's, exactly as replay_wal recovers blocks without state).
  ASSERT_EQ(synced.block_count(), chain.block_count());
  for (std::size_t b = 0; b < chain.block_count(); ++b) {
    EXPECT_EQ(synced.block(b).header.hash(), chain.block(b).header.hash()) << "block " << b;
  }
  EXPECT_TRUE(synced.validate().valid);

  // The WAL stays attached: further seals append to the same log and a
  // subsequent full replay sees them.
  ASSERT_TRUE(synced.wal_attached());
  run_activity(synced, counter, 1);
  Blockchain full;
  const auto replayed = full.replay_wal(wal);
  ASSERT_TRUE(replayed.ok()) << replayed.error().to_string();
  EXPECT_EQ(full.block_count(), synced.block_count());
}

TEST(ChainSnapshotSync, MissingSnapshotFallsBackToFullReplay) {
  const std::string wal = temp_path("sync_cold.wal");
  const std::vector<Hash256> expected = build_logged_chain(wal, 3);

  Blockchain synced;
  const auto report =
      synced.snapshot_sync(temp_path("sync_cold_missing.snap"), wal, counter_factory());
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(report.value().blocks_skipped, 0u);
  EXPECT_EQ(report.value().blocks_replayed, expected.size() - 1);
  EXPECT_EQ(synced.block_count(), expected.size());
  EXPECT_TRUE(synced.wal_attached());
}

TEST(ChainSnapshotSync, SnapshotWithoutWalStartsAFreshMirror) {
  const std::string wal = temp_path("sync_nowal.wal");
  const std::string snap = temp_path("sync_nowal.snap");
  std::filesystem::remove(wal);  // hermetic across reruns: TempDir persists
  Blockchain chain;
  chain.credit(kAlice, 1'000'000);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  run_activity(chain, counter, 2);
  ASSERT_TRUE(chain.save_snapshot(snap).ok());

  Blockchain synced;
  const auto report = synced.snapshot_sync(snap, wal, counter_factory());
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(report.value().blocks_skipped, 0u);
  EXPECT_EQ(report.value().blocks_replayed, 0u);
  EXPECT_EQ(synced.block_count(), chain.block_count());
  ASSERT_TRUE(synced.wal_attached());
  // The fresh mirror must hold the full restored history.
  Blockchain full;
  ASSERT_TRUE(full.replay_wal(wal).ok());
  EXPECT_EQ(full.block_count(), chain.block_count());
}

TEST(ChainSnapshotSync, TornTailAfterSnapshotIsTruncated) {
  const std::string wal = temp_path("sync_torn.wal");
  const std::string snap = temp_path("sync_torn.snap");
  Blockchain chain;
  ASSERT_TRUE(chain.attach_wal(wal).ok());
  chain.credit(kAlice, 1'000'000);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  run_activity(chain, counter, 2);
  ASSERT_TRUE(chain.save_snapshot(snap).ok());
  run_activity(chain, counter, 1);

  // Crash mid-append after the last committed tail record.
  std::vector<std::uint8_t> raw = slurp(wal);
  std::vector<std::uint8_t> torn = raw;
  torn.insert(torn.end(), raw.begin(), raw.begin() + 9);
  dump(wal, torn);

  Blockchain synced;
  const auto report = synced.snapshot_sync(snap, wal, counter_factory());
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_TRUE(report.value().tail_truncated);
  EXPECT_EQ(report.value().bytes_truncated, 9u);
  EXPECT_EQ(report.value().blocks_skipped, 2u);
  EXPECT_EQ(report.value().blocks_replayed, 1u);
  EXPECT_EQ(synced.block_count(), chain.block_count());
  // The log was repaired in place: a clean second sync sees no tear.
  Blockchain again;
  const auto second = again.snapshot_sync(snap, wal, counter_factory());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().tail_truncated);
}

TEST(ChainSnapshotSync, MidTailCorruptionIsRejected) {
  const std::string wal = temp_path("sync_midtail.wal");
  const std::string snap = temp_path("sync_midtail.snap");
  Blockchain chain;
  ASSERT_TRUE(chain.attach_wal(wal).ok());
  chain.credit(kAlice, 1'000'000);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  run_activity(chain, counter, 1);
  ASSERT_TRUE(chain.save_snapshot(snap).ok());
  const std::size_t covered = slurp(wal).size();
  run_activity(chain, counter, 2);

  // Damage the FIRST tail record while a valid one follows: truncating here
  // would forge history, so the sync must refuse.
  std::vector<std::uint8_t> raw = slurp(wal);
  raw[covered + 6] ^= 0x01;
  dump(wal, raw);

  Blockchain synced;
  const auto report = synced.snapshot_sync(snap, wal, counter_factory());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, "wal.corrupt");
}

TEST(ChainSnapshotSync, WalBehindTheSnapshotIsReMirrored) {
  const std::string wal = temp_path("sync_stale.wal");
  const std::string stale = temp_path("sync_stale_copy.wal");
  const std::string snap = temp_path("sync_stale.snap");
  Blockchain chain;
  ASSERT_TRUE(chain.attach_wal(wal).ok());
  chain.credit(kAlice, 1'000'000);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  run_activity(chain, counter, 2);
  dump(stale, slurp(wal));  // freeze the log at height 2
  run_activity(chain, counter, 2);
  ASSERT_TRUE(chain.save_snapshot(snap).ok());

  // Sync against the stale log: the snapshot is ahead of everything in it,
  // so the log must be rewritten to mirror the restored chain.
  Blockchain synced;
  const auto report = synced.snapshot_sync(snap, stale, counter_factory());
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(report.value().blocks_replayed, 0u);
  EXPECT_EQ(synced.block_count(), chain.block_count());
  ASSERT_TRUE(synced.wal_attached());
  Blockchain full;
  ASSERT_TRUE(full.replay_wal(stale).ok());
  EXPECT_EQ(full.block_count(), chain.block_count());
}

TEST(ChainSnapshotSync, RequiresAFreshChain) {
  const std::string wal = temp_path("sync_dirty.wal");
  const std::string snap = temp_path("sync_dirty.snap");
  Blockchain chain;
  ASSERT_TRUE(chain.attach_wal(wal).ok());
  chain.credit(kAlice, 1'000'000);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  run_activity(chain, counter, 1);
  ASSERT_TRUE(chain.save_snapshot(snap).ok());

  Blockchain dirty;
  dirty.credit(kBob, 1);
  Transaction tx;
  tx.from = kBob;
  tx.to = kAlice;
  tx.value = 1;
  dirty.submit(tx);
  dirty.seal_block();
  const auto report = dirty.snapshot_sync(snap, wal, counter_factory());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, "wal.state");
}

}  // namespace
}  // namespace tradefl::chain
