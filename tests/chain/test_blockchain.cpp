// The ledger: balances, atomic execution, sealing, validation, and tamper
// detection — the immutability/traceability properties Sec. III-F relies on.
#include "chain/blockchain.h"

#include <gtest/gtest.h>

namespace tradefl::chain {
namespace {

const Address kAlice = Address::from_name("alice");
const Address kBob = Address::from_name("bob");

/// Minimal contract for runtime tests: a counter with a failing method.
class CounterContract final : public Contract {
 public:
  [[nodiscard]] std::string contract_name() const override { return "Counter"; }

  std::vector<AbiValue> call(CallContext& context, const std::string& method,
                             const std::vector<AbiValue>& args) override {
    if (method == "increment") {
      context.gas->charge_storage_write();
      count_ += abi_u64(args, 0);
      context.host->emit_event("Incremented", {std::uint64_t{count_}});
      return {std::uint64_t{count_}};
    }
    if (method == "incrementThenFail") {
      count_ += 100;  // must be rolled back
      throw Revert("intentional failure");
    }
    if (method == "payout") {
      context.host->contract_transfer(abi_address(args, 0), abi_i64(args, 1));
      return {};
    }
    if (method == "read") {
      return {std::uint64_t{count_}};
    }
    throw Revert("unknown method");
  }

  [[nodiscard]] Bytes save_state() const override {
    ByteWriter writer;
    writer.put_u64(count_);
    return writer.data();
  }
  void load_state(const Bytes& state) override {
    ByteReader reader(state);
    count_ = reader.get_u64();
  }

 private:
  std::uint64_t count_ = 0;
};

Transaction call_tx(const Address& from, const Address& to, const std::string& method,
                    std::vector<AbiValue> args = {}, Wei value = 0) {
  Transaction tx;
  tx.from = from;
  tx.to = to;
  tx.value = value;
  tx.data = encode_call(CallPayload{method, std::move(args)});
  return tx;
}

TEST(Blockchain, GenesisBlockExists) {
  Blockchain chain;
  EXPECT_EQ(chain.block_count(), 1u);
  EXPECT_TRUE(chain.validate().valid);
}

TEST(Blockchain, CreditAndBalance) {
  Blockchain chain;
  chain.credit(kAlice, 1000);
  EXPECT_EQ(chain.balance(kAlice), 1000);
  EXPECT_EQ(chain.balance(kBob), 0);
  EXPECT_THROW(chain.credit(kAlice, -1), std::invalid_argument);
}

TEST(Blockchain, PlainTransfer) {
  Blockchain chain;
  chain.credit(kAlice, 1000);
  Transaction tx;
  tx.from = kAlice;
  tx.to = kBob;
  tx.value = 400;
  const Receipt receipt = chain.submit(tx);
  EXPECT_TRUE(receipt.success);
  EXPECT_EQ(chain.balance(kAlice), 600);
  EXPECT_EQ(chain.balance(kBob), 400);
}

TEST(Blockchain, InsufficientBalanceReverts) {
  Blockchain chain;
  chain.credit(kAlice, 10);
  Transaction tx;
  tx.from = kAlice;
  tx.to = kBob;
  tx.value = 100;
  const Receipt receipt = chain.submit(tx);
  EXPECT_FALSE(receipt.success);
  EXPECT_NE(receipt.revert_reason.find("insufficient"), std::string::npos);
  EXPECT_EQ(chain.balance(kAlice), 10);  // untouched
}

TEST(Blockchain, ContractCallAndReturn) {
  Blockchain chain;
  chain.credit(kAlice, 1000);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  const Receipt receipt =
      chain.submit(call_tx(kAlice, counter, "increment", {std::uint64_t{5}}));
  ASSERT_TRUE(receipt.success);
  const auto returned = decode_values(receipt.return_data);
  EXPECT_EQ(std::get<std::uint64_t>(returned.at(0)), 5u);
  EXPECT_EQ(chain.events().size(), 1u);
  EXPECT_EQ(chain.events()[0].name, "Incremented");
}

TEST(Blockchain, RevertRollsBackStateBalanceAndEvents) {
  Blockchain chain;
  chain.credit(kAlice, 1000);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  chain.submit(call_tx(kAlice, counter, "increment", {std::uint64_t{1}}));

  const Receipt failed =
      chain.submit(call_tx(kAlice, counter, "incrementThenFail", {}, /*value=*/50));
  EXPECT_FALSE(failed.success);
  EXPECT_EQ(failed.revert_reason, "intentional failure");
  // Value transfer rolled back.
  EXPECT_EQ(chain.balance(kAlice), 1000);
  // Contract state rolled back: counter still 1.
  const Receipt read = chain.submit(call_tx(kAlice, counter, "read"));
  EXPECT_EQ(std::get<std::uint64_t>(decode_values(read.return_data).at(0)), 1u);
  // No event from the failed call.
  EXPECT_EQ(chain.events().size(), 1u);
}

TEST(Blockchain, ContractTransferLimitedToOwnFunds) {
  Blockchain chain;
  chain.credit(kAlice, 500);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  // Fund the contract with 100.
  chain.submit(call_tx(kAlice, counter, "increment", {std::uint64_t{0}}, 100));
  // Paying out 200 must revert (insufficient contract balance).
  const Receipt failed = chain.submit(
      call_tx(kAlice, counter, "payout", {kBob, std::int64_t{200}}));
  EXPECT_FALSE(failed.success);
  // Paying out 60 succeeds.
  const Receipt ok =
      chain.submit(call_tx(kAlice, counter, "payout", {kBob, std::int64_t{60}}));
  EXPECT_TRUE(ok.success);
  EXPECT_EQ(chain.balance(kBob), 60);
  EXPECT_EQ(chain.balance(counter), 40);
}

TEST(Blockchain, OutOfGasReverts) {
  Blockchain chain;
  chain.credit(kAlice, 100);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  Transaction tx = call_tx(kAlice, counter, "increment", {std::uint64_t{1}});
  tx.gas_limit = 10;  // below the base call cost
  const Receipt receipt = chain.submit(tx);
  EXPECT_FALSE(receipt.success);
  EXPECT_EQ(receipt.revert_reason, "out of gas");
}

TEST(Blockchain, GasAccounting) {
  Blockchain chain;
  chain.credit(kAlice, 100);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  const Receipt receipt =
      chain.submit(call_tx(kAlice, counter, "increment", {std::uint64_t{1}}));
  // base + payload bytes + storage write + event, at least.
  EXPECT_GE(receipt.gas_used, chain.gas_schedule().base_call +
                                  chain.gas_schedule().storage_write);
}

TEST(Blockchain, CallDataToNonContractReverts) {
  Blockchain chain;
  chain.credit(kAlice, 100);
  const Receipt receipt = chain.submit(call_tx(kAlice, kBob, "anything"));
  EXPECT_FALSE(receipt.success);
}

TEST(Blockchain, SealAndValidate) {
  Blockchain chain;
  chain.credit(kAlice, 100);
  Transaction tx;
  tx.from = kAlice;
  tx.to = kBob;
  tx.value = 1;
  chain.submit(tx);
  chain.submit(tx);
  EXPECT_TRUE(chain.has_pending());
  const std::uint64_t index = chain.seal_block();
  EXPECT_EQ(index, 1u);
  EXPECT_FALSE(chain.has_pending());
  EXPECT_EQ(chain.block(1).transactions.size(), 2u);
  EXPECT_TRUE(chain.validate().valid);
}

TEST(Blockchain, TamperWithSealedTxDetected) {
  Blockchain chain;
  chain.credit(kAlice, 100);
  Transaction tx;
  tx.from = kAlice;
  tx.to = kBob;
  tx.value = 1;
  chain.submit(tx);
  chain.seal_block();
  ASSERT_TRUE(chain.validate().valid);
  chain.mutable_block_for_test(1).transactions[0].value = 99;  // rewrite history
  const ChainValidation validation = chain.validate();
  EXPECT_FALSE(validation.valid);
  EXPECT_NE(validation.problem.find("Merkle"), std::string::npos);
}

TEST(Blockchain, TamperWithHeaderBreaksLink) {
  Blockchain chain;
  chain.credit(kAlice, 100);
  Transaction tx;
  tx.from = kAlice;
  tx.to = kBob;
  tx.value = 1;
  chain.submit(tx);
  chain.seal_block();
  chain.submit(tx);
  chain.seal_block();
  // Mutating block 1's header (and fixing its tx_root) still breaks block 2's
  // prev-hash link.
  Block& victim = chain.mutable_block_for_test(1);
  victim.header.timestamp += 1000;
  const ChainValidation validation = chain.validate();
  EXPECT_FALSE(validation.valid);
  EXPECT_NE(validation.problem.find("prev-hash"), std::string::npos);
}

TEST(Blockchain, ReceiptLookupByHash) {
  Blockchain chain;
  chain.credit(kAlice, 100);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  const Receipt receipt =
      chain.submit(call_tx(kAlice, counter, "increment", {std::uint64_t{2}}));
  const auto found = chain.receipt_for(receipt.tx_hash);
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(found->success);
  Hash256 bogus{};
  EXPECT_FALSE(chain.receipt_for(bogus).has_value());
}

TEST(Blockchain, NoncesIncrementPerSender) {
  Blockchain chain;
  chain.credit(kAlice, 100);
  Transaction tx;
  tx.from = kAlice;
  tx.to = kBob;
  tx.value = 1;
  const Receipt r1 = chain.submit(tx);
  const Receipt r2 = chain.submit(tx);
  // Identical user transactions get distinct hashes thanks to the nonce.
  EXPECT_NE(r1.tx_hash, r2.tx_hash);
}

TEST(Blockchain, RevertErasesBalanceEntriesTheTransactionCreated) {
  Blockchain chain;
  chain.credit(kAlice, 1000);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  // The failing call credits the (previously absent) contract balance entry
  // before reverting; the undo journal must erase it again — a lingering
  // zero-value entry would change the serialized balance map.
  const Receipt failed =
      chain.submit(call_tx(kAlice, counter, "incrementThenFail", {}, /*value=*/50));
  ASSERT_FALSE(failed.success);
  EXPECT_EQ(chain.balance(counter), 0);
  EXPECT_EQ(chain.balance(kAlice), 1000);
  // Distinguish "entry absent" from "entry present with value 0": force-create
  // the zero entry and watch the serialized state change shape. Were the
  // reverted entry still in the map, this credit would be a no-op.
  const Bytes without_entry = chain.save_chain_state();
  chain.credit(counter, 0);
  EXPECT_NE(chain.save_chain_state(), without_entry);
}

TEST(Blockchain, RevertStillConsumesTheSendersNonce) {
  // Ethereum-style replay protection: a reverted transaction burns its nonce,
  // so resubmitting the same user intent yields a different tx hash.
  Blockchain chain;
  chain.credit(kAlice, 10);
  Transaction tx;
  tx.from = kAlice;
  tx.to = kBob;
  tx.value = 100;  // > balance: reverts
  const Receipt first = chain.submit(tx);
  ASSERT_FALSE(first.success);
  tx.value = 5;  // now affordable
  const Receipt second = chain.submit(tx);
  ASSERT_TRUE(second.success);
  const std::uint64_t sealed = chain.seal_block();
  EXPECT_EQ(chain.block(sealed).transactions[0].nonce, 0u);
  EXPECT_EQ(chain.block(sealed).transactions[1].nonce, 1u);
}

TEST(Blockchain, ReceiptLookupSurvivesRestore) {
  Blockchain chain;
  chain.credit(kAlice, 100);
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  const Receipt receipt =
      chain.submit(call_tx(kAlice, counter, "increment", {std::uint64_t{3}}));
  chain.seal_block();
  const Bytes state = chain.save_chain_state();

  Blockchain restored;
  const Status status = restored.restore_chain_state(
      state, [](const std::string&) { return std::make_unique<CounterContract>(); });
  ASSERT_TRUE(status.ok());
  // The hash->index cache is rebuilt, not persisted: lookups must work on the
  // restored node too.
  const auto found = restored.receipt_for(receipt.tx_hash);
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(found->success);
  EXPECT_EQ(found->block_index, receipt.block_index);
}

TEST(Blockchain, DeployRejectsNull) {
  Blockchain chain;
  EXPECT_THROW(chain.deploy(nullptr), std::invalid_argument);
}

TEST(Blockchain, ContractLookup) {
  Blockchain chain;
  const Address counter = chain.deploy(std::make_unique<CounterContract>());
  EXPECT_TRUE(chain.has_contract(counter));
  EXPECT_EQ(chain.contract_at(counter).contract_name(), "Counter");
  EXPECT_FALSE(chain.has_contract(kAlice));
  EXPECT_THROW(static_cast<void>(chain.contract_at(kAlice)), std::out_of_range);
}

}  // namespace
}  // namespace tradefl::chain
