// Deterministic fixed-point arithmetic used by the on-chain payoff math.
#include "chain/fixed_point.h"

#include <gtest/gtest.h>

#include <limits>

namespace tradefl::chain {
namespace {

TEST(Fixed, Construction) {
  EXPECT_EQ(Fixed::from_int(3).raw(), 3 * Fixed::kScale);
  EXPECT_EQ(Fixed::from_double(1.5).raw(), 1'500'000'000);
  EXPECT_EQ(Fixed::from_raw(123).raw(), 123);
  EXPECT_DOUBLE_EQ(Fixed::from_double(-2.25).to_double(), -2.25);
}

TEST(Fixed, DoubleRoundsToNearest) {
  EXPECT_EQ(Fixed::from_double(1e-9).raw(), 1);
  EXPECT_EQ(Fixed::from_double(4.9e-10).raw(), 0);
  EXPECT_EQ(Fixed::from_double(-1e-9).raw(), -1);
}

TEST(Fixed, AddSub) {
  const Fixed a = Fixed::from_double(1.25);
  const Fixed b = Fixed::from_double(0.75);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).to_double(), 0.5);
  EXPECT_DOUBLE_EQ((-a).to_double(), -1.25);
}

TEST(Fixed, MulDiv) {
  const Fixed a = Fixed::from_double(2.5);
  const Fixed b = Fixed::from_double(0.4);
  EXPECT_DOUBLE_EQ((a * b).to_double(), 1.0);
  EXPECT_DOUBLE_EQ((a / b).to_double(), 6.25);
}

TEST(Fixed, MulUsesWideIntermediate) {
  // 3e6 * 3e6 would overflow int64 raw without the 128-bit intermediate.
  const Fixed big = Fixed::from_int(3'000'000);
  EXPECT_DOUBLE_EQ((big * Fixed::from_int(2)).to_double(), 6'000'000.0);
}

TEST(Fixed, OverflowDetected) {
  const Fixed huge = Fixed::from_raw(std::numeric_limits<std::int64_t>::max());
  EXPECT_THROW(static_cast<void>(huge + Fixed::from_raw(1)), std::overflow_error);
  EXPECT_THROW(static_cast<void>(huge * Fixed::from_int(2)), std::overflow_error);
  const Fixed lowest = Fixed::from_raw(std::numeric_limits<std::int64_t>::min());
  EXPECT_THROW(static_cast<void>(-lowest), std::overflow_error);
  EXPECT_THROW(static_cast<void>(lowest - Fixed::from_raw(1)), std::overflow_error);
}

TEST(Fixed, FromDoubleRejectsNonFinite) {
  EXPECT_THROW(static_cast<void>(Fixed::from_double(std::numeric_limits<double>::quiet_NaN())),
               std::overflow_error);
  EXPECT_THROW(static_cast<void>(Fixed::from_double(1e20)), std::overflow_error);
}

TEST(Fixed, FromIntOverflow) {
  EXPECT_THROW(static_cast<void>(Fixed::from_int(std::numeric_limits<std::int64_t>::max())),
               std::overflow_error);
}

TEST(Fixed, DivideByZero) {
  EXPECT_THROW(static_cast<void>(Fixed::from_int(1) / Fixed::from_raw(0)), std::domain_error);
}

TEST(Fixed, Ordering) {
  EXPECT_LT(Fixed::from_double(1.0), Fixed::from_double(1.5));
  EXPECT_EQ(Fixed::from_double(2.0), Fixed::from_int(2));
}

TEST(Fixed, ToString) {
  EXPECT_EQ(Fixed::from_double(1.5).to_string(), "1.5");
  EXPECT_EQ(Fixed::from_int(42).to_string(), "42.0");
  EXPECT_EQ(Fixed::from_double(-0.25).to_string(), "-0.25");
  EXPECT_EQ(Fixed::from_raw(1).to_string(), "0.000000001");
}

TEST(Fixed, DeterministicAssociativityOfAddition) {
  // Integer arithmetic: (a+b)+c == a+(b+c) exactly — the consensus property
  // floats cannot give.
  const Fixed a = Fixed::from_double(0.1);
  const Fixed b = Fixed::from_double(0.2);
  const Fixed c = Fixed::from_double(0.3);
  EXPECT_EQ(((a + b) + c).raw(), (a + (b + c)).raw());
}

}  // namespace
}  // namespace tradefl::chain
