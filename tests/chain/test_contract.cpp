// The TradeFL smart contract: the Fig. 3 lifecycle, Table I functions,
// exact on-chain budget balance, solvency checks, and arbitration records.
#include "chain/tradefl_contract.h"

#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "chain/web3.h"

namespace tradefl::chain {
namespace {

struct ContractFixture {
  Blockchain chain;
  Web3Client web3{chain};
  std::vector<Address> orgs;
  Address contract;
  Wei min_deposit = 100'000'000'000;  // 100 payoff units (covers worst-case r)

  explicit ContractFixture(std::size_t n = 3, double gamma_scaled = 5.12,
                           double rho = 0.05) {
    TradeFlContractConfig config;
    config.org_count = n;
    config.gamma_scaled = Fixed::from_double(gamma_scaled);
    config.lambda = Fixed::from_double(2.0);
    config.rho.assign(n * n, Fixed{});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j) config.rho[i * n + j] = Fixed::from_double(rho);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      config.data_size_gb.push_back(Fixed::from_double(20.0));
    }
    config.min_deposit = min_deposit;
    contract = chain.deploy(std::make_unique<TradeFlContract>(config));
    for (std::size_t i = 0; i < n; ++i) {
      orgs.push_back(Address::from_name("org-" + std::to_string(i)));
      chain.credit(orgs[i], 10 * min_deposit);
    }
  }

  void register_all() {
    for (std::size_t i = 0; i < orgs.size(); ++i) {
      web3.call_or_throw(orgs[i], contract, "register",
                         {orgs[i], static_cast<std::uint64_t>(i)});
    }
  }
  void deposit_all() {
    for (const Address& org : orgs) {
      web3.call_or_throw(org, contract, "depositSubmit", {}, min_deposit);
    }
  }
  void contribute_all(std::vector<double> ds) {
    for (std::size_t i = 0; i < orgs.size(); ++i) {
      web3.call_or_throw(orgs[i], contract, "contributionSubmit",
                         {Fixed::from_double(ds[i]), Fixed::from_double(3.0)});
    }
  }
  std::uint64_t phase() {
    return std::get<std::uint64_t>(
        web3.call_or_throw(orgs[0], contract, "phase").returned.at(0));
  }
};

TEST(TradeFlContract, LifecyclePhases) {
  ContractFixture fx;
  EXPECT_EQ(fx.phase(), 0u);  // registration
  fx.register_all();
  fx.deposit_all();
  EXPECT_EQ(fx.phase(), 1u);  // contribution opens when everyone escrowed
  fx.contribute_all({0.9, 0.5, 0.1});
  fx.web3.call_or_throw(fx.orgs[0], fx.contract, "payoffCalculate");
  fx.web3.call_or_throw(fx.orgs[0], fx.contract, "payoffTransfer");
  EXPECT_EQ(fx.phase(), 2u);  // settled
}

TEST(TradeFlContract, BudgetBalanceExactInWei) {
  ContractFixture fx;
  fx.register_all();
  fx.deposit_all();
  fx.contribute_all({1.0, 0.4, 0.01});
  fx.web3.call_or_throw(fx.orgs[0], fx.contract, "payoffCalculate");
  Wei total = 0;
  for (std::size_t i = 0; i < fx.orgs.size(); ++i) {
    total += std::get<std::int64_t>(
        fx.web3.call_or_throw(fx.orgs[i], fx.contract, "payoffOf",
                              {static_cast<std::uint64_t>(i)})
            .returned.at(0));
  }
  EXPECT_EQ(total, 0);  // Definition 5, exactly, in integer wei
}

TEST(TradeFlContract, BiggestContributorGainsSmallestPays) {
  ContractFixture fx;
  fx.register_all();
  fx.deposit_all();
  fx.contribute_all({1.0, 0.5, 0.01});
  fx.web3.call_or_throw(fx.orgs[0], fx.contract, "payoffCalculate");
  auto payoff = [&](std::size_t i) {
    return std::get<std::int64_t>(
        fx.web3.call_or_throw(fx.orgs[i], fx.contract, "payoffOf",
                              {static_cast<std::uint64_t>(i)})
            .returned.at(0));
  };
  EXPECT_GT(payoff(0), 0);
  EXPECT_LT(payoff(2), 0);
}

TEST(TradeFlContract, SettlementMovesRealFunds) {
  ContractFixture fx;
  fx.register_all();
  const std::vector<Wei> before{fx.chain.balance(fx.orgs[0]), fx.chain.balance(fx.orgs[1]),
                                fx.chain.balance(fx.orgs[2])};
  fx.deposit_all();
  fx.contribute_all({1.0, 0.5, 0.01});
  fx.web3.call_or_throw(fx.orgs[0], fx.contract, "payoffCalculate");
  fx.web3.call_or_throw(fx.orgs[0], fx.contract, "payoffTransfer");
  // Contract fully drained (all deposits redistributed + refunded).
  EXPECT_EQ(fx.chain.balance(fx.contract), 0);
  // Conservation: total org wealth unchanged.
  Wei total_before = 0, total_after = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    total_before += before[i];
    total_after += fx.chain.balance(fx.orgs[i]);
  }
  EXPECT_EQ(total_after, total_before);
  // Org 0 (largest contributor) strictly gained.
  EXPECT_GT(fx.chain.balance(fx.orgs[0]), before[0]);
  EXPECT_LT(fx.chain.balance(fx.orgs[2]), before[2]);
}

TEST(TradeFlContract, EqualContributionsSettleToZero) {
  ContractFixture fx;
  fx.register_all();
  fx.deposit_all();
  fx.contribute_all({0.5, 0.5, 0.5});
  fx.web3.call_or_throw(fx.orgs[0], fx.contract, "payoffCalculate");
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(std::get<std::int64_t>(
                  fx.web3.call_or_throw(fx.orgs[i], fx.contract, "payoffOf",
                                        {static_cast<std::uint64_t>(i)})
                      .returned.at(0)),
              0);
  }
}

TEST(TradeFlContract, ProfileRecordReturnsContribution) {
  ContractFixture fx;
  fx.register_all();
  fx.deposit_all();
  fx.contribute_all({0.9, 0.5, 0.1});
  const auto outcome = fx.web3.call_or_throw(fx.orgs[1], fx.contract, "profileRecord",
                                             {std::uint64_t{0}});
  EXPECT_EQ(std::get<Fixed>(outcome.returned.at(0)), Fixed::from_double(0.9));
  EXPECT_EQ(std::get<Fixed>(outcome.returned.at(1)), Fixed::from_double(3.0));
  // Event emitted for arbitration traceability.
  bool found = false;
  for (const Event& event : fx.chain.events()) {
    if (event.name == "ProfileRecorded") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TradeFlContract, GuardsAgainstProtocolViolations) {
  ContractFixture fx;
  // Unregistered deposit.
  auto outcome = fx.web3.call(fx.orgs[0], fx.contract, "depositSubmit", {}, 100);
  EXPECT_FALSE(outcome.receipt.success);
  fx.register_all();
  // Double registration of the same index.
  outcome = fx.web3.call(fx.orgs[0], fx.contract, "register", {fx.orgs[0], std::uint64_t{0}});
  EXPECT_FALSE(outcome.receipt.success);
  // Contribution before deposits complete.
  outcome = fx.web3.call(fx.orgs[0], fx.contract, "contributionSubmit",
                         {Fixed::from_double(0.5), Fixed::from_double(3.0)});
  EXPECT_FALSE(outcome.receipt.success);
  fx.deposit_all();
  // d outside [0, 1].
  outcome = fx.web3.call(fx.orgs[0], fx.contract, "contributionSubmit",
                         {Fixed::from_double(1.5), Fixed::from_double(3.0)});
  EXPECT_FALSE(outcome.receipt.success);
  // Settlement before every org contributed.
  outcome = fx.web3.call(fx.orgs[0], fx.contract, "payoffCalculate");
  EXPECT_FALSE(outcome.receipt.success);
  fx.contribute_all({0.9, 0.5, 0.1});
  // Transfer before calculate.
  outcome = fx.web3.call(fx.orgs[0], fx.contract, "payoffTransfer");
  EXPECT_FALSE(outcome.receipt.success);
  fx.web3.call_or_throw(fx.orgs[0], fx.contract, "payoffCalculate");
  fx.web3.call_or_throw(fx.orgs[0], fx.contract, "payoffTransfer");
  // Double settlement.
  outcome = fx.web3.call(fx.orgs[0], fx.contract, "payoffTransfer");
  EXPECT_FALSE(outcome.receipt.success);
  // Unknown method.
  outcome = fx.web3.call(fx.orgs[0], fx.contract, "selfDestruct");
  EXPECT_FALSE(outcome.receipt.success);
}

TEST(TradeFlContract, InsufficientDepositBlocksSettlement) {
  // Huge gamma so the redistribution exceeds the escrow.
  ContractFixture fx(3, /*gamma_scaled=*/1e6, /*rho=*/0.5);
  fx.register_all();
  fx.deposit_all();
  fx.contribute_all({1.0, 0.5, 0.01});
  fx.web3.call_or_throw(fx.orgs[0], fx.contract, "payoffCalculate");
  const auto outcome = fx.web3.call(fx.orgs[0], fx.contract, "payoffTransfer");
  EXPECT_FALSE(outcome.receipt.success);
  EXPECT_NE(outcome.receipt.revert_reason.find("cannot cover"), std::string::npos);
  // Failed settlement leaves deposits escrowed, not lost.
  EXPECT_GT(fx.chain.balance(fx.contract), 0);
}

TEST(TradeFlContract, StateRoundTrip) {
  ContractFixture fx;
  fx.register_all();
  fx.deposit_all();
  fx.contribute_all({0.9, 0.5, 0.1});
  auto& contract = const_cast<Contract&>(fx.chain.contract_at(fx.contract));
  const Bytes snapshot = contract.save_state();
  // Mutate through another call, then restore and verify the old state.
  fx.web3.call_or_throw(fx.orgs[0], fx.contract, "payoffCalculate");
  contract.load_state(snapshot);
  // After restore, payoffOf must revert again (payoffs not calculated).
  const auto outcome =
      fx.web3.call(fx.orgs[0], fx.contract, "payoffOf", {std::uint64_t{0}});
  EXPECT_FALSE(outcome.receipt.success);
}

TEST(TradeFlContract, ConstructorValidation) {
  TradeFlContractConfig config;
  config.org_count = 1;
  EXPECT_THROW(TradeFlContract{config}, std::invalid_argument);
  config.org_count = 2;
  config.rho.assign(3, Fixed{});
  EXPECT_THROW(TradeFlContract{config}, std::invalid_argument);
  config.rho.assign(4, Fixed{});
  config.rho[0] = Fixed::from_double(0.5);  // nonzero diagonal
  config.data_size_gb.assign(2, Fixed::from_int(20));
  EXPECT_THROW(TradeFlContract{config}, std::invalid_argument);
}

TEST(TradeFlContract, MatchesEq9OffChain) {
  // Cross-check the on-chain fixed-point r_{i,j} against a double-precision
  // evaluation of Eq. (9).
  const double gamma_scaled = 5.12, lambda = 2.0, rho = 0.05, s_gb = 20.0, f_ghz = 3.0;
  ContractFixture fx(3, gamma_scaled, rho);
  fx.register_all();
  fx.deposit_all();
  const std::vector<double> ds{1.0, 0.4, 0.01};
  fx.contribute_all(ds);
  fx.web3.call_or_throw(fx.orgs[0], fx.contract, "payoffCalculate");
  auto chi = [&](std::size_t i) { return ds[i] * s_gb + lambda * f_ghz; };
  for (std::size_t i = 0; i < 3; ++i) {
    double expected = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) expected += gamma_scaled * rho * (chi(i) - chi(j));
    }
    const Wei on_chain = std::get<std::int64_t>(
        fx.web3.call_or_throw(fx.orgs[i], fx.contract, "payoffOf",
                              {static_cast<std::uint64_t>(i)})
            .returned.at(0));
    EXPECT_NEAR(static_cast<double>(on_chain) / Fixed::kScale, expected, 1e-6)
        << "org " << i;
  }
}

TEST(TradeFlContract, MultiRoundTrading) {
  ContractFixture fx;
  fx.register_all();
  fx.deposit_all();
  fx.contribute_all({0.9, 0.5, 0.1});
  fx.web3.call_or_throw(fx.orgs[0], fx.contract, "payoffCalculate");
  fx.web3.call_or_throw(fx.orgs[0], fx.contract, "payoffTransfer");

  // Round 1 settled; round counter is 1 until reopened.
  auto round = fx.web3.call_or_throw(fx.orgs[0], fx.contract, "roundOf");
  EXPECT_EQ(std::get<std::uint64_t>(round.returned.at(0)), 1u);

  // Reopening requires membership and a settled round.
  const Address stranger = Address::from_name("stranger");
  fx.chain.credit(stranger, 1000);
  EXPECT_FALSE(fx.web3.call(stranger, fx.contract, "newRound").receipt.success);
  fx.web3.call_or_throw(fx.orgs[1], fx.contract, "newRound");
  round = fx.web3.call_or_throw(fx.orgs[0], fx.contract, "roundOf");
  EXPECT_EQ(std::get<std::uint64_t>(round.returned.at(0)), 2u);
  EXPECT_EQ(fx.phase(), 0u);  // back to awaiting deposits

  // A premature reopen of an unsettled round is rejected.
  EXPECT_FALSE(fx.web3.call(fx.orgs[0], fx.contract, "newRound").receipt.success);

  // Round 2 runs end to end with fresh contributions.
  fx.deposit_all();
  fx.contribute_all({0.2, 0.6, 0.9});
  fx.web3.call_or_throw(fx.orgs[0], fx.contract, "payoffCalculate");
  // Org 2 is now the largest contributor.
  const Wei payoff2 = std::get<std::int64_t>(
      fx.web3.call_or_throw(fx.orgs[2], fx.contract, "payoffOf", {std::uint64_t{2}})
          .returned.at(0));
  EXPECT_GT(payoff2, 0);
  fx.web3.call_or_throw(fx.orgs[0], fx.contract, "payoffTransfer");
  EXPECT_EQ(fx.chain.balance(fx.contract), 0);
  EXPECT_TRUE(fx.chain.validate().valid);
}

}  // namespace
}  // namespace tradefl::chain
