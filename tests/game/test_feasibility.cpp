// Constraint set C^(1)-C^(3) of problem (13): bounds on d, discrete f, and
// the training deadline.
#include <gtest/gtest.h>

#include "game/game_factory.h"

namespace tradefl::game {
namespace {

TEST(Feasibility, MinimalProfileIsFeasible) {
  const auto game = make_default_game(42);
  const auto profile = game.minimal_profile();
  EXPECT_TRUE(game.is_feasible(profile));
  EXPECT_TRUE(game.feasibility_report(profile).empty());
}

TEST(Feasibility, DataUpperBoundRespectsDeadline) {
  const auto game = make_default_game(42);
  for (OrgId i = 0; i < game.size(); ++i) {
    for (std::size_t level : game.feasible_freq_levels(i)) {
      const double bound = game.data_upper_bound(i, level);
      StrategyProfile profile = game.minimal_profile();
      profile[i] = {bound, level};
      EXPECT_TRUE(game.is_feasible(profile))
          << "org " << i << " level " << level << " bound " << bound;
      if (bound < 1.0) {
        profile[i].data_fraction = bound + 1e-3;
        EXPECT_FALSE(game.is_feasible(profile));
      }
    }
  }
}

TEST(Feasibility, BelowDminRejected) {
  const auto game = make_default_game(42);
  auto profile = game.minimal_profile();
  profile[0].data_fraction = game.params().d_min / 2.0;
  EXPECT_FALSE(game.is_feasible(profile));
  EXPECT_NE(game.feasibility_report(profile).find("outside"), std::string::npos);
}

TEST(Feasibility, AboveOneRejected) {
  const auto game = make_default_game(42);
  auto profile = game.minimal_profile();
  profile[0].data_fraction = 1.01;
  EXPECT_FALSE(game.is_feasible(profile));
}

TEST(Feasibility, WrongProfileSizeRejected) {
  const auto game = make_default_game(42);
  StrategyProfile too_short(game.size() - 1);
  EXPECT_FALSE(game.is_feasible(too_short));
}

TEST(Feasibility, FreqIndexOutOfRangeRejected) {
  const auto game = make_default_game(42);
  auto profile = game.minimal_profile();
  profile[0].freq_index = 99;
  EXPECT_FALSE(game.is_feasible(profile));
}

TEST(Feasibility, HigherFrequencyAdmitsMoreData) {
  const auto game = make_default_game(42);
  for (OrgId i = 0; i < game.size(); ++i) {
    const auto& levels = game.org(i).freq_levels;
    for (std::size_t level = 1; level < levels.size(); ++level) {
      EXPECT_GE(game.data_upper_bound(i, level) + 1e-12,
                game.data_upper_bound(i, level - 1));
    }
  }
}

TEST(Feasibility, TightDeadlineRemovesSlowLevels) {
  ExperimentSpec spec;
  spec.params.tau = 12.0;  // very tight: only fast levels survive
  const auto game = make_experiment_game(spec, 42);
  for (OrgId i = 0; i < game.size(); ++i) {
    const auto levels = game.feasible_freq_levels(i);
    // Whatever survives must admit at least D_min.
    for (std::size_t level : levels) {
      EXPECT_GE(game.data_upper_bound(i, level), game.params().d_min);
    }
  }
}

TEST(Feasibility, ImpossibleDeadlineThrowsOnMinimalProfile) {
  ExperimentSpec spec;
  spec.params.tau = 3.0;  // below T1+T3 ranges: nothing feasible
  const auto game = make_experiment_game(spec, 42);
  EXPECT_THROW(game.minimal_profile(), std::runtime_error);
}

TEST(Feasibility, MinimalProfilePicksFastestFeasibleLevel) {
  const auto game = make_default_game(42);
  const auto profile = game.minimal_profile();
  for (OrgId i = 0; i < game.size(); ++i) {
    const auto levels = game.feasible_freq_levels(i);
    EXPECT_EQ(profile[i].freq_index, levels.back());
    EXPECT_DOUBLE_EQ(profile[i].data_fraction, game.params().d_min);
  }
}

}  // namespace
}  // namespace tradefl::game
