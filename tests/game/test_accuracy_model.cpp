// Property tests of every accuracy model against the Eq. (5) conditions:
// P' >= 0 and P'' <= 0, plus derivative consistency by finite differences.
#include "game/accuracy_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace tradefl::game {
namespace {

struct ModelCase {
  std::string name;
  AccuracyModelPtr model;
};

class AccuracyModelProperties : public ::testing::TestWithParam<ModelCase> {};

TEST_P(AccuracyModelProperties, PerformanceZeroAtOrigin) {
  EXPECT_NEAR(GetParam().model->performance(0.0), 0.0, 1e-12);
}

TEST_P(AccuracyModelProperties, LossDecreasesWithData) {
  const AccuracyModel& model = *GetParam().model;
  double previous = model.loss(0.0);
  for (double omega = 1.0; omega <= 300.0; omega += 7.0) {
    const double current = model.loss(omega);
    EXPECT_LE(current, previous + 1e-12) << "at omega " << omega;
    previous = current;
  }
}

TEST_P(AccuracyModelProperties, Equation5FirstDerivative) {
  const AccuracyModel& model = *GetParam().model;
  for (double omega = 0.0; omega <= 300.0; omega += 5.0) {
    EXPECT_GE(model.performance_derivative(omega), 0.0) << "at omega " << omega;
  }
}

TEST_P(AccuracyModelProperties, Equation5SecondDerivative) {
  const AccuracyModel& model = *GetParam().model;
  for (double omega = 0.0; omega <= 300.0; omega += 5.0) {
    EXPECT_LE(model.performance_second_derivative(omega), 1e-15) << "at omega " << omega;
  }
}

TEST_P(AccuracyModelProperties, DerivativesMatchFiniteDifferences) {
  const AccuracyModel& model = *GetParam().model;
  const double h1 = 1e-5;
  // Second differences divide by h^2, so they need a larger step to stay
  // above double rounding noise (~eps/h^2).
  const double h2 = 1e-3;
  for (double omega : {1.0, 10.0, 50.0, 200.0}) {
    const double fd_first =
        (model.loss(omega + h1) - model.loss(omega - h1)) / (2.0 * h1);
    EXPECT_NEAR(model.loss_derivative(omega), fd_first,
                1e-5 * std::max(1.0, std::abs(fd_first)))
        << "at omega " << omega;
    const double fd_second = (model.loss(omega + h2) - 2.0 * model.loss(omega) +
                              model.loss(omega - h2)) /
                             (h2 * h2);
    EXPECT_NEAR(model.loss_second_derivative(omega), fd_second,
                0.05 * std::abs(fd_second) + 1e-7)
        << "at omega " << omega;
  }
}

TEST_P(AccuracyModelProperties, NegativeOmegaRejectedBySqrtFamily) {
  // Only the sqrt/empirical families validate the domain; others are total.
  const AccuracyModel& model = *GetParam().model;
  if (dynamic_cast<const SqrtAccuracyModel*>(&model) != nullptr ||
      dynamic_cast<const EmpiricalAccuracyModel*>(&model) != nullptr) {
    EXPECT_THROW(model.loss(-1.0), std::invalid_argument);
  }
}

SqrtSaturationFit sample_fit() {
  SqrtSaturationFit fit;
  fit.a = 0.8;
  fit.b = 1.5;
  fit.c = 5.0;
  return fit;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, AccuracyModelProperties,
    ::testing::Values(
        ModelCase{"sqrt", std::make_shared<const SqrtAccuracyModel>(10.0, 0.75)},
        ModelCase{"sqrt_tight", std::make_shared<const SqrtAccuracyModel>(50.0, 0.3)},
        ModelCase{"power", std::make_shared<const PowerLawAccuracyModel>(0.8, 20.0, 0.5)},
        ModelCase{"power_alpha1", std::make_shared<const PowerLawAccuracyModel>(0.6, 40.0, 1.0)},
        ModelCase{"exp", std::make_shared<const ExponentialAccuracyModel>(0.7, 60.0)},
        ModelCase{"empirical",
                  std::make_shared<const EmpiricalAccuracyModel>(sample_fit(), 0.9)}),
    [](const ::testing::TestParamInfo<ModelCase>& info) { return info.param.name; });

TEST(SqrtAccuracyModel, AnchorsLossAtA0) {
  const SqrtAccuracyModel model(10.0, 0.75);
  EXPECT_NEAR(model.loss(0.0), 0.75, 1e-12);
}

TEST(SqrtAccuracyModel, MatchesFootnote7AtLargeOmega) {
  // Far from the smoothing offset, A(omega) ~ 1/sqrt(omega G) + 1/G.
  const double g = 10.0;
  const SqrtAccuracyModel model(g, 0.75);
  const double omega = 500.0;
  const double footnote = 1.0 / std::sqrt(omega * g) + 1.0 / g;
  EXPECT_NEAR(model.loss(omega), footnote, 2e-5);
}

TEST(SqrtAccuracyModel, RejectsInconsistentParams) {
  EXPECT_THROW(SqrtAccuracyModel(0.5, 0.75), std::invalid_argument);   // G <= 1
  EXPECT_THROW(SqrtAccuracyModel(10.0, 0.05), std::invalid_argument);  // a0 <= 1/G
}

TEST(PowerLawAccuracyModel, RejectsBadAlpha) {
  EXPECT_THROW(PowerLawAccuracyModel(0.8, 10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(PowerLawAccuracyModel(0.8, 10.0, 1.5), std::invalid_argument);
}

TEST(EmpiricalAccuracyModel, GainMatchesFit) {
  const SqrtSaturationFit fit = sample_fit();
  const EmpiricalAccuracyModel model(fit, 0.9);
  // P(omega) = accuracy gain = b/sqrt(c) - b/sqrt(omega + c).
  const double omega = 30.0;
  const double expected = fit.b / std::sqrt(fit.c) - fit.b / std::sqrt(omega + fit.c);
  EXPECT_NEAR(model.performance(omega), expected, 1e-12);
}

TEST(EmpiricalAccuracyModel, RejectsNegativeSlope) {
  SqrtSaturationFit fit = sample_fit();
  fit.b = -1.0;
  EXPECT_THROW(EmpiricalAccuracyModel(fit, 0.9), std::invalid_argument);
}

}  // namespace
}  // namespace tradefl::game
