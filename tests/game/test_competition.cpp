#include "game/competition.h"

#include <gtest/gtest.h>

namespace tradefl::game {
namespace {

TEST(Competition, ZeroMatrixByDefault) {
  const CompetitionMatrix m(3);
  EXPECT_EQ(m.size(), 3u);
  for (OrgId i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(m.row_sum(i), 0.0);
  }
}

TEST(Competition, FromRowsValidates) {
  EXPECT_NO_THROW(CompetitionMatrix::from_rows({{0.0, 0.2}, {0.2, 0.0}}));
  EXPECT_THROW(CompetitionMatrix::from_rows({{0.1, 0.2}, {0.2, 0.0}}), std::invalid_argument);
  EXPECT_THROW(CompetitionMatrix::from_rows({{0.0, 0.2}}), std::invalid_argument);
  EXPECT_THROW(CompetitionMatrix::from_rows({{0.0, 1.5}, {0.2, 0.0}}), std::invalid_argument);
}

TEST(Competition, RandomSymmetricProperties) {
  Rng rng(42);
  const auto m = CompetitionMatrix::random_symmetric(10, 0.05, rng);
  EXPECT_TRUE(m.is_symmetric());
  for (OrgId i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(m.at(i, i), 0.0);
    for (OrgId j = 0; j < 10; ++j) {
      EXPECT_GE(m.at(i, j), 0.0);
      EXPECT_LE(m.at(i, j), 1.0);
    }
  }
  // Mean of draws should track the requested mean.
  EXPECT_NEAR(m.off_diagonal_mean(), 0.05, 0.01);
}

TEST(Competition, RandomZeroMeanGivesZeroMatrix) {
  Rng rng(1);
  const auto m = CompetitionMatrix::random_symmetric(4, 0.0, rng);
  EXPECT_DOUBLE_EQ(m.off_diagonal_mean(), 0.0);
}

TEST(Competition, WeightedRowSum) {
  auto m = CompetitionMatrix::from_rows({{0.0, 0.5, 0.1}, {0.5, 0.0, 0.2}, {0.1, 0.2, 0.0}});
  const std::vector<double> weights{100.0, 200.0, 300.0};
  EXPECT_DOUBLE_EQ(m.weighted_row_sum(0, weights), 0.5 * 200 + 0.1 * 300);
  EXPECT_THROW(static_cast<void>(m.weighted_row_sum(0, {1.0})), std::invalid_argument);
}

TEST(Competition, PotentialWeights) {
  auto m = CompetitionMatrix::from_rows({{0.0, 0.1}, {0.1, 0.0}});
  const auto z = potential_weights(m, {1000.0, 2000.0});
  EXPECT_DOUBLE_EQ(z[0], 1000.0 - 0.1 * 2000.0);
  EXPECT_DOUBLE_EQ(z[1], 2000.0 - 0.1 * 1000.0);
}

TEST(Competition, EnforcePositiveWeightsNoOpWhenSafe) {
  auto m = CompetitionMatrix::from_rows({{0.0, 0.01}, {0.01, 0.0}});
  const double scale = enforce_positive_weights(m, {1000.0, 1000.0}, 0.05);
  EXPECT_DOUBLE_EQ(scale, 1.0);
}

TEST(Competition, EnforcePositiveWeightsRescales) {
  // rho = 0.9 vs equal profitability: z = 0.1 p < margin 0.5 p.
  auto m = CompetitionMatrix::from_rows({{0.0, 0.9}, {0.9, 0.0}});
  const std::vector<double> p{1000.0, 1000.0};
  const double scale = enforce_positive_weights(m, p, 0.5);
  EXPECT_LT(scale, 1.0);
  const auto z = potential_weights(m, p);
  EXPECT_NEAR(z[0] / p[0], 0.5, 1e-9);
  EXPECT_NEAR(z[1] / p[1], 0.5, 1e-9);
}

TEST(Competition, EnforceHandlesNegativeZ) {
  // Heavily competed low-profitability org: z initially negative.
  auto m = CompetitionMatrix::from_rows({{0.0, 0.8}, {0.8, 0.0}});
  const std::vector<double> p{500.0, 2500.0};
  const auto z_before = potential_weights(m, p);
  EXPECT_LT(z_before[0], 0.0);
  enforce_positive_weights(m, p, 0.05);
  const auto z_after = potential_weights(m, p);
  EXPECT_GT(z_after[0], 0.0);
  EXPECT_GT(z_after[1], 0.0);
  EXPECT_NEAR(z_after[0] / p[0], 0.05, 1e-9);
}

TEST(Competition, SetValidation) {
  CompetitionMatrix m(2);
  EXPECT_THROW(m.set(0, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(m.set(0, 1, 1.5), std::invalid_argument);
  EXPECT_THROW(m.set(5, 0, 0.1), std::out_of_range);
}

}  // namespace
}  // namespace tradefl::game
