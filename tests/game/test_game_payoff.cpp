// Tests of the economic quantities of Sec. III-C-E: revenue, coopetition
// damage (Eqs. 6-7), energy (Eq. 8), redistribution (Eqs. 9-10), payoff
// (Eq. 11), and social welfare.
#include <gtest/gtest.h>

#include "game/game_factory.h"
#include "game/game.h"

namespace tradefl::game {
namespace {

StrategyProfile uniform_profile(const CoopetitionGame& game, double d, std::size_t level) {
  StrategyProfile profile(game.size());
  for (auto& strategy : profile) {
    strategy.data_fraction = d;
    strategy.freq_index = level;
  }
  return profile;
}

TEST(GamePayoff, OmegaAggregatesScaledBits) {
  const auto game = make_toy_game();
  const auto profile = uniform_profile(game, 0.5, 0);
  // omega = sum d_i s_i / 1e9 = 0.5*(20+16+24) = 30.
  EXPECT_NEAR(game.omega(profile), 30.0, 1e-12);
  EXPECT_NEAR(game.omega_excluding(profile, 0), 20.0, 1e-12);
}

TEST(GamePayoff, RevenueIsProfitabilityTimesPerformance) {
  const auto game = make_toy_game();
  const auto profile = uniform_profile(game, 0.5, 0);
  const double performance = game.performance(profile);
  EXPECT_NEAR(game.revenue(0, profile), 2000.0 * performance, 1e-9);
  EXPECT_NEAR(game.revenue(2, profile), 900.0 * performance, 1e-9);
}

TEST(GamePayoff, DamageFollowsEq6And7) {
  const auto game = make_toy_game(5e-9, 0.1);
  const auto profile = uniform_profile(game, 0.5, 0);
  // Marginal contribution of org 0 to the model performance.
  const double with_0 = game.accuracy().performance(game.omega(profile));
  const double without_0 = game.accuracy().performance(game.omega_excluding(profile, 0));
  const double marginal = with_0 - without_0;
  EXPECT_GT(marginal, 0.0);
  // Eq. 6-7: D_0 = sum_j rho_0j p_j marginal.
  double expected = 0.0;
  for (OrgId j = 1; j < 3; ++j) {
    expected += game.rho().at(0, j) * game.org(j).profitability * marginal;
  }
  EXPECT_NEAR(game.damage(0, profile), expected, 1e-9);
}

TEST(GamePayoff, DamageZeroWithoutCompetition) {
  const auto game = make_toy_game(5e-9, 0.0);
  const auto profile = uniform_profile(game, 0.5, 0);
  EXPECT_DOUBLE_EQ(game.damage(0, profile), 0.0);
  EXPECT_DOUBLE_EQ(game.total_damage(profile), 0.0);
}

TEST(GamePayoff, DamageGrowsWithCompetitionIntensity) {
  const auto weak = make_toy_game(5e-9, 0.02);
  const auto strong = make_toy_game(5e-9, 0.10);
  const auto profile = uniform_profile(weak, 0.5, 0);
  EXPECT_LT(weak.total_damage(profile), strong.total_damage(profile));
}

TEST(GamePayoff, EnergyMatchesEq8) {
  const auto game = make_toy_game();
  const auto profile = uniform_profile(game, 0.5, 0);
  const auto& org = game.org(0);
  const double f = org.freq_levels[0];
  const double expected =
      game.params().kappa * f * f * org.cycles_per_bit * 0.5 * org.data_size_bits +
      org.comm_energy();
  EXPECT_NEAR(game.energy(0, profile), expected, 1e-9);
}

TEST(GamePayoff, RedistributionPairAntisymmetricForSymmetricRho) {
  const auto game = make_toy_game(5e-9, 0.05);
  auto profile = uniform_profile(game, 0.5, 0);
  profile[0].data_fraction = 0.9;  // org 0 contributes more
  for (OrgId i = 0; i < 3; ++i) {
    for (OrgId j = 0; j < 3; ++j) {
      EXPECT_NEAR(game.redistribution_pair(i, j, profile),
                  -game.redistribution_pair(j, i, profile), 1e-15);
    }
  }
}

TEST(GamePayoff, BiggerContributorReceivesRedistribution) {
  const auto game = make_toy_game(5e-9, 0.05);
  auto profile = uniform_profile(game, 0.2, 0);
  profile[0].data_fraction = 1.0;  // org 0 contributes the most data
  EXPECT_GT(game.redistribution(0, profile), 0.0);
}

TEST(GamePayoff, BudgetBalanceExact) {
  const auto game = make_toy_game(1e-8, 0.07);
  auto profile = uniform_profile(game, 0.3, 1);
  profile[1].data_fraction = 0.8;
  double total = 0.0;
  for (OrgId i = 0; i < 3; ++i) total += game.redistribution(i, profile);
  EXPECT_NEAR(total, 0.0, 1e-12);
}

TEST(GamePayoff, RedistributionScalesWithGamma) {
  const auto low = make_toy_game(1e-9, 0.05);
  const auto high = make_toy_game(1e-8, 0.05);
  auto profile = uniform_profile(low, 0.2, 0);
  profile[0].data_fraction = 0.9;
  EXPECT_NEAR(high.redistribution(0, profile), 10.0 * low.redistribution(0, profile), 1e-9);
}

TEST(GamePayoff, PayoffBreakdownSumsToTotal) {
  const auto game = make_default_game(7);
  const auto profile = game.minimal_profile();
  for (OrgId i = 0; i < game.size(); ++i) {
    const auto breakdown = game.payoff_breakdown(i, profile);
    EXPECT_NEAR(breakdown.total(),
                breakdown.revenue - breakdown.energy_cost - breakdown.damage +
                    breakdown.redistribution,
                1e-12);
    EXPECT_NEAR(game.payoff(i, profile), breakdown.total(), 1e-12);
  }
}

TEST(GamePayoff, SocialWelfareIsPayoffSum) {
  const auto game = make_default_game(11);
  const auto profile = game.minimal_profile();
  double total = 0.0;
  for (OrgId i = 0; i < game.size(); ++i) total += game.payoff(i, profile);
  EXPECT_NEAR(game.social_welfare(profile), total, 1e-9);
}

TEST(GamePayoff, WeightsZPositiveAfterGuard) {
  // Extreme competition: the constructor's guard must keep all z positive.
  ExperimentSpec spec;
  spec.rho_mean = 0.5;
  const auto game = make_experiment_game(spec, 3);
  for (OrgId i = 0; i < game.size(); ++i) EXPECT_GT(game.weight_z(i), 0.0);
  EXPECT_LT(game.rho_guard_scale(), 1.0);
}

TEST(GamePayoff, TotalDataFraction) {
  const auto game = make_toy_game();
  const auto profile = uniform_profile(game, 0.25, 0);
  EXPECT_NEAR(game.total_data_fraction(profile), 0.75, 1e-12);
}

TEST(GameConstruction, RejectsBadInputs) {
  auto accuracy = std::make_shared<const SqrtAccuracyModel>(10.0, 0.75);
  GameParams params;
  EXPECT_THROW(CoopetitionGame({}, CompetitionMatrix(0), accuracy, params),
               std::invalid_argument);
  Organization org;
  org.name = "solo";
  EXPECT_THROW(CoopetitionGame({org}, CompetitionMatrix(2), accuracy, params),
               std::invalid_argument);
  GameParams bad = params;
  bad.d_min = 0.0;
  EXPECT_THROW(CoopetitionGame({org}, CompetitionMatrix(1), accuracy, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace tradefl::game
