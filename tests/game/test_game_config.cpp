// game_from_config: explicit game definitions from flat key=value files.
#include <gtest/gtest.h>

#include "core/dbr.h"
#include "game/game_factory.h"

namespace tradefl::game {
namespace {

Config base_config() {
  Config config;
  config.set("orgs", "3");
  config.set("gamma", "5.12e-9");
  config.set("org.0.name", "ayla");
  config.set("org.0.s_bits", "20e9");
  config.set("org.0.p", "2000");
  config.set("org.1.name", "brint");
  config.set("org.2.name", "cedra");
  config.set("rho.0.1", "0.05");
  config.set("rho.1.0", "0.05");
  return config;
}

TEST(GameConfig, BuildsExplicitGame) {
  const auto result = game_from_config(base_config());
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const CoopetitionGame& game = result.value();
  EXPECT_EQ(game.size(), 3u);
  EXPECT_EQ(game.org(0).name, "ayla");
  EXPECT_DOUBLE_EQ(game.org(0).profitability, 2000.0);
  EXPECT_DOUBLE_EQ(game.rho().at(0, 1), 0.05);
  EXPECT_DOUBLE_EQ(game.rho().at(0, 2), 0.0);  // defaults to no competition
  EXPECT_DOUBLE_EQ(game.params().gamma, 5.12e-9);
}

TEST(GameConfig, UnspecifiedFieldsUseDefaults) {
  const auto result = game_from_config(base_config());
  ASSERT_TRUE(result.ok());
  const Organization defaults;
  EXPECT_DOUBLE_EQ(result.value().org(1).cycles_per_bit, defaults.cycles_per_bit);
  EXPECT_EQ(result.value().org(1).freq_levels, defaults.freq_levels);
}

TEST(GameConfig, ParsesFrequencyList) {
  Config config = base_config();
  config.set("org.0.freqs", "1.5e9, 3e9, 4.5e9");
  const auto result = game_from_config(config);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().org(0).freq_levels,
            (std::vector<double>{1.5e9, 3e9, 4.5e9}));
}

TEST(GameConfig, SolvableEndToEnd) {
  const auto result = game_from_config(base_config());
  ASSERT_TRUE(result.ok());
  const auto solution = core::run_dbr(result.value());
  EXPECT_TRUE(solution.converged);
}

TEST(GameConfig, RejectsBadInputs) {
  Config config;
  EXPECT_FALSE(game_from_config(config).ok());  // missing orgs
  config.set("orgs", "1");
  EXPECT_FALSE(game_from_config(config).ok());  // too few

  Config bad_rho = base_config();
  bad_rho.set("rho.0.1", "1.5");
  EXPECT_FALSE(game_from_config(bad_rho).ok());

  Config bad_freqs = base_config();
  bad_freqs.set("org.0.freqs", "3e9, banana");
  EXPECT_FALSE(game_from_config(bad_freqs).ok());

  Config descending = base_config();
  descending.set("org.0.freqs", "5e9, 3e9");
  EXPECT_FALSE(game_from_config(descending).ok());  // org invalid

  Config bad_param = base_config();
  bad_param.set("d_min", "0");
  EXPECT_FALSE(game_from_config(bad_param).ok());
}

}  // namespace
}  // namespace tradefl::game
