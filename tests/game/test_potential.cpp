// Theorem 1: the coopetition game admits a weighted potential. We verify the
// exact-potential identity z_i ΔU = ΔC_i numerically across random unilateral
// deviations, the analytic gradient of U, and quantify how far the paper's
// literal Eq. (15) is from exactness (see potential.h commentary).
#include "game/potential.h"

#include <gtest/gtest.h>

#include <cmath>

#include "game/game_factory.h"

namespace tradefl::game {
namespace {

TEST(Potential, ExactIdentityOnToyGame) {
  const auto game = make_toy_game(5.12e-9, 0.05);
  const auto check =
      check_weighted_potential_identity(game, game.minimal_profile(), 500, 17);
  EXPECT_EQ(check.deviations_tested, 500u);
  EXPECT_LT(check.max_rel_error, 1e-8);
}

TEST(Potential, ExactIdentityOnDefaultGame) {
  const auto game = make_default_game(42);
  const auto check =
      check_weighted_potential_identity(game, game.minimal_profile(), 500, 23);
  EXPECT_LT(check.max_rel_error, 1e-8);
}

TEST(Potential, ExactIdentityWithAsymmetricRho) {
  // The exact potential does not require symmetric rho.
  auto rho = CompetitionMatrix::from_rows(
      {{0.0, 0.08, 0.01}, {0.02, 0.0, 0.06}, {0.09, 0.03, 0.0}});
  auto base = make_toy_game();
  CoopetitionGame game(base.orgs(), rho, base.accuracy_ptr(), base.params());
  const auto check =
      check_weighted_potential_identity(game, game.minimal_profile(), 500, 31);
  EXPECT_LT(check.max_rel_error, 1e-8);
}

TEST(Potential, ExactIdentityAcrossGammaSweep) {
  for (double gamma : {0.0, 1e-9, 5.12e-9, 1e-7}) {
    const auto game = make_toy_game(gamma, 0.05);
    const auto check =
        check_weighted_potential_identity(game, game.minimal_profile(), 200, 7);
    EXPECT_LT(check.max_rel_error, 1e-8) << "gamma " << gamma;
  }
}

TEST(Potential, PaperFormDeviatesWhenGammaPositive) {
  // The literal Eq. (15) treats the reverse transfers as constants; with
  // gamma > 0 and rho != 0 its identity error is materially nonzero, while
  // the exact potential stays at floating-point level. This documents the
  // correction described in DESIGN.md.
  const auto game = make_default_game(42);
  const auto paper = check_paper_potential_identity(game, game.minimal_profile(), 500, 29);
  const auto exact = check_weighted_potential_identity(game, game.minimal_profile(), 500, 29);
  EXPECT_GT(paper.max_rel_error, 1e-6);
  EXPECT_LT(exact.max_rel_error, 1e-8);
}

TEST(Potential, PaperFormExactWhenNoRedistribution) {
  // With gamma = 0 both forms coincide.
  const auto game = make_toy_game(0.0, 0.05);
  const auto paper = check_paper_potential_identity(game, game.minimal_profile(), 300, 3);
  EXPECT_LT(paper.max_rel_error, 1e-8);
}

TEST(Potential, GradientMatchesFiniteDifference) {
  const auto game = make_default_game(5);
  auto profile = game.minimal_profile();
  for (OrgId i = 0; i < game.size(); ++i) profile[i].data_fraction = 0.3;
  const double h = 1e-7;
  for (OrgId i = 0; i < game.size(); ++i) {
    auto up = profile;
    auto down = profile;
    up[i].data_fraction += h;
    down[i].data_fraction -= h;
    const double fd = (potential(game, up) - potential(game, down)) / (2.0 * h);
    EXPECT_NEAR(potential_gradient_d(game, profile, i), fd,
                1e-4 * std::max(1.0, std::abs(fd)))
        << "org " << i;
  }
}

TEST(Potential, HessianIsRankOneCurvature) {
  const auto game = make_default_game(5);
  auto profile = game.minimal_profile();
  for (OrgId i = 0; i < game.size(); ++i) profile[i].data_fraction = 0.4;
  const double h = 1e-5;
  // Diagonal entry vs finite difference of the gradient.
  auto up = profile;
  auto down = profile;
  up[0].data_fraction += h;
  down[0].data_fraction -= h;
  const double fd = (potential_gradient_d(game, up, 0) -
                     potential_gradient_d(game, down, 0)) /
                    (2.0 * h);
  EXPECT_NEAR(potential_hessian_dd(game, profile, 0, 0), fd,
              1e-3 * std::max(1.0, std::abs(fd)));
  // Negative semidefinite rank-one structure: h_ij = P'' w_i w_j <= 0.
  EXPECT_LE(potential_hessian_dd(game, profile, 0, 1), 0.0);
}

TEST(Potential, MaximizerBeatsNeighbors) {
  // At a potential maximizer found by enumerating a coarse grid, U is at
  // least as large as at neighboring profiles (sanity of the definition).
  const auto game = make_toy_game();
  StrategyProfile best;
  double best_value = -1e300;
  for (double d0 : {0.01, 0.3, 0.6}) {
    for (double d1 : {0.01, 0.3, 0.6}) {
      for (double d2 : {0.01, 0.3, 0.6}) {
        StrategyProfile profile(3);
        profile[0] = {d0, 0};
        profile[1] = {d1, 0};
        profile[2] = {d2, 0};
        const double value = potential(game, profile);
        if (value > best_value) {
          best_value = value;
          best = profile;
        }
      }
    }
  }
  for (OrgId i = 0; i < 3; ++i) {
    for (double delta : {-0.05, 0.05}) {
      StrategyProfile neighbor = best;
      const double d = neighbor[i].data_fraction + delta;
      if (d < game.params().d_min || d > 1.0) continue;
      neighbor[i].data_fraction = d;
      // Not strictly required to be lower (grid coarse), but the max over the
      // grid must dominate the grid points themselves — here we simply check
      // numeric sanity: finite values.
      EXPECT_TRUE(std::isfinite(potential(game, neighbor)));
    }
  }
  EXPECT_TRUE(std::isfinite(best_value));
}

}  // namespace
}  // namespace tradefl::game
