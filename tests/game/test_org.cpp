#include "game/org.h"

#include <gtest/gtest.h>

namespace tradefl::game {
namespace {

Organization sample_org() {
  Organization org;
  org.name = "test";
  org.data_size_bits = 20e9;
  org.cycles_per_bit = 10.0;
  org.freq_levels = {2e9, 4e9};
  org.download_time = 2.0;
  org.upload_time = 3.0;
  org.e_download_per_s = 1.5;
  org.e_upload_per_s = 0.5;
  return org;
}

TEST(Organization, LocalTrainingTime) {
  const Organization org = sample_org();
  // T2 = eta d s / f = 10 * 0.5 * 2e10 / 4e9 = 25 s (Eq. 2).
  EXPECT_DOUBLE_EQ(org.local_training_time(0.5, 4e9), 25.0);
}

TEST(Organization, RoundTimeIncludesCommPhases) {
  const Organization org = sample_org();
  EXPECT_DOUBLE_EQ(org.round_time(0.5, 4e9), 2.0 + 25.0 + 3.0);
}

TEST(Organization, CommEnergy) {
  const Organization org = sample_org();
  // E_DL*T1 + E_UL*T3 = 1.5*2 + 0.5*3 = 4.5 J.
  EXPECT_DOUBLE_EQ(org.comm_energy(), 4.5);
}

TEST(Organization, CompEnergyQuadraticInFrequency) {
  const Organization org = sample_org();
  const double kappa = 1e-27;
  const double e2 = org.comp_energy(0.5, 2e9, kappa);
  const double e4 = org.comp_energy(0.5, 4e9, kappa);
  EXPECT_NEAR(e4 / e2, 4.0, 1e-12);  // f^2 scaling
  // kappa f^2 eta d s = 1e-27 * 4e18 * 10 * 0.5 * 2e10 = 400 J.
  EXPECT_DOUBLE_EQ(org.comp_energy(0.5, 2e9, kappa), 400.0);
}

TEST(Organization, CompEnergyLinearInData) {
  const Organization org = sample_org();
  const double e1 = org.comp_energy(0.25, 2e9, 1e-27);
  const double e2 = org.comp_energy(0.5, 2e9, 1e-27);
  EXPECT_NEAR(e2 / e1, 2.0, 1e-12);
}

TEST(Organization, DeadlineBound) {
  const Organization org = sample_org();
  // d_max = (tau - T1 - T3) f / (eta s) = (55) * 2e9 / (2e11) = 0.55.
  EXPECT_DOUBLE_EQ(org.max_data_fraction_for_deadline(2e9, 60.0), 0.55);
  // Deadline shorter than comm time: negative bound (level unusable).
  EXPECT_LT(org.max_data_fraction_for_deadline(2e9, 4.0), 0.0);
}

TEST(Organization, ValidityChecks) {
  EXPECT_TRUE(sample_org().is_valid());
  Organization bad = sample_org();
  bad.freq_levels = {4e9, 2e9};  // not ascending
  EXPECT_FALSE(bad.is_valid());
  bad = sample_org();
  bad.data_size_bits = 0.0;
  EXPECT_FALSE(bad.is_valid());
  bad = sample_org();
  bad.freq_levels.clear();
  EXPECT_FALSE(bad.is_valid());
  bad = sample_org();
  bad.profitability = -1.0;
  EXPECT_FALSE(bad.is_valid());
}

}  // namespace
}  // namespace tradefl::game
