// The Sec. VI baselines: WPR, GCA, FIP, TOS.
#include "core/baselines.h"

#include <gtest/gtest.h>

#include <cmath>

#include "game/game_factory.h"

namespace tradefl::core {
namespace {

using game::make_default_game;
using game::OrgId;

TEST(Wpr, ConvergesAndIgnoresRedistribution) {
  const auto game = make_default_game(42);
  const Solution solution = run_wpr(game);
  EXPECT_TRUE(solution.converged);
  EXPECT_TRUE(game.is_feasible(solution.profile));
}

TEST(Wpr, InsensitiveToGamma) {
  // Without the R_i term the equilibrium cannot depend on gamma.
  game::ExperimentSpec lo_spec;
  lo_spec.params.gamma = 1e-10;
  game::ExperimentSpec hi_spec;
  hi_spec.params.gamma = 1e-7;
  const auto lo = make_experiment_game(lo_spec, 42);
  const auto hi = make_experiment_game(hi_spec, 42);
  const Solution lo_solution = run_wpr(lo);
  const Solution hi_solution = run_wpr(hi);
  EXPECT_NEAR(lo.total_data_fraction(lo_solution.profile),
              hi.total_data_fraction(hi_solution.profile), 1e-6);
}

TEST(Wpr, ContributesNoMoreThanDbr) {
  // Redistribution is the incentive; removing it weakly reduces contribution.
  const auto game = make_default_game(42);
  const Solution wpr = run_wpr(game);
  const Solution dbr = run_dbr(game);
  EXPECT_LE(game.total_data_fraction(wpr.profile),
            game.total_data_fraction(dbr.profile) + 1e-6);
}

TEST(Gca, ConvergesAndFeasible) {
  const auto game = make_default_game(42);
  const Solution solution = run_gca(game);
  EXPECT_TRUE(solution.converged);
  EXPECT_TRUE(game.is_feasible(solution.profile));
}

TEST(Gca, FrequencyTracksData) {
  // Orgs with larger d must sit at weakly faster levels under the greedy pin.
  const auto game = make_default_game(42);
  const Solution solution = run_gca(game);
  for (OrgId i = 0; i < game.size(); ++i) {
    for (OrgId j = 0; j < game.size(); ++j) {
      if (solution.profile[i].data_fraction >
              solution.profile[j].data_fraction + 0.3 &&
          game.org(i).freq_levels.size() == game.org(j).freq_levels.size()) {
        EXPECT_GE(solution.profile[i].freq_index + 1, solution.profile[j].freq_index)
            << "i=" << i << " j=" << j;
      }
    }
  }
}

TEST(Gca, ExplicitKScale) {
  const auto game = make_default_game(42);
  GcaOptions options;
  options.k_scale = 1e9;  // ~1 GHz per unit d: everyone pinned to the floor
  const Solution solution = run_gca(game, options);
  for (OrgId i = 0; i < game.size(); ++i) {
    // With such a low target the pin stays at (or near) the lowest feasible
    // level unless the deadline forces a bump.
    EXPECT_LE(solution.profile[i].freq_index, game.org(i).freq_levels.size() - 1);
  }
  EXPECT_TRUE(game.is_feasible(solution.profile));
}

TEST(Fip, StaysOnGridAndConverges) {
  const auto game = make_default_game(42);
  FipOptions options;
  options.grid_step = 0.1;
  const Solution solution = run_fip(game, options);
  EXPECT_TRUE(solution.converged);
  for (const auto& strategy : solution.profile) {
    const double d = strategy.data_fraction;
    const bool on_grid = std::abs(d / 0.1 - std::round(d / 0.1)) < 1e-9;
    const bool at_dmin = std::abs(d - game.params().d_min) < 1e-12;
    EXPECT_TRUE(on_grid || at_dmin) << "d = " << d;
  }
}

TEST(Fip, CoarserGridWeaklyWorsePotential) {
  const auto game = make_default_game(42);
  FipOptions fine;
  fine.grid_step = 0.05;
  FipOptions coarse;
  coarse.grid_step = 0.5;
  const Solution fine_solution = run_fip(game, fine);
  const Solution coarse_solution = run_fip(game, coarse);
  // Not guaranteed strictly, but the fine grid cannot be dramatically worse:
  // both must at least be feasible and converged.
  EXPECT_TRUE(fine_solution.converged);
  EXPECT_TRUE(coarse_solution.converged);
}

TEST(Fip, RejectsBadGrid) {
  const auto game = make_default_game(42);
  EXPECT_THROW(run_fip(game, FipOptions{0.0, {}}), std::invalid_argument);
  EXPECT_THROW(run_fip(game, FipOptions{1.5, {}}), std::invalid_argument);
}

TEST(Tos, AllInProfile) {
  const auto game = make_default_game(42);
  const Solution solution = run_tos(game);
  for (OrgId i = 0; i < game.size(); ++i) {
    EXPECT_DOUBLE_EQ(solution.profile[i].data_fraction, 1.0);
    EXPECT_EQ(solution.profile[i].freq_index, game.org(i).freq_levels.size() - 1);
  }
  EXPECT_DOUBLE_EQ(game.total_data_fraction(solution.profile),
                   static_cast<double>(game.size()));
}

TEST(Tos, BestPerformanceWorstEfficiency) {
  // TOS maximizes P but ignores the deadline and costs: its performance
  // dominates every scheme while its welfare falls below DBR's.
  const auto game = make_default_game(42);
  const Solution tos = run_tos(game);
  const Solution dbr = run_dbr(game);
  EXPECT_GE(game.performance(tos.profile), game.performance(dbr.profile));
  EXPECT_LE(game.social_welfare(tos.profile), game.social_welfare(dbr.profile));
}

TEST(Tos, MayViolateDeadline) {
  // The default game's deadline cannot accommodate d = 1 at every org.
  const auto game = make_default_game(42);
  const Solution tos = run_tos(game);
  EXPECT_FALSE(game.is_feasible(tos.profile));
}

}  // namespace
}  // namespace tradefl::core
