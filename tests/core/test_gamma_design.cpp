// The mechanism designer's gamma* search (behind Figs. 7/10).
#include "core/gamma_design.h"

#include <gtest/gtest.h>

namespace tradefl::core {
namespace {

GammaDesignOptions fast_options() {
  GammaDesignOptions options;
  options.coarse_points = 7;
  options.refine_iterations = 6;
  options.seeds = 1;
  return options;
}

TEST(GammaDesign, FindsInteriorOptimum) {
  game::ExperimentSpec spec;
  spec.org_count = 6;
  const auto result = optimize_gamma(spec, fast_options());
  EXPECT_GT(result.gamma_star, 1e-10);
  EXPECT_LT(result.gamma_star, 1e-7);
  EXPECT_GT(result.welfare_at_star, 0.0);
  EXPECT_GE(result.evaluations.size(), 7u);
}

TEST(GammaDesign, StarBeatsEveryProbe) {
  game::ExperimentSpec spec;
  spec.org_count = 6;
  const auto result = optimize_gamma(spec, fast_options());
  for (const auto& [gamma, welfare] : result.evaluations) {
    EXPECT_GE(result.welfare_at_star, welfare - 1e-9) << "gamma " << gamma;
  }
}

TEST(GammaDesign, WelfareAtStarMatchesDirectEvaluation) {
  game::ExperimentSpec spec;
  spec.org_count = 5;
  const auto options = fast_options();
  const auto result = optimize_gamma(spec, options);
  EXPECT_NEAR(result.welfare_at_star,
              equilibrium_welfare(spec, result.gamma_star, options), 1e-9);
}

TEST(GammaDesign, NonMonotoneCurveObserved) {
  // The paper's headline: welfare rises then falls across the gamma range,
  // so the extremes must both be below the optimum.
  game::ExperimentSpec spec;
  const auto options = fast_options();
  const double at_lo = equilibrium_welfare(spec, 1e-10, options);
  const double at_hi = equilibrium_welfare(spec, 1e-7, options);
  const auto result = optimize_gamma(spec, options);
  EXPECT_GT(result.welfare_at_star, at_lo);
  EXPECT_GT(result.welfare_at_star, at_hi);
}

TEST(GammaDesign, ValidatesOptions) {
  game::ExperimentSpec spec;
  GammaDesignOptions bad = fast_options();
  bad.gamma_lo = 0.0;
  EXPECT_THROW(optimize_gamma(spec, bad), std::invalid_argument);
  bad = fast_options();
  bad.coarse_points = 2;
  EXPECT_THROW(optimize_gamma(spec, bad), std::invalid_argument);
  bad = fast_options();
  bad.seeds = 0;
  EXPECT_THROW(optimize_gamma(spec, bad), std::invalid_argument);
}

}  // namespace
}  // namespace tradefl::core
