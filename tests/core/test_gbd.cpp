// Algorithm 1 (CGBD) and the GBD machinery: primal convexity (Lemma 1),
// feasibility-check closed form (problem 21), cut validity, finite
// convergence (Lemma 2), and (δ+ε)-optimality (Lemma 3) against exhaustive
// enumeration on small instances.
#include "core/gbd.h"

#include <gtest/gtest.h>

#include "core/cgbd.h"
#include "game/game_factory.h"
#include "game/potential.h"

namespace tradefl::core {
namespace {

using game::ExperimentSpec;
using game::make_experiment_game;
using game::make_toy_game;
using game::OrgId;

game::CoopetitionGame small_game(std::uint64_t seed, std::size_t n = 4) {
  ExperimentSpec spec;
  spec.org_count = n;
  return make_experiment_game(spec, seed);
}

TEST(Gbd, PrimalSolvesConcaveProblem) {
  const auto game = small_game(42);
  GbdSolver solver(game);
  std::vector<std::size_t> freq(game.size());
  for (OrgId i = 0; i < game.size(); ++i) freq[i] = game.org(i).freq_levels.size() - 1;
  const PrimalSolve primal = solver.solve_primal(freq);
  ASSERT_TRUE(primal.feasible);
  // The returned d must lie in the box and satisfy deadlines.
  for (OrgId i = 0; i < game.size(); ++i) {
    EXPECT_GE(primal.d[i], game.params().d_min - 1e-9);
    EXPECT_LE(primal.d[i], 1.0 + 1e-9);
    EXPECT_LE(solver.deadline_slack(i, primal.d[i], game.org(i).freq_levels[freq[i]]), 1e-6);
  }
  // Value must match the potential at the solution point.
  game::StrategyProfile profile(game.size());
  for (OrgId i = 0; i < game.size(); ++i) profile[i] = {primal.d[i], freq[i]};
  EXPECT_NEAR(primal.value, game::potential(game, profile), 1e-9);
}

TEST(Gbd, PrimalBeatsGridSearchOverD) {
  const auto game = small_game(7);
  GbdSolver solver(game);
  std::vector<std::size_t> freq(game.size(), 0);
  for (OrgId i = 0; i < game.size(); ++i) {
    freq[i] = game.feasible_freq_levels(i).back();
  }
  const PrimalSolve primal = solver.solve_primal(freq);
  ASSERT_TRUE(primal.feasible);
  // Random grid probes over d must not beat the IP solution.
  tradefl::Rng rng(3);
  game::StrategyProfile probe(game.size());
  for (int trial = 0; trial < 300; ++trial) {
    for (OrgId i = 0; i < game.size(); ++i) {
      const double upper = std::min(1.0, game.data_upper_bound(i, freq[i]));
      probe[i] = {rng.uniform(game.params().d_min, upper), freq[i]};
    }
    EXPECT_LE(game::potential(game, probe), primal.value + 1e-6);
  }
}

TEST(Gbd, InfeasibleFrequencyDetected) {
  // Force an infeasible primal: tight deadline at the lowest level.
  ExperimentSpec spec;
  spec.org_count = 3;
  spec.params.tau = 18.0;  // lowest level cannot meet it for most orgs
  const auto game = make_experiment_game(spec, 11);
  GbdSolver solver(game);
  // Pick the slowest level for every org; expect infeasibility if the bound
  // dips below d_min for someone.
  std::vector<std::size_t> freq(game.size(), 0);
  bool expect_infeasible = false;
  for (OrgId i = 0; i < game.size(); ++i) {
    if (game.data_upper_bound(i, 0) < game.params().d_min) expect_infeasible = true;
  }
  const PrimalSolve primal = solver.solve_primal(freq);
  EXPECT_EQ(primal.feasible, !expect_infeasible);
  if (!primal.feasible) {
    EXPECT_GT(primal.zeta, 0.0);
    // zeta is the worst deadline slack at d = D_min (problem 21 closed form).
    const OrgId worst = primal.violating_org;
    EXPECT_NEAR(primal.zeta,
                solver.deadline_slack(worst, game.params().d_min,
                                      game.org(worst).freq_levels[0]),
                1e-9);
  }
}

TEST(Cgbd, ConvergesAndIsFeasible) {
  const auto game = small_game(42);
  const Solution solution = run_cgbd(game);
  EXPECT_TRUE(solution.converged);
  EXPECT_TRUE(game.is_feasible(solution.profile));
  EXPECT_GT(solution.iterations, 0);
}

TEST(Cgbd, MatchesExhaustiveEnumeration) {
  // Lemma 3: (δ+ε)-optimal. Compare against brute force over all frequency
  // tuples with the same primal solver.
  for (std::uint64_t seed : {1ULL, 42ULL, 123ULL}) {
    const auto game = small_game(seed);
    const Solution cgbd = run_cgbd(game);
    const Solution brute = solve_by_enumeration(game);
    const double best = brute.diagnostic("best_potential");
    const double cgbd_value = game::potential(game, cgbd.profile);
    EXPECT_GE(cgbd_value, best - 1e-4 * std::max(1.0, std::abs(best))) << "seed " << seed;
  }
}

TEST(Cgbd, UpperBoundDominatesLowerBound) {
  const auto game = small_game(42);
  const Solution solution = run_cgbd(game);
  EXPECT_GE(solution.diagnostic("upper_bound") + 1e-9, solution.diagnostic("lower_bound"));
  EXPECT_GE(solution.diagnostic("gap"), -1e-9);
}

TEST(Cgbd, MasterTraversalCountsTuples) {
  const auto game = small_game(42, 3);
  const Solution solution = run_cgbd(game);
  // m^|N| = 3^3 tuples enumerated by the traversal (Lemma 4).
  EXPECT_DOUBLE_EQ(solution.diagnostic("master_tuples"), 27.0);
}

TEST(Cgbd, SolutionIsNashEquilibrium) {
  const auto game = small_game(42);
  const Solution solution = run_cgbd(game);
  EXPECT_LE(game.max_unilateral_gain(solution.profile), 5e-3);
}

TEST(Cgbd, AgreesWithDbrOnPotential) {
  // Both reach (approximately) the potential maximizer on the default game.
  const auto game = game::make_default_game(42);
  const Solution cgbd = run_cgbd(game);
  const double cgbd_potential = game::potential(game, cgbd.profile);
  EXPECT_GT(cgbd_potential, 0.0);
}

TEST(Cgbd, FiniteConvergenceUnderIterationCap) {
  const auto game = small_game(42);
  GbdOptions options;
  options.max_iterations = 3;
  const Solution solution = run_cgbd(game, options);
  EXPECT_LE(solution.iterations, 3);
  EXPECT_TRUE(game.is_feasible(solution.profile));
}

TEST(Cgbd, RejectsBadOptions) {
  const auto game = small_game(42);
  GbdOptions bad;
  bad.epsilon = -1.0;
  EXPECT_THROW(GbdSolver(game, bad), std::invalid_argument);
  bad = GbdOptions{};
  bad.max_iterations = 0;
  EXPECT_THROW(GbdSolver(game, bad), std::invalid_argument);
}

TEST(Cgbd, ThrowsWhenNoTupleFeasible) {
  ExperimentSpec spec;
  spec.org_count = 3;
  spec.params.tau = 3.0;  // below comm times: nothing works
  const auto game = make_experiment_game(spec, 5);
  EXPECT_THROW(run_cgbd(game), std::runtime_error);
}

TEST(GbdFaults, EmptyPlanInjectorIsNoOp) {
  const auto game = small_game(42);
  const FaultInjector inert{};
  GbdOptions options;
  options.faults = &inert;  // disabled: all-zero plan
  const Solution faulted = run_cgbd(game, options);
  const Solution plain = run_cgbd(game);
  ASSERT_EQ(faulted.profile.size(), plain.profile.size());
  for (OrgId i = 0; i < game.size(); ++i) {
    EXPECT_EQ(faulted.profile[i].data_fraction, plain.profile[i].data_fraction);  // bitwise
    EXPECT_EQ(faulted.profile[i].freq_index, plain.profile[i].freq_index);
  }
}

TEST(GbdFaults, PerturbationRecoversViaDampedRestart) {
  // Every primal solve is poisoned with NaN; the solver must recover through
  // the damped barrier restart and still converge to a feasible equilibrium.
  const auto game = small_game(42);
  FaultPlan plan;
  plan.solver_perturb_rate = 1.0;
  const FaultInjector injector(plan);
  GbdOptions options;
  options.faults = &injector;
  const Solution recovered = run_cgbd(game, options);
  EXPECT_TRUE(recovered.converged);
  EXPECT_TRUE(game.is_feasible(recovered.profile));
  // The damped restart solves the same concave primal: the equilibrium value
  // matches the unperturbed run to solver tolerance.
  const Solution plain = run_cgbd(game);
  const double v_recovered = game::potential(game, recovered.profile);
  const double v_plain = game::potential(game, plain.profile);
  EXPECT_NEAR(v_recovered, v_plain, 1e-4 * std::max(1.0, std::abs(v_plain)));
}

TEST(GbdFaults, PerturbationScheduleIsDeterministic) {
  const auto game = small_game(42);
  FaultPlan plan;
  plan.solver_perturb_rate = 0.5;
  plan.seed = 19;
  const FaultInjector injector(plan);
  GbdOptions options;
  options.faults = &injector;
  const Solution a = run_cgbd(game, options);
  const Solution b = run_cgbd(game, options);
  ASSERT_EQ(a.profile.size(), b.profile.size());
  for (OrgId i = 0; i < game.size(); ++i) {
    EXPECT_EQ(a.profile[i].data_fraction, b.profile[i].data_fraction);
    EXPECT_EQ(a.profile[i].freq_index, b.profile[i].freq_index);
  }
}

TEST(Enumeration, VisitsAllTuples) {
  const auto game = small_game(9, 3);
  const Solution brute = solve_by_enumeration(game);
  EXPECT_DOUBLE_EQ(brute.diagnostic("tuples"), 27.0);
  EXPECT_TRUE(game.is_feasible(brute.profile));
}

}  // namespace
}  // namespace tradefl::core
