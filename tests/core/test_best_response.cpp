// Definition 9 / Eq. (24): the best response maximizes C_i over the feasible
// strategy set. Verified against brute-force grid search.
#include "core/best_response.h"

#include <gtest/gtest.h>

#include <cmath>

#include "game/game_factory.h"

namespace tradefl::core {
namespace {

using game::make_default_game;
using game::make_toy_game;
using game::OrgId;
using game::StrategyProfile;

double brute_force_payoff(const game::CoopetitionGame& game, OrgId i,
                          StrategyProfile profile, const BestResponseOptions& options,
                          std::size_t grid = 400) {
  double best = -1e300;
  for (std::size_t level : game.feasible_freq_levels(i)) {
    const double upper = game.data_upper_bound(i, level);
    profile[i].freq_index = level;
    for (std::size_t g = 0; g <= grid; ++g) {
      profile[i].data_fraction = game.params().d_min +
                                 (upper - game.params().d_min) * static_cast<double>(g) /
                                     static_cast<double>(grid);
      best = std::max(best, objective_payoff(game, i, profile, options));
    }
  }
  return best;
}

TEST(BestResponse, MatchesBruteForceToyGame) {
  const auto game = make_toy_game();
  const auto profile = game.minimal_profile();
  for (OrgId i = 0; i < game.size(); ++i) {
    const BestResponse response = best_response(game, i, profile);
    const double brute = brute_force_payoff(game, i, profile, {});
    EXPECT_NEAR(response.payoff, brute, 1e-6 * std::max(1.0, std::abs(brute)));
    EXPECT_GE(response.payoff, brute - 1e-6);
  }
}

TEST(BestResponse, MatchesBruteForceDefaultGame) {
  const auto game = make_default_game(42);
  auto profile = game.minimal_profile();
  profile[3].data_fraction = 0.4;  // non-trivial opponent profile
  for (OrgId i : {OrgId{0}, OrgId{4}, OrgId{9}}) {
    const BestResponse response = best_response(game, i, profile);
    const double brute = brute_force_payoff(game, i, profile, {});
    EXPECT_NEAR(response.payoff, brute, 1e-6 * std::max(1.0, std::abs(brute)));
  }
}

TEST(BestResponse, RespectsFeasibility) {
  const auto game = make_default_game(42);
  const auto profile = game.minimal_profile();
  for (OrgId i = 0; i < game.size(); ++i) {
    const BestResponse response = best_response(game, i, profile);
    StrategyProfile check = profile;
    check[i] = response.strategy;
    EXPECT_TRUE(game.is_feasible(check)) << game.feasibility_report(check);
  }
}

TEST(BestResponse, WithoutRedistributionContributesLess) {
  // The whole point of TradeFL: removing R_i weakens the incentive.
  const auto game = make_default_game(42);
  const auto profile = game.minimal_profile();
  BestResponseOptions with;
  BestResponseOptions without;
  without.include_redistribution = false;
  double d_with = 0.0, d_without = 0.0;
  for (OrgId i = 0; i < game.size(); ++i) {
    d_with += best_response(game, i, profile, with).strategy.data_fraction;
    d_without += best_response(game, i, profile, without).strategy.data_fraction;
  }
  EXPECT_GE(d_with, d_without - 1e-9);
}

TEST(BestResponse, GridModeStaysOnGrid) {
  const auto game = make_default_game(42);
  const auto profile = game.minimal_profile();
  BestResponseOptions options;
  options.d_grid_step = 0.1;
  for (OrgId i = 0; i < game.size(); ++i) {
    const BestResponse response = best_response(game, i, profile, options);
    const double d = response.strategy.data_fraction;
    const bool on_grid = std::abs(d / 0.1 - std::round(d / 0.1)) < 1e-9;
    const bool is_dmin = std::abs(d - game.params().d_min) < 1e-12;
    EXPECT_TRUE(on_grid || is_dmin) << "d = " << d;
  }
}

TEST(BestResponse, ForcedLevelHonored) {
  const auto game = make_default_game(42);
  const auto profile = game.minimal_profile();
  BestResponseOptions options;
  options.forced_freq_level = 0;
  if (game.data_upper_bound(0, 0) >= game.params().d_min) {
    const BestResponse response = best_response(game, 0, profile, options);
    EXPECT_EQ(response.strategy.freq_index, 0u);
  }
}

TEST(BestResponse, ThrowsWhenNothingFeasible) {
  auto game = make_toy_game();
  game::GameParams params = game.params();
  params.tau = 1.0;  // below comm times
  game::CoopetitionGame tight(game.orgs(), game.rho(), game.accuracy_ptr(), params);
  EXPECT_THROW(best_response(tight, 0, StrategyProfile(3)), std::runtime_error);
}

TEST(BestResponse, ObjectiveToggleMatchesBreakdown) {
  const auto game = make_toy_game();
  auto profile = game.minimal_profile();
  profile[0].data_fraction = 0.7;
  BestResponseOptions with;
  BestResponseOptions without;
  without.include_redistribution = false;
  const auto breakdown = game.payoff_breakdown(0, profile);
  EXPECT_NEAR(objective_payoff(game, 0, profile, with), breakdown.total(), 1e-12);
  EXPECT_NEAR(objective_payoff(game, 0, profile, without),
              breakdown.total() - breakdown.redistribution, 1e-12);
}

}  // namespace
}  // namespace tradefl::core
