// Algorithm 2 (DBR): convergence to a Nash equilibrium, monotone potential
// ascent along the best-response path, and trace bookkeeping (Figs. 4-5).
#include "core/dbr.h"

#include <gtest/gtest.h>

#include "game/game_factory.h"
#include "game/potential.h"

namespace tradefl::core {
namespace {

using game::make_default_game;
using game::make_toy_game;

TEST(Dbr, ConvergesOnDefaultGame) {
  const auto game = make_default_game(42);
  const Solution solution = run_dbr(game);
  EXPECT_TRUE(solution.converged);
  EXPECT_TRUE(game.is_feasible(solution.profile));
}

TEST(Dbr, ReachesNashEquilibrium) {
  const auto game = make_default_game(42);
  const Solution solution = run_dbr(game);
  EXPECT_LE(game.max_unilateral_gain(solution.profile), 1e-4);
}

TEST(Dbr, NashAcrossSeeds) {
  for (std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    const auto game = make_default_game(seed);
    const Solution solution = run_dbr(game);
    EXPECT_TRUE(solution.converged) << "seed " << seed;
    EXPECT_LE(game.max_unilateral_gain(solution.profile), 1e-4) << "seed " << seed;
  }
}

TEST(Dbr, PotentialNonDecreasingAlongTrace) {
  // Sequential best responses ascend the exact weighted potential.
  const auto game = make_default_game(42);
  const Solution solution = run_dbr(game);
  for (std::size_t k = 1; k < solution.trace.size(); ++k) {
    EXPECT_GE(solution.trace[k].potential, solution.trace[k - 1].potential - 1e-9)
        << "iteration " << k;
  }
}

TEST(Dbr, TraceRecordsPayoffsPerOrganization) {
  const auto game = make_default_game(42);
  const Solution solution = run_dbr(game);
  ASSERT_FALSE(solution.trace.empty());
  for (const IterationRecord& record : solution.trace) {
    EXPECT_EQ(record.payoffs.size(), game.size());
    EXPECT_EQ(record.profile.size(), game.size());
  }
  // Final trace row matches the returned profile.
  EXPECT_EQ(solution.trace.back().profile, solution.profile);
}

TEST(Dbr, StartsFromMinimalProfileByDefault) {
  const auto game = make_default_game(42);
  const Solution solution = run_dbr(game);
  const auto minimal = game.minimal_profile();
  EXPECT_EQ(solution.trace.front().profile, minimal);
}

TEST(Dbr, AcceptsCustomStart) {
  const auto game = make_default_game(42);
  auto start = game.minimal_profile();
  start[0].data_fraction = 0.3;
  const Solution solution = run_dbr(game, {}, start);
  EXPECT_TRUE(solution.converged);
  EXPECT_LE(game.max_unilateral_gain(solution.profile), 1e-4);
}

TEST(Dbr, RejectsWrongSizeStart) {
  const auto game = make_default_game(42);
  EXPECT_THROW(run_dbr(game, {}, game::StrategyProfile(2)), std::invalid_argument);
}

TEST(Dbr, JacobiModeAlsoConverges) {
  const auto game = make_default_game(42);
  DbrOptions options;
  options.sequential_updates = false;
  options.max_rounds = 500;
  const Solution solution = run_dbr(game, options);
  // Simultaneous updates may cycle in adversarial games, but on this
  // instance they settle; convergence implies NE here too.
  if (solution.converged) {
    EXPECT_LE(game.max_unilateral_gain(solution.profile), 1e-4);
  }
}

TEST(Dbr, RoundLimitRespected) {
  const auto game = make_default_game(42);
  DbrOptions options;
  options.max_rounds = 1;
  const Solution solution = run_dbr(game, options);
  EXPECT_LE(solution.iterations, 1);
}

TEST(Dbr, EquilibriumInvariantToRestart) {
  // Restarting DBR from its own fixed point must not move.
  const auto game = make_default_game(42);
  const Solution first = run_dbr(game);
  const Solution second = run_dbr(game, {}, first.profile);
  EXPECT_LE(game::strategy_distance(first.profile, second.profile), 1e-6);
  EXPECT_LE(second.iterations, 2);
}

TEST(Dbr, ZeroGammaStillConverges) {
  const auto game = make_toy_game(0.0, 0.05);
  const Solution solution = run_dbr(game);
  EXPECT_TRUE(solution.converged);
  EXPECT_LE(game.max_unilateral_gain(solution.profile), 1e-4);
}

}  // namespace
}  // namespace tradefl::core
