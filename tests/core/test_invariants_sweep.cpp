// Randomized property sweep: for a grid of seeds × parameter variations, the
// TradeFL invariants must hold on games this suite has never seen —
// feasibility of equilibria, IR/BB (Theorem 2), the NE condition, potential
// ascent, and the exact weighted-potential identity (Theorem 1).
#include <gtest/gtest.h>

#include "core/mechanism.h"
#include "game/game_factory.h"
#include "game/potential.h"

namespace tradefl::core {
namespace {

struct SweepCase {
  std::uint64_t seed;
  double gamma;
  double mu;
  std::size_t orgs;
};

void PrintTo(const SweepCase& c, std::ostream* os) {
  *os << "seed" << c.seed << "_g" << c.gamma << "_mu" << c.mu << "_n" << c.orgs;
}

class RandomGameInvariants : public ::testing::TestWithParam<SweepCase> {
 protected:
  game::CoopetitionGame make() const {
    const SweepCase& c = GetParam();
    game::ExperimentSpec spec;
    spec.org_count = c.orgs;
    spec.params.gamma = c.gamma;
    spec.rho_mean = c.mu;
    return game::make_experiment_game(spec, c.seed);
  }
};

TEST_P(RandomGameInvariants, DbrEquilibriumInvariants) {
  const auto game = make();
  const auto result = run_scheme(game, Scheme::kDbr);
  ASSERT_TRUE(result.solution.converged);
  EXPECT_TRUE(game.is_feasible(result.solution.profile))
      << game.feasibility_report(result.solution.profile);
  const auto report = verify_properties(game, result);
  EXPECT_TRUE(report.individual_rationality) << report.summary();
  EXPECT_TRUE(report.budget_balance) << report.summary();
  EXPECT_TRUE(report.nash_equilibrium) << report.summary();
}

TEST_P(RandomGameInvariants, PotentialAscentAlongDbrTrace) {
  const auto game = make();
  const auto solution = run_dbr(game);
  for (std::size_t k = 1; k < solution.trace.size(); ++k) {
    EXPECT_GE(solution.trace[k].potential, solution.trace[k - 1].potential - 1e-9);
  }
}

TEST_P(RandomGameInvariants, WeightedPotentialIdentityExact) {
  const auto game = make();
  const auto check =
      game::check_weighted_potential_identity(game, game.minimal_profile(), 100,
                                              GetParam().seed * 13 + 1);
  EXPECT_LT(check.max_rel_error, 1e-8);
}

TEST_P(RandomGameInvariants, ZWeightsPositive) {
  const auto game = make();
  for (game::OrgId i = 0; i < game.size(); ++i) {
    EXPECT_GT(game.weight_z(i), 0.0) << "org " << i;
  }
}

TEST_P(RandomGameInvariants, RedistributionAntisymmetric) {
  const auto game = make();
  const auto result = run_scheme(game, Scheme::kDbr);
  for (game::OrgId i = 0; i < game.size(); ++i) {
    for (game::OrgId j = i + 1; j < game.size(); ++j) {
      EXPECT_NEAR(result.redistribution[i][j], -result.redistribution[j][i], 1e-12);
    }
  }
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (std::uint64_t seed : {3ULL, 77ULL, 2024ULL}) {
    for (double gamma : {1e-9, 5.12e-9, 5e-8}) {
      cases.push_back({seed, gamma, 0.05, 8});
    }
  }
  cases.push_back({5, 5.12e-9, 0.0, 6});    // no competition at all
  cases.push_back({5, 5.12e-9, 0.15, 6});   // heavy competition (guard active)
  cases.push_back({5, 0.0, 0.05, 6});       // no redistribution
  cases.push_back({9, 5.12e-9, 0.05, 3});   // small consortium
  cases.push_back({9, 5.12e-9, 0.05, 15});  // larger consortium
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomGameInvariants, ::testing::ValuesIn(sweep_cases()));

}  // namespace
}  // namespace tradefl::core
