// CGBD crash-consistent checkpointing: a solve that snapshots mid-run and
// resumes in a fresh solver must reproduce the uninterrupted solve exactly —
// cuts, bounds, incumbent, trace — and refuse snapshots from another game.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>

#include "common/snapshot.h"
#include "core/cgbd.h"
#include "game/game_factory.h"

namespace tradefl::core {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

game::CoopetitionGame small_game(std::uint64_t seed, std::size_t n = 4) {
  game::ExperimentSpec spec;
  spec.org_count = n;
  return make_experiment_game(spec, seed);
}

void expect_same_solution(const Solution& a, const Solution& b) {
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.profile.size(), b.profile.size());
  for (std::size_t i = 0; i < a.profile.size(); ++i) {
    EXPECT_EQ(a.profile[i].data_fraction, b.profile[i].data_fraction) << "org " << i;
    EXPECT_EQ(a.profile[i].freq_index, b.profile[i].freq_index) << "org " << i;
  }
  EXPECT_EQ(a.diagnostic("upper_bound"), b.diagnostic("upper_bound"));
  EXPECT_EQ(a.diagnostic("lower_bound"), b.diagnostic("lower_bound"));
  EXPECT_EQ(a.diagnostic("optimality_cuts"), b.diagnostic("optimality_cuts"));
  EXPECT_EQ(a.diagnostic("feasibility_cuts"), b.diagnostic("feasibility_cuts"));
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].iteration, b.trace[i].iteration);
    EXPECT_EQ(a.trace[i].potential, b.trace[i].potential);  // exact bit-identity
    EXPECT_EQ(a.trace[i].welfare, b.trace[i].welfare);
    EXPECT_EQ(a.trace[i].payoffs, b.trace[i].payoffs);
  }
}

TEST(CgbdCheckpoint, ResumedSolveIsBitIdenticalToUninterrupted) {
  const auto game = small_game(42);
  const Solution baseline = run_cgbd(game);
  ASSERT_GE(baseline.iterations, 3) << "need a multi-iteration instance to split";

  // Interrupt after two iterations (the cap stands in for a crash), then let
  // a fresh solver resume from the snapshot and run to convergence.
  const std::string path = temp_path("cgbd_split.snap");
  CgbdOptions first;
  first.max_iterations = 2;
  first.checkpoint_path = path;
  (void)run_cgbd(game, first);
  ASSERT_TRUE(snapshot_exists(path));

  CgbdOptions second;
  second.checkpoint_path = path;
  second.resume = true;
  const Solution resumed = run_cgbd(game, second);
  expect_same_solution(baseline, resumed);
}

TEST(CgbdCheckpoint, SnapshotFromAnotherGameFailsClosed) {
  const std::string path = temp_path("cgbd_foreign.snap");
  CgbdOptions first;
  first.max_iterations = 2;
  first.checkpoint_path = path;
  (void)run_cgbd(small_game(42), first);
  ASSERT_TRUE(snapshot_exists(path));

  CgbdOptions second;
  second.checkpoint_path = path;
  second.resume = true;
  try {
    (void)run_cgbd(small_game(43), second);
    FAIL() << "foreign snapshot must not resume";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("failed closed"), std::string::npos)
        << error.what();
  }
}

TEST(CgbdCheckpoint, MissingSnapshotWithResumeIsColdStart) {
  const auto game = small_game(42);
  CgbdOptions options;
  options.checkpoint_path = temp_path("cgbd_cold.snap");
  std::filesystem::remove(options.checkpoint_path);  // TempDir persists across runs
  options.resume = true;
  expect_same_solution(run_cgbd(game), run_cgbd(game, options));
}

}  // namespace
}  // namespace tradefl::core
