// Strategic-deviation audit: empirical payoff repricing, IR/BB/CE verdicts,
// attack classification from the fault plan, and the snapshot codec. Uses a
// synthetic FedAvgResult so every number is hand-checkable.
#include "core/deviation_audit.h"

#include <gtest/gtest.h>

#include <cmath>

#include "game/game_factory.h"

namespace tradefl::core {
namespace {

struct Fixture {
  game::CoopetitionGame game = game::make_toy_game();
  MechanismResult mechanism = run_scheme(game, Scheme::kDbr);
  PropertyReport properties = verify_properties(game, mechanism);

  TrainingObservation training(double accuracy, std::size_t attacked) const {
    TrainingObservation observed;
    observed.measured_accuracy = accuracy;
    observed.attacked_updates = attacked;
    observed.client_influence.assign(game.size(), 1.0 / static_cast<double>(game.size()));
    observed.client_rejected.assign(game.size(), 0);
    observed.aggregated_rounds = 2;
    observed.executed_rounds = 2;
    observed.attacker_influence = attacked > 0 ? 0.25 : 0.0;
    return observed;
  }
};

TEST(DeviationAudit, FreeRiderPocketsExactlyItsEnergyBillAtFullAccuracy) {
  Fixture fixture;
  FaultPlan plan;
  plan.freeride_silos = 1;
  const FaultInjector faults(plan);

  // measured == analytic: the repriced ledger differs from the truthful one
  // only by the free-rider's refunded energy.
  const auto training = fixture.training(fixture.mechanism.performance, 2);
  const DeviationAudit audit =
      audit_deviation(fixture.game, fixture.mechanism, fixture.properties, training, faults);

  EXPECT_TRUE(audit.attacked);
  EXPECT_NEAR(audit.accuracy_ratio, 1.0, 1e-12);
  ASSERT_EQ(audit.silos.size(), 1u);
  EXPECT_EQ(audit.silos[0].silo, 0u);
  EXPECT_EQ(audit.silos[0].attack, "freeride");
  const auto breakdown =
      fixture.game.payoff_breakdown(0, fixture.mechanism.solution.profile);
  EXPECT_NEAR(audit.silos[0].payoff_gain, breakdown.energy_cost, 1e-9);
  EXPECT_NEAR(audit.silos[0].truthful_payoff, breakdown.total(), 1e-12);
  EXPECT_NEAR(audit.silos[0].influence, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(audit.silos[0].rejected_share, 0.0);
  EXPECT_NEAR(audit.attacker_influence, 0.25, 1e-12);

  // Honest silos are untouched at ratio 1, so empirical IR matches analytic.
  EXPECT_EQ(audit.ir_empirical, fixture.properties.individual_rationality);
  EXPECT_TRUE(audit.bb_empirical);
  EXPECT_EQ(audit.ce_empirical, fixture.properties.computationally_efficient);
}

TEST(DeviationAudit, AccuracyDropRepricesRevenueAndDamage) {
  Fixture fixture;
  FaultPlan plan;
  plan.signflip_silos = 1;
  const FaultInjector faults(plan);

  const double analytic = fixture.mechanism.performance;
  const auto training = fixture.training(analytic * 0.5, 4);
  const DeviationAudit audit =
      audit_deviation(fixture.game, fixture.mechanism, fixture.properties, training, faults);

  EXPECT_NEAR(audit.accuracy_ratio, 0.5, 1e-12);
  ASSERT_EQ(audit.silos.size(), 1u);
  EXPECT_EQ(audit.silos[0].attack, "signflip");
  const auto breakdown =
      fixture.game.payoff_breakdown(0, fixture.mechanism.solution.profile);
  // Sign-flipping is not free-riding: the attacker still paid for training,
  // so its empirical ledger is revenue/damage at half price, energy in full.
  const double expected = breakdown.revenue * 0.5 - breakdown.energy_cost -
                          breakdown.damage * 0.5 + breakdown.redistribution;
  EXPECT_NEAR(audit.silos[0].empirical_payoff, expected, 1e-9);

  // min_honest_payoff is the binding honest silo at the repriced accuracy.
  double expected_min = 0.0;
  bool first = true;
  for (std::size_t i = 1; i < fixture.game.size(); ++i) {
    const auto honest =
        fixture.game.payoff_breakdown(i, fixture.mechanism.solution.profile);
    const double value = honest.revenue * 0.5 - honest.energy_cost - honest.damage * 0.5 +
                         honest.redistribution;
    if (first || value < expected_min) expected_min = value;
    first = false;
  }
  EXPECT_NEAR(audit.min_honest_payoff, expected_min, 1e-9);
}

TEST(DeviationAudit, ColludersAreAllClassified) {
  Fixture fixture;
  FaultPlan plan;
  plan.collude_silos = 2;
  const FaultInjector faults(plan);
  const auto training = fixture.training(fixture.mechanism.performance, 4);
  const DeviationAudit audit =
      audit_deviation(fixture.game, fixture.mechanism, fixture.properties, training, faults);
  ASSERT_EQ(audit.silos.size(), 2u);
  EXPECT_EQ(audit.silos[0].silo, 0u);
  EXPECT_EQ(audit.silos[1].silo, 1u);
  EXPECT_EQ(audit.silos[0].attack, "collude");
  EXPECT_EQ(audit.silos[1].attack, "collude");
}

TEST(DeviationAudit, NoFiredAttackMeansNotAttacked) {
  Fixture fixture;
  FaultPlan plan;
  plan.freeride_silos = 1;
  const FaultInjector faults(plan);
  const auto training = fixture.training(fixture.mechanism.performance, 0);
  const DeviationAudit audit =
      audit_deviation(fixture.game, fixture.mechanism, fixture.properties, training, faults);
  EXPECT_FALSE(audit.attacked);
  EXPECT_NE(audit.summary().find("no adversarial updates"), std::string::npos);
}

TEST(DeviationAudit, SnapshotCodecRoundTrips) {
  Fixture fixture;
  FaultPlan plan;
  plan.freeride_silos = 1;
  plan.signflip_silos = 1;
  const FaultInjector faults(plan);
  const auto training = fixture.training(fixture.mechanism.performance * 0.8, 3);
  const DeviationAudit audit =
      audit_deviation(fixture.game, fixture.mechanism, fixture.properties, training, faults);

  SnapshotWriter writer;
  put_deviation_audit(writer, audit);
  SnapshotReader reader(writer.payload());
  const DeviationAudit decoded = get_deviation_audit(reader);
  reader.require_exhausted();

  EXPECT_EQ(decoded.attacked, audit.attacked);
  EXPECT_EQ(decoded.analytic_accuracy, audit.analytic_accuracy);
  EXPECT_EQ(decoded.measured_accuracy, audit.measured_accuracy);
  EXPECT_EQ(decoded.accuracy_ratio, audit.accuracy_ratio);
  EXPECT_EQ(decoded.attacked_updates, audit.attacked_updates);
  EXPECT_EQ(decoded.rejected_updates, audit.rejected_updates);
  EXPECT_EQ(decoded.clipped_updates, audit.clipped_updates);
  EXPECT_EQ(decoded.attacker_influence, audit.attacker_influence);
  EXPECT_EQ(decoded.ir_empirical, audit.ir_empirical);
  EXPECT_EQ(decoded.min_honest_payoff, audit.min_honest_payoff);
  EXPECT_EQ(decoded.bb_empirical, audit.bb_empirical);
  EXPECT_EQ(decoded.redistribution_sum, audit.redistribution_sum);
  EXPECT_EQ(decoded.ce_empirical, audit.ce_empirical);
  ASSERT_EQ(decoded.silos.size(), audit.silos.size());
  for (std::size_t i = 0; i < audit.silos.size(); ++i) {
    EXPECT_EQ(decoded.silos[i].silo, audit.silos[i].silo);
    EXPECT_EQ(decoded.silos[i].attack, audit.silos[i].attack);
    EXPECT_EQ(decoded.silos[i].truthful_payoff, audit.silos[i].truthful_payoff);
    EXPECT_EQ(decoded.silos[i].empirical_payoff, audit.silos[i].empirical_payoff);
    EXPECT_EQ(decoded.silos[i].payoff_gain, audit.silos[i].payoff_gain);
    EXPECT_EQ(decoded.silos[i].influence, audit.silos[i].influence);
    EXPECT_EQ(decoded.silos[i].rejected_share, audit.silos[i].rejected_share);
  }
  EXPECT_EQ(decoded.summary(), audit.summary());
}

TEST(DeviationAudit, MismatchedProfileFailsClosed) {
  Fixture fixture;
  FaultPlan plan;
  plan.freeride_silos = 1;
  const FaultInjector faults(plan);
  MechanismResult truncated = fixture.mechanism;
  truncated.solution.profile.pop_back();
  const auto training = fixture.training(0.5, 1);
  EXPECT_THROW((void)audit_deviation(fixture.game, truncated, fixture.properties, training,
                                     faults),
               std::invalid_argument);
}

}  // namespace
}  // namespace tradefl::core
