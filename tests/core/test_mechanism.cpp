// The TradeFL mechanism facade and Theorem 2's properties (IR, BB, CE) plus
// the NE check, across schemes and parameter sweeps (TEST_P).
#include "core/mechanism.h"

#include <gtest/gtest.h>

#include "game/game_factory.h"

namespace tradefl::core {
namespace {

using game::make_default_game;

TEST(Mechanism, SchemeNamesRoundTrip) {
  EXPECT_STREQ(scheme_name(Scheme::kCgbd), "CGBD");
  EXPECT_STREQ(scheme_name(Scheme::kDbr), "DBR");
  EXPECT_STREQ(scheme_name(Scheme::kWpr), "WPR");
  EXPECT_STREQ(scheme_name(Scheme::kGca), "GCA");
  EXPECT_STREQ(scheme_name(Scheme::kFip), "FIP");
  EXPECT_STREQ(scheme_name(Scheme::kTos), "TOS");
  EXPECT_EQ(all_schemes().size(), 6u);
}

class MechanismPerScheme : public ::testing::TestWithParam<Scheme> {};

TEST_P(MechanismPerScheme, ResultFieldsConsistent) {
  const auto game = make_default_game(42);
  const MechanismResult result = run_scheme(game, GetParam());
  EXPECT_EQ(result.scheme, GetParam());
  EXPECT_EQ(result.payoffs.size(), game.size());
  EXPECT_NEAR(result.welfare, game.social_welfare(result.solution.profile), 1e-9);
  EXPECT_NEAR(result.total_damage, game.total_damage(result.solution.profile), 1e-12);
  EXPECT_NEAR(result.total_data_fraction,
              game.total_data_fraction(result.solution.profile), 1e-12);
  // Redistribution matrix matches the game's pairwise rule.
  for (game::OrgId i = 0; i < game.size(); ++i) {
    for (game::OrgId j = 0; j < game.size(); ++j) {
      EXPECT_NEAR(result.redistribution[i][j],
                  game.redistribution_pair(i, j, result.solution.profile), 1e-12);
    }
  }
}

TEST_P(MechanismPerScheme, BudgetBalanceHolds) {
  const auto game = make_default_game(42);
  const MechanismResult result = run_scheme(game, GetParam());
  const PropertyReport report = verify_properties(game, result, /*check_nash=*/false);
  EXPECT_TRUE(report.budget_balance) << report.summary();
}

TEST_P(MechanismPerScheme, IndividualRationalityHolds) {
  const auto game = make_default_game(42);
  const MechanismResult result = run_scheme(game, GetParam());
  const PropertyReport report = verify_properties(game, result, /*check_nash=*/false);
  EXPECT_TRUE(report.individual_rationality) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MechanismPerScheme,
                         ::testing::ValuesIn(all_schemes()),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           return scheme_name(info.param);
                         });

TEST(Mechanism, EquilibriumSchemesPassNashCheck) {
  const auto game = make_default_game(42);
  for (Scheme scheme : {Scheme::kCgbd, Scheme::kDbr}) {
    const MechanismResult result = run_scheme(game, scheme);
    const PropertyReport report = verify_properties(game, result);
    EXPECT_TRUE(report.nash_equilibrium)
        << scheme_name(scheme) << ": " << report.summary();
    EXPECT_TRUE(report.computationally_efficient);
  }
}

TEST(Mechanism, TosIsNotAnEquilibrium) {
  const auto game = make_default_game(42);
  const MechanismResult result = run_scheme(game, Scheme::kTos);
  const PropertyReport report = verify_properties(game, result, /*check_nash=*/false);
  EXPECT_FALSE(report.nash_equilibrium);  // unchecked => reported false
}

TEST(Mechanism, WelfareOrderingMatchesPaper) {
  // Fig. 6: the TradeFL schemes (CGBD, DBR) dominate WPR, GCA, and TOS.
  const auto game = make_default_game(42);
  const double dbr = run_scheme(game, Scheme::kDbr).welfare;
  const double cgbd = run_scheme(game, Scheme::kCgbd).welfare;
  const double wpr = run_scheme(game, Scheme::kWpr).welfare;
  const double gca = run_scheme(game, Scheme::kGca).welfare;
  const double tos = run_scheme(game, Scheme::kTos).welfare;
  EXPECT_GT(dbr, wpr);
  EXPECT_GT(dbr, gca);
  EXPECT_GT(dbr, tos);
  EXPECT_NEAR(cgbd, dbr, 0.01 * std::abs(dbr));
}

TEST(Mechanism, DbrContributesMoreDataThanGca) {
  // Fig. 12's headline: DBR's data contribution exceeds GCA's at gamma*.
  const auto game = make_default_game(42);
  const double dbr = run_scheme(game, Scheme::kDbr).total_data_fraction;
  const double gca = run_scheme(game, Scheme::kGca).total_data_fraction;
  EXPECT_GT(dbr, gca);
}

class MechanismGammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(MechanismGammaSweep, PropertiesHoldAcrossGamma) {
  game::ExperimentSpec spec;
  spec.params.gamma = GetParam();
  const auto game = make_experiment_game(spec, 42);
  const MechanismResult result = run_scheme(game, Scheme::kDbr);
  const PropertyReport report = verify_properties(game, result);
  EXPECT_TRUE(report.individual_rationality) << report.summary();
  EXPECT_TRUE(report.budget_balance) << report.summary();
  EXPECT_TRUE(report.nash_equilibrium) << report.summary();
  EXPECT_TRUE(report.computationally_efficient) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(GammaGrid, MechanismGammaSweep,
                         ::testing::Values(0.0, 1e-9, 5.12e-9, 2e-8, 1e-7));

TEST(Mechanism, PropertySummaryMentionsAllProperties) {
  const auto game = make_default_game(42);
  const MechanismResult result = run_scheme(game, Scheme::kDbr);
  const std::string summary = verify_properties(game, result).summary();
  EXPECT_NE(summary.find("IR="), std::string::npos);
  EXPECT_NE(summary.find("BB="), std::string::npos);
  EXPECT_NE(summary.find("NE="), std::string::npos);
  EXPECT_NE(summary.find("CE="), std::string::npos);
}

}  // namespace
}  // namespace tradefl::core
