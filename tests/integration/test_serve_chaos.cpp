// Chaos gate for the serve daemon: a fleet of concurrent sessions under a
// mixed fault plan — phase hangs (watchdog bait), injected process crashes
// (containment bait), and transient chain submission failures (retry bait) —
// must never take the daemon down, must leave every unaffected session
// byte-identical to a solo run, and must leave evicted sessions resumable to
// byte-identical reports by a restarted server.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/faults.h"
#include "tradefl/cli.h"
#include "tradefl/report.h"
#include "tradefl/server.h"
#include "tradefl/session.h"
#include "tradefl/wire.h"

namespace tradefl {
namespace {

std::string temp_dir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << "missing " << path;
  return {std::istreambuf_iterator<char>(file), std::istreambuf_iterator<char>()};
}

Config fleet_config(std::size_t index, const std::string& faults) {
  Config config;
  config.set("orgs", "3");
  config.set("seed", std::to_string(100 + index));
  if (!faults.empty()) config.set("faults", faults);
  return config;
}

std::string session_request_line(const Config& config) {
  wire::Message request;
  request.set_string("op", "session");
  for (const auto& [key, value] : config.entries()) {
    request.set_string(key, value);
  }
  return request.serialize();
}

/// Solo baseline under the same plan minus the crash/hang events (they are
/// supervisor-only: a solo run has no containment scope and no watchdog, and
/// the server strips them on requeue/re-attach, so this is exactly the plan
/// the served session finished under). Rate faults stay — a session degraded
/// by transient submit failures must match a solo run degraded the same way.
std::string solo_report(const Config& config) {
  const game::CoopetitionGame game = cli::game_from_options(config);
  auto built = cli::session_options_from_config(config);
  EXPECT_TRUE(built.ok());
  SessionOptions options = std::move(built).take();
  auto& events = options.faults.events;
  events.erase(std::remove_if(events.begin(), events.end(),
                              [](const FaultEvent& event) {
                                return event.kind == FaultKind::kProcessCrash ||
                                       event.kind == FaultKind::kPhaseHang;
                              }),
               events.end());
  TradingSession session(game);
  const SessionResult result = session.run(options);
  return canonical_session_report(game, result);
}

struct ServeRun {
  server::ServeSummary summary;
  std::vector<wire::Message> replies;
  std::string raw;
};

ServeRun run_serve(const server::ServeOptions& options,
                   const std::vector<std::string>& lines) {
  std::string joined;
  for (const std::string& line : lines) joined += line + "\n";
  std::istringstream in(joined);
  std::ostringstream out;
  server::StreamLineSource source(in);
  server::Server daemon(options);
  ServeRun run;
  run.summary = daemon.run(source, out);
  run.raw = out.str();
  std::istringstream replies(run.raw);
  std::string line;
  while (std::getline(replies, line)) {
    auto parsed = wire::Message::parse(line);
    EXPECT_TRUE(parsed.ok()) << "unparseable reply: " << line;
    if (parsed.ok()) run.replies.push_back(std::move(parsed).take());
  }
  return run;
}

const wire::Message* reply_for(const ServeRun& run, const std::string& op,
                               std::uint64_t id) {
  for (const wire::Message& reply : run.replies) {
    if (reply.get_string("op") == std::optional<std::string>(op) &&
        reply.get_number("id") == std::optional<double>(static_cast<double>(id))) {
      return &reply;
    }
  }
  return nullptr;
}

TEST(ServeChaos, MixedFaultFleetNeverTakesDownTheDaemon) {
  const std::string root = temp_dir("serve_chaos_fleet");
  server::ServeOptions options;
  options.root = root;
  options.workers = 8;       // the whole burst is in flight concurrently
  options.queue_limit = 32;  // no shedding — every session must be accounted for
  options.watchdog_seconds = 1.0;

  // Ten sessions, ids 1..10 in request order. Two hang (watchdog bait), two
  // crash (containment bait), one fights transient submit failures the whole
  // way (retry bait), five are healthy bystanders.
  std::vector<Config> fleet;
  for (std::size_t i = 0; i < 10; ++i) {
    std::string faults;
    if (i == 2) faults = "seed:1,hang:2";
    if (i == 5) faults = "seed:1,hang:3";
    if (i == 3) faults = "seed:1,crash:2";
    if (i == 7) faults = "seed:1,crash:4";
    if (i == 4) faults = "submit:0.2,seed:9";
    fleet.push_back(fleet_config(i, faults));
  }
  std::vector<std::string> lines;
  lines.reserve(fleet.size());
  for (const Config& config : fleet) lines.push_back(session_request_line(config));

  const ServeRun run = run_serve(options, lines);

  // The daemon survived the whole fleet: it processed every request, emitted
  // its bye line, and exited cleanly — no fault escaped its session.
  EXPECT_EQ(run.summary.exit_code, 0) << run.raw;
  ASSERT_FALSE(run.replies.empty());
  EXPECT_EQ(run.replies.back().get_string("op"), std::optional<std::string>("bye"));
  EXPECT_EQ(run.summary.admitted, 10u) << run.raw;
  EXPECT_EQ(run.summary.rejected, 0u) << run.raw;
  EXPECT_EQ(run.summary.crashed, 2u) << run.raw;
  EXPECT_EQ(run.summary.evicted, 2u) << run.raw;
  EXPECT_EQ(run.summary.completed, 8u)
      << "everything but the two hangs finishes in the first incarnation\n"
      << run.raw;
  EXPECT_EQ(run.summary.failed, 0u) << run.raw;

  // Both crashes were contained, reported resumable, and requeued to done.
  for (const std::uint64_t id : {4u, 8u}) {
    const wire::Message* crashed = reply_for(run, "crashed", id);
    ASSERT_NE(crashed, nullptr) << "session " << id << "\n" << run.raw;
    EXPECT_EQ(crashed->get_bool("resumable"), std::optional<bool>(true));
  }
  for (const std::uint64_t id : {3u, 6u}) {
    const wire::Message* evicted = reply_for(run, "evicted", id);
    ASSERT_NE(evicted, nullptr) << "session " << id << "\n" << run.raw;
    EXPECT_EQ(evicted->get_string("error"), std::optional<std::string>("deadline"));
  }

  // Every session that completed is byte-identical to its solo run: the
  // neighbours' hangs, crashes, and retries never bled into it.
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const std::uint64_t id = i + 1;
    if (i == 2 || i == 5) continue;  // evicted this incarnation
    const wire::Message* done = reply_for(run, "done", id);
    ASSERT_NE(done, nullptr) << "session " << id << "\n" << run.raw;
    EXPECT_EQ(slurp(*done->get_string("report")), solo_report(fleet[i]))
        << "session " << id << " diverged from its solo baseline";
  }

  // Second incarnation: the evicted hangs re-attach (hang events stripped),
  // resume from their durable phase checkpoints, and converge to the same
  // bytes an uninterrupted run produces.
  const ServeRun resumed = run_serve(options, {});
  EXPECT_EQ(resumed.summary.exit_code, 0) << resumed.raw;
  EXPECT_EQ(resumed.summary.reattached, 2u) << resumed.raw;
  EXPECT_EQ(resumed.summary.completed, 2u) << resumed.raw;
  EXPECT_EQ(resumed.summary.failed, 0u) << resumed.raw;
  for (const std::size_t i : {std::size_t{2}, std::size_t{5}}) {
    const std::uint64_t id = i + 1;
    const wire::Message* done = reply_for(resumed, "done", id);
    ASSERT_NE(done, nullptr) << "session " << id << "\n" << resumed.raw;
    EXPECT_EQ(done->get_bool("reattached"), std::optional<bool>(true));
    EXPECT_EQ(slurp(*done->get_string("report")), solo_report(fleet[i]))
        << "re-attached session " << id << " diverged from its solo baseline";
  }

  // Nothing in the state root is a torn temp file: every snapshot and report
  // landed through the atomic tmp+rename path.
  for (const auto& entry : std::filesystem::recursive_directory_iterator(root)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }

  // A third incarnation owes nothing: the registry says all ten are done.
  const ServeRun idle = run_serve(options, {});
  EXPECT_EQ(idle.summary.reattached, 0u) << idle.raw;
  EXPECT_EQ(idle.summary.exit_code, 0);
}

}  // namespace
}  // namespace tradefl
