// ISSUE 3's headline guarantee: threads=1 and threads=N produce bit-identical
// results — FedAvg final weights, evaluation metrics, and the CGBD solution.
#include <gtest/gtest.h>

#include <vector>

#include "common/parallel.h"
#include "core/mechanism.h"
#include "fl/fedavg.h"
#include "game/game_factory.h"

namespace tradefl {
namespace {

/// Restores the serial global pool even when an assertion fails mid-test.
struct ThreadsRestorer {
  ~ThreadsRestorer() { set_global_threads(1); }
};

struct FlFixture {
  fl::DatasetSpec concept_spec = fl::DatasetSpec::builtin(fl::DatasetKind::kFmnistLike, 5);
  std::vector<fl::Dataset> locals;
  fl::Dataset test_set;
  fl::ModelSpec model;

  FlFixture() : test_set(concept_spec.with_sample_seed(999), 120) {
    for (std::size_t i = 0; i < 3; ++i) {
      locals.emplace_back(concept_spec.with_sample_seed(10 + i), 90);
    }
    model.kind = fl::ModelKind::kMlp;
    model.channels = concept_spec.channels;
    model.height = concept_spec.height;
    model.width = concept_spec.width;
    model.classes = concept_spec.classes;
    model.seed = 3;
  }

  [[nodiscard]] std::vector<fl::FedClient> clients() const {
    std::vector<fl::FedClient> out;
    for (std::size_t i = 0; i < locals.size(); ++i) {
      out.push_back(fl::FedClient{&locals[i], 0.5 + 0.25 * static_cast<double>(i), 100 + i});
    }
    return out;
  }

  [[nodiscard]] fl::FedAvgResult train() const {
    fl::FedAvgOptions options;
    options.rounds = 2;
    options.local_epochs = 2;
    options.batch_size = 32;
    return fl::train_fedavg(model, clients(), test_set, options);
  }
};

TEST(ParallelDeterminism, FedAvgFinalWeightsBitIdentical) {
  ThreadsRestorer restore;
  FlFixture fixture;
  set_global_threads(1);
  const fl::FedAvgResult serial = fixture.train();
  set_global_threads(4);
  const fl::FedAvgResult threaded = fixture.train();

  ASSERT_EQ(serial.final_weights.size(), threaded.final_weights.size());
  EXPECT_EQ(serial.final_weights, threaded.final_weights);  // bitwise
  ASSERT_EQ(serial.history.size(), threaded.history.size());
  for (std::size_t r = 0; r < serial.history.size(); ++r) {
    EXPECT_EQ(serial.history[r].train_loss, threaded.history[r].train_loss);
    EXPECT_EQ(serial.history[r].test_loss, threaded.history[r].test_loss);
    EXPECT_EQ(serial.history[r].test_accuracy, threaded.history[r].test_accuracy);
  }
}

TEST(ParallelDeterminism, EvaluateBitIdentical) {
  ThreadsRestorer restore;
  FlFixture fixture;
  fl::Net net = fl::build_model(fixture.model);
  set_global_threads(1);
  const fl::EvalResult serial = fl::evaluate(net, fixture.test_set, 32);
  set_global_threads(4);
  const fl::EvalResult threaded = fl::evaluate(net, fixture.test_set, 32);
  EXPECT_EQ(serial.loss, threaded.loss);
  EXPECT_EQ(serial.accuracy, threaded.accuracy);
}

TEST(ParallelDeterminism, CgbdSolutionBitIdentical) {
  ThreadsRestorer restore;
  game::ExperimentSpec spec;
  spec.org_count = 6;
  const auto game = game::make_experiment_game(spec, 42);

  set_global_threads(1);
  const auto serial = core::run_scheme(game, core::Scheme::kCgbd);
  set_global_threads(4);
  const auto threaded = core::run_scheme(game, core::Scheme::kCgbd);

  EXPECT_EQ(serial.welfare, threaded.welfare);
  EXPECT_EQ(serial.potential, threaded.potential);
  EXPECT_EQ(serial.solution.iterations, threaded.solution.iterations);
  ASSERT_EQ(serial.solution.profile.size(), threaded.solution.profile.size());
  for (std::size_t i = 0; i < serial.solution.profile.size(); ++i) {
    EXPECT_EQ(serial.solution.profile[i].freq_index, threaded.solution.profile[i].freq_index);
    EXPECT_EQ(serial.solution.profile[i].data_fraction,
              threaded.solution.profile[i].data_fraction);
  }
}

}  // namespace
}  // namespace tradefl
