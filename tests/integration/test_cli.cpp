// The tradefl CLI layer: parsing, dispatch, and end-to-end subcommand runs.
#include "tradefl/cli.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/obs.h"

namespace tradefl::cli {
namespace {

TEST(CliParse, AcceptsKnownCommands) {
  for (const char* command :
       {"solve", "compare", "sweep", "metrics", "session", "chain", "help"}) {
    const auto invocation = parse({command});
    ASSERT_TRUE(invocation.ok()) << command;
    EXPECT_EQ(invocation.value().command, command);
  }
}

TEST(CliParse, CaseInsensitiveCommand) {
  const auto invocation = parse({"SOLVE", "seed=7"});
  ASSERT_TRUE(invocation.ok());
  EXPECT_EQ(invocation.value().command, "solve");
  EXPECT_EQ(invocation.value().options.get_int("seed", 0), 7);
}

TEST(CliParse, RejectsUnknownCommandAndBadOptions) {
  EXPECT_FALSE(parse({}).ok());
  EXPECT_FALSE(parse({"frobnicate"}).ok());
  EXPECT_FALSE(parse({"solve", "not-a-kv"}).ok());
}

TEST(CliParse, SchemeNames) {
  EXPECT_TRUE(parse_scheme("DBR").ok());
  EXPECT_EQ(parse_scheme("cgbd").value(), core::Scheme::kCgbd);
  EXPECT_EQ(parse_scheme("tos").value(), core::Scheme::kTos);
  EXPECT_FALSE(parse_scheme("equilibrium9000").ok());
}

TEST(CliSpec, OptionsOverrideDefaults) {
  Config options;
  options.set("orgs", "4");
  options.set("gamma", "1e-8");
  options.set("mu", "0.02");
  const auto spec = spec_from_options(options);
  EXPECT_EQ(spec.org_count, 4u);
  EXPECT_DOUBLE_EQ(spec.params.gamma, 1e-8);
  EXPECT_DOUBLE_EQ(spec.rho_mean, 0.02);
}

TEST(CliRun, HelpPrintsUsage) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"help"}).value(), out), 0);
  EXPECT_NE(out.str().find("usage"), std::string::npos);
  EXPECT_NE(out.str().find("solve"), std::string::npos);
}

TEST(CliRun, SolveReportsEquilibrium) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"solve", "orgs=5", "seed=3"}).value(), out), 0);
  EXPECT_NE(out.str().find("welfare"), std::string::npos);
  EXPECT_NE(out.str().find("IR="), std::string::npos);
}

TEST(CliRun, SolveRejectsBadScheme) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"solve", "scheme=bogus"}).value(), out), 2);
}

TEST(CliRun, CompareListsEverySchemeRow) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"compare", "orgs=5", "seed=3"}).value(), out), 0);
  for (core::Scheme scheme : core::all_schemes()) {
    EXPECT_NE(out.str().find(core::scheme_name(scheme)), std::string::npos);
  }
}

TEST(CliRun, SweepEmitsRequestedPoints) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"sweep", "orgs=5", "points=4", "seed=3"}).value(), out), 0);
  // Header + separators + 4 rows: count '\n' in the table body conservatively.
  std::size_t rows = 0;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("| 1") == 0 || line.find("| 1e-") != std::string::npos) ++rows;
  }
  EXPECT_GE(rows, 2u);
}

TEST(CliRun, SessionSettlesOnChain) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"session", "orgs=4", "seed=3"}).value(), out), 0);
  EXPECT_NE(out.str().find("budget balance"), std::string::npos);
  EXPECT_NE(out.str().find("VALID"), std::string::npos);
}

TEST(CliRun, SessionRejectsMalformedFaultSpec) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"session", "orgs=4", "seed=3", "faults=drop:1.5"}).value(), out), 2);
  EXPECT_NE(out.str().find("faults"), std::string::npos);
}

TEST(CliRun, FaultSpecErrorEchoesTokenAndGrammar) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"session", "orgs=4", "seed=3", "faults=signflip:2.5"}).value(), out), 2);
  // A typo must be diagnosable from the CLI output alone: the offending token
  // verbatim plus the full accepted grammar.
  EXPECT_NE(out.str().find("'signflip:2.5'"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("accepted grammar"), std::string::npos);
  EXPECT_NE(out.str().find("collude:<silos>"), std::string::npos);
}

TEST(CliRun, AggSpecErrorEchoesTokenAndGrammar) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"session", "orgs=4", "seed=3", "agg=inverse"}).value(), out), 2);
  EXPECT_NE(out.str().find("'inverse'"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("agg=mean | median | trimmed[:f]"), std::string::npos);
}

TEST(CliRun, SessionEchoesFaultPlanAndSurvivesChaos) {
  std::ostringstream out;
  // Transient submission loss at 20%: retries absorb it, settlement lands,
  // exit code stays 0.
  EXPECT_EQ(run(parse({"session", "orgs=4", "seed=3",
                       "faults=seed:5,submit:0.2"}).value(),
                out),
            0);
  EXPECT_NE(out.str().find("fault plan:"), std::string::npos);
  EXPECT_NE(out.str().find("submit:0.2"), std::string::npos);
  EXPECT_NE(out.str().find("budget balance"), std::string::npos);
}

TEST(CliRun, SessionReportsAbortWhenRetriesExhausted) {
  std::ostringstream out;
  // Every submission lost: the chain phase gives up gracefully. The escrow
  // is retained, settlements stay zero, the chain stays valid — exit 0.
  EXPECT_EQ(run(parse({"session", "orgs=4", "seed=3", "faults=submit:1.0"}).value(), out),
            0);
  EXPECT_NE(out.str().find("ABORTED"), std::string::npos);
  EXPECT_NE(out.str().find("degradations"), std::string::npos);
}

TEST(CliRun, ChainShowsBlocksAndEvents) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"chain", "orgs=3", "seed=3"}).value(), out), 0);
  EXPECT_NE(out.str().find("Registered"), std::string::npos);
  EXPECT_NE(out.str().find("PayoffTransferred"), std::string::npos);
  EXPECT_NE(out.str().find("validation: VALID"), std::string::npos);
}

TEST(CliRun, SolveFromGameFile) {
  const std::string path = testing::TempDir() + "/tradefl_cli_game.cfg";
  {
    std::ofstream file(path);
    file << "orgs = 2\n"
            "gamma = 1e-8\n"
            "org.0.name = ayla\n"
            "org.0.p = 2200\n"
            "org.1.name = brint\n"
            "org.1.p = 800\n"
            "rho.0.1 = 0.05\n"
            "rho.1.0 = 0.05\n";
  }
  std::ostringstream out;
  EXPECT_EQ(run(parse({"solve", "file=" + path}).value(), out), 0);
  EXPECT_NE(out.str().find("ayla"), std::string::npos);
  EXPECT_NE(out.str().find("brint"), std::string::npos);
}

TEST(CliRun, MissingGameFileFails) {
  std::ostringstream out;
  EXPECT_THROW(run(parse({"solve", "file=/nonexistent/game.cfg"}).value(), out),
               std::runtime_error);
}

#if TRADEFL_ENABLE_TRACING
TEST(CliRun, MetricsCommandPrintsSolverTelemetry) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"metrics", "orgs=4", "seed=3", "scheme=cgbd"}).value(), out), 0);
  // CGBD drives the barrier solver, so the Newton counters must show up.
  EXPECT_NE(out.str().find("solver.newton.iterations"), std::string::npos);
  EXPECT_NE(out.str().find("cgbd.iterations"), std::string::npos);
  EXPECT_NE(out.str().find("solver.potential.trajectory"), std::string::npos);
  EXPECT_FALSE(obs::enabled());  // the CLI turns observation back off after the run
}

TEST(CliRun, MetricsFlagAugmentsAnyCommand) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"solve", "orgs=4", "seed=3", "scheme=dbr", "metrics=1"}).value(), out),
            0);
  EXPECT_NE(out.str().find("dbr.rounds.count"), std::string::npos);
}

TEST(CliRun, MetricsJsonAndTraceFilesAreWritten) {
  const std::string json_path = testing::TempDir() + "/tradefl_cli_metrics.json";
  const std::string trace_path = testing::TempDir() + "/tradefl_cli_trace.json";
  std::ostringstream out;
  EXPECT_EQ(run(parse({"metrics", "orgs=4", "seed=3", "scheme=cgbd",
                       "metrics_json=" + json_path, "trace=" + trace_path})
                    .value(),
                out),
            0);
  std::ifstream json_file(json_path);
  ASSERT_TRUE(json_file.good());
  std::stringstream json;
  json << json_file.rdbuf();
  EXPECT_NE(json.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(json.str().find("solver.newton.iterations"), std::string::npos);
  std::ifstream trace_file(trace_path);
  ASSERT_TRUE(trace_file.good());
  std::stringstream trace;
  trace << trace_file.rdbuf();
  EXPECT_EQ(trace.str().rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(trace.str().find("\"cgbd.solve\""), std::string::npos);
  EXPECT_NE(trace.str().find("\"ph\": \"X\""), std::string::npos);
}

TEST(CliRun, UnwritableMetricsJsonFails) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"metrics", "orgs=4", "seed=3",
                       "metrics_json=/nonexistent/dir/metrics.json"})
                    .value(),
                out),
            1);
}

namespace {

/// Replaces the numeric payload of every `dt_us` / `dur_us` field — the
/// documented way to compare two ledgers of the same workload.
std::string strip_ledger_timestamps(const std::string& path) {
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::string text = buffer.str();
  for (const std::string& field : {std::string("\"dt_us\": "), std::string("\"dur_us\": ")}) {
    std::size_t pos = 0;
    while ((pos = text.find(field, pos)) != std::string::npos) {
      std::size_t digit = pos + field.size();
      std::size_t end = digit;
      while (end < text.size() && std::isdigit(static_cast<unsigned char>(text[end])) != 0) {
        ++end;
      }
      text.replace(digit, end - digit, "X");
      pos = digit;
    }
  }
  return text;
}

}  // namespace

TEST(CliRun, LedgerOptionWritesWellFormedRunLedger) {
  const std::string path = testing::TempDir() + "/tradefl_cli_ledger.jsonl";
  std::ostringstream out;
  EXPECT_EQ(run(parse({"session", "orgs=4", "seed=3", "ledger=" + path}).value(), out), 0);
  EXPECT_NE(out.str().find("run ledger"), std::string::npos);
  const std::string text = strip_ledger_timestamps(path);
  EXPECT_EQ(text.rfind("{\"dt_us\": X, \"type\": \"ledger\", \"name\": \"open\"", 0), 0u);
  EXPECT_NE(text.find("\"type\": \"phase_begin\", \"name\": \"session.run\""),
            std::string::npos);
  EXPECT_NE(text.find("\"type\": \"phase_end\", \"name\": \"session.settle\""),
            std::string::npos);
  EXPECT_NE(text.find("\"type\": \"metrics\""), std::string::npos);  // final snapshot
  EXPECT_NE(text.find("\"name\": \"close\""), std::string::npos);
  EXPECT_FALSE(obs::event_log().active());  // the CLI closes its own ledger
}

TEST(CliRun, LedgerIsByteIdenticalAcrossThreadCounts) {
  // The determinism contract from obs/event_log.h: events come from serial
  // points and metrics lines carry no timing-derived values, so only the
  // *_us fields may differ between a serial and a parallel run.
  const std::string serial = testing::TempDir() + "/tradefl_cli_ledger_t1.jsonl";
  const std::string parallel = testing::TempDir() + "/tradefl_cli_ledger_t4.jsonl";
  std::ostringstream out;
  EXPECT_EQ(run(parse({"session", "orgs=4", "seed=3", "train=1", "rounds=2", "threads=1",
                       "ledger=" + serial})
                    .value(),
                out),
            0);
  EXPECT_EQ(run(parse({"session", "orgs=4", "seed=3", "train=1", "rounds=2", "threads=4",
                       "ledger=" + parallel})
                    .value(),
                out),
            0);
  const std::string serial_text = strip_ledger_timestamps(serial);
  EXPECT_NE(serial_text.find("\"name\": \"fedavg.round\""), std::string::npos);
  EXPECT_EQ(serial_text, strip_ledger_timestamps(parallel));
}

TEST(CliRun, UnwritableLedgerFails) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"session", "orgs=4", "seed=3",
                       "ledger=/nonexistent/dir/run.jsonl"})
                    .value(),
                out),
            1);
}
#else
TEST(CliRun, MetricsCommandStillRunsWithTracingCompiledOut) {
  // With the compile gate off the solver runs normally; only the runtime
  // series recorded by append_iteration remain available.
  std::ostringstream out;
  EXPECT_EQ(run(parse({"metrics", "orgs=4", "seed=3", "scheme=cgbd"}).value(), out), 0);
  EXPECT_NE(out.str().find("solver.potential.trajectory"), std::string::npos);
}
#endif

}  // namespace
}  // namespace tradefl::cli
