// Kill-and-resume against the real `tradefl` binary: sessions are killed by
// injected crashes (exit 86, indistinguishable from SIGKILL) and by an actual
// SIGKILL, then resumed from their checkpoint directory. The resumed run's
// canonical report must be byte-identical to an uninterrupted baseline —
// at threads=1 and threads=4.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/faults.h"
#include "common/stopwatch.h"

namespace tradefl {
namespace {

#ifndef TRADEFL_CLI_PATH
#error "TRADEFL_CLI_PATH must point at the tradefl executable"
#endif

std::string temp_dir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);  // TempDir persists across runs: start clean
  std::filesystem::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << "missing " << path;
  return {std::istreambuf_iterator<char>(file), std::istreambuf_iterator<char>()};
}

/// The session under test: small but exercises every phase — DBR solve,
/// 3 rounds of FedAvg, escrow, contributions, settlement.
std::vector<std::string> session_args(const std::string& report) {
  return {"session", "scheme=dbr", "orgs=4",    "seed=3",
          "train=1", "rounds=3",   "sample_scale=0.02", "report=" + report};
}

/// Runs the CLI synchronously; returns the raw exit code.
int run_cli(const std::vector<std::string>& args, const std::string& log) {
  std::string command = std::string(TRADEFL_CLI_PATH);
  for (const std::string& arg : args) command += " " + arg;
  command += " > " + log + " 2>&1";
  const int status = std::system(command.c_str());
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -WTERMSIG(status);
}

/// Spawns the CLI detached and returns the pid (for the real-SIGKILL test).
pid_t spawn_cli(const std::vector<std::string>& args, const std::string& log) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  // Child: silence output and exec the real binary.
  if (std::freopen(log.c_str(), "w", stdout) == nullptr) std::_Exit(127);
  if (std::freopen(log.c_str(), "a", stderr) == nullptr) std::_Exit(127);
  std::vector<std::string> storage = args;
  std::vector<char*> argv;
  std::string binary = TRADEFL_CLI_PATH;
  argv.push_back(binary.data());
  for (std::string& arg : storage) argv.push_back(arg.data());
  argv.push_back(nullptr);
  execv(TRADEFL_CLI_PATH, argv.data());
  std::_Exit(127);  // exec failed
}

/// One full crash-then-resume cycle at a given thread count: baseline run,
/// crashed run (expects exit 86 at the injected point), resume run, then a
/// byte comparison of the two reports.
void crash_resume_roundtrip(const std::string& label, const std::string& crash_spec,
                            const std::string& threads) {
  const std::string dir = temp_dir(label);
  const std::string baseline_report = dir + "/baseline.txt";
  const std::string resumed_report = dir + "/resumed.txt";

  std::vector<std::string> baseline = session_args(baseline_report);
  baseline.push_back("threads=" + threads);
  ASSERT_EQ(run_cli(baseline, dir + "/baseline.log"), 0) << slurp(dir + "/baseline.log");

  std::vector<std::string> crashed = session_args(dir + "/never_written.txt");
  crashed.push_back("threads=" + threads);
  crashed.push_back("checkpoint=" + dir + "/ckpt");
  crashed.push_back("faults=" + crash_spec);
  ASSERT_EQ(run_cli(crashed, dir + "/crashed.log"), kCrashExitCode)
      << slurp(dir + "/crashed.log");
  EXPECT_FALSE(std::filesystem::exists(dir + "/never_written.txt"))
      << "a killed run must not have produced a report";

  // The crash plan belonged to the killed run; the resumed invocation runs
  // fault-free from the last durable checkpoint.
  std::vector<std::string> resumed = session_args(resumed_report);
  resumed.push_back("threads=" + threads);
  resumed.push_back("checkpoint=" + dir + "/ckpt");
  resumed.push_back("resume=1");
  ASSERT_EQ(run_cli(resumed, dir + "/resumed.log"), 0) << slurp(dir + "/resumed.log");

  EXPECT_EQ(slurp(baseline_report), slurp(resumed_report))
      << "resumed report must be byte-identical to the uninterrupted baseline";
}

TEST(KillResume, CrashDuringTrainingResumesToIdenticalReport) {
  // crash:2 fires at FedAvg round 2, right after round 1's snapshot landed.
  crash_resume_roundtrip("kill_resume_train", "crash:2", "1");
}

TEST(KillResume, CrashAfterContributionPhaseResumesToIdenticalReport) {
  // crash:4 fires right after the phase-4 (contributions) checkpoint became
  // durable: only settlement is left, and it must replay on intact escrow.
  crash_resume_roundtrip("kill_resume_contrib", "crash:4", "1");
}

TEST(KillResume, CrashResumeIsBitIdenticalUnderFourThreads) {
  crash_resume_roundtrip("kill_resume_mt", "crash:2", "4");
}

TEST(KillResume, RealSigkillMidRunResumesToIdenticalReport) {
  const std::string dir = temp_dir("kill_resume_sigkill");
  const std::string baseline_report = dir + "/baseline.txt";
  ASSERT_EQ(run_cli(session_args(baseline_report), dir + "/baseline.log"), 0)
      << slurp(dir + "/baseline.log");

  // Start a checkpointing run, wait for the first training snapshot to land,
  // then kill -9 — no warning, no cleanup.
  std::vector<std::string> victim = session_args(dir + "/victim.txt");
  victim.push_back("checkpoint=" + dir + "/ckpt");
  const pid_t pid = spawn_cli(victim, dir + "/victim.log");
  ASSERT_GT(pid, 0);
  Stopwatch watch;
  while (!std::filesystem::exists(dir + "/ckpt/fedavg.snap") &&
         watch.elapsed_seconds() < 60.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);

  // Whether the kill landed mid-run or the run had already finished, the
  // resume path must converge on the baseline bytes (idempotent restart).
  std::vector<std::string> resumed = session_args(dir + "/resumed.txt");
  resumed.push_back("checkpoint=" + dir + "/ckpt");
  resumed.push_back("resume=1");
  ASSERT_EQ(run_cli(resumed, dir + "/resumed.log"), 0) << slurp(dir + "/resumed.log");
  EXPECT_EQ(slurp(baseline_report), slurp(dir + "/resumed.txt"));
}

/// spawn_cli with the child's stdin wired to a pipe the test writes requests
/// into (for driving a real `tradefl serve` process). The write end is
/// returned via `stdin_fd`; keeping it open keeps the daemon alive — serve
/// treats EOF as "finish everything then exit".
pid_t spawn_cli_with_stdin(const std::vector<std::string>& args, const std::string& log,
                           int* stdin_fd) {
  int fds[2] = {-1, -1};
  if (pipe(fds) != 0) return -1;
  const pid_t pid = fork();
  if (pid != 0) {
    close(fds[0]);
    *stdin_fd = fds[1];
    return pid;
  }
  dup2(fds[0], 0);
  close(fds[0]);
  close(fds[1]);
  if (std::freopen(log.c_str(), "w", stdout) == nullptr) std::_Exit(127);
  if (std::freopen(log.c_str(), "a", stderr) == nullptr) std::_Exit(127);
  std::vector<std::string> storage = args;
  std::vector<char*> argv;
  std::string binary = TRADEFL_CLI_PATH;
  argv.push_back(binary.data());
  for (std::string& arg : storage) argv.push_back(arg.data());
  argv.push_back(nullptr);
  execv(TRADEFL_CLI_PATH, argv.data());
  std::_Exit(127);  // exec failed
}

TEST(KillResume, ServeSigkillMidFlightReattachesBitIdentically) {
  const std::string dir = temp_dir("kill_resume_serve");
  const std::string state = dir + "/state";
  const std::vector<std::uint64_t> seeds = {31, 32, 33};

  // Uninterrupted solo baselines for the exact workload the daemon will run.
  for (const std::uint64_t seed : seeds) {
    const std::string report = dir + "/base_" + std::to_string(seed) + ".txt";
    const std::vector<std::string> args = {
        "session", "scheme=dbr", "orgs=4", "seed=" + std::to_string(seed),
        "train=1", "rounds=3",   "sample_scale=0.02", "report=" + report};
    ASSERT_EQ(run_cli(args, dir + "/base_" + std::to_string(seed) + ".log"), 0)
        << slurp(dir + "/base_" + std::to_string(seed) + ".log");
  }

  // Boot the real daemon and push three training sessions at it. The pipe's
  // write end stays open, so the daemon is mid-service, not winding down.
  int stdin_fd = -1;
  const pid_t pid = spawn_cli_with_stdin({"serve", "root=" + state, "workers=3"},
                                         dir + "/serve.log", &stdin_fd);
  ASSERT_GT(pid, 0);
  std::string requests;
  for (const std::uint64_t seed : seeds) {
    requests += "{\"op\": \"session\", \"scheme\": \"dbr\", \"orgs\": 4, \"seed\": " +
                std::to_string(seed) +
                ", \"train\": true, \"rounds\": 3, \"sample_scale\": 0.02}\n";
  }
  ASSERT_EQ(write(stdin_fd, requests.data(), requests.size()),
            static_cast<ssize_t>(requests.size()));

  // Wait until all three sessions have a durable training snapshot — three
  // concurrent sessions genuinely in flight — then kill -9 the daemon.
  Stopwatch watch;
  const auto all_in_flight = [&] {
    for (std::size_t id = 1; id <= seeds.size(); ++id) {
      if (!std::filesystem::exists(state + "/sessions/" + std::to_string(id) +
                                   "/fedavg.snap")) {
        return false;
      }
    }
    return true;
  };
  while (!all_in_flight() && watch.elapsed_seconds() < 60.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(all_in_flight()) << slurp(dir + "/serve.log");
  kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  close(stdin_fd);

  // Restart over the same state root with no new input: the registry must
  // re-attach every pending session and finish it from its checkpoints.
  const int resumed = run_cli({"serve", "root=" + state, "workers=3", "< /dev/null"},
                              dir + "/resume.log");
  ASSERT_EQ(resumed, 0) << slurp(dir + "/resume.log");
  const std::string resume_log = slurp(dir + "/resume.log");
  EXPECT_EQ(resume_log.find("\"op\": \"failed\""), std::string::npos) << resume_log;

  // Whether the kill caught a session mid-round or already done, every report
  // must land on the uninterrupted baseline's bytes.
  for (std::size_t id = 1; id <= seeds.size(); ++id) {
    const std::string served =
        state + "/sessions/" + std::to_string(id) + "/report.txt";
    const std::string baseline = dir + "/base_" + std::to_string(seeds[id - 1]) + ".txt";
    EXPECT_EQ(slurp(baseline), slurp(served))
        << "session " << id << " diverged after SIGKILL + re-attach";
  }
}

TEST(KillResume, ResumeAfterCleanCompletionIsIdempotent) {
  const std::string dir = temp_dir("kill_resume_idempotent");
  std::vector<std::string> first = session_args(dir + "/first.txt");
  first.push_back("checkpoint=" + dir + "/ckpt");
  ASSERT_EQ(run_cli(first, dir + "/first.log"), 0) << slurp(dir + "/first.log");

  std::vector<std::string> second = session_args(dir + "/second.txt");
  second.push_back("checkpoint=" + dir + "/ckpt");
  second.push_back("resume=1");
  ASSERT_EQ(run_cli(second, dir + "/second.log"), 0) << slurp(dir + "/second.log");
  EXPECT_EQ(slurp(dir + "/first.txt"), slurp(dir + "/second.txt"));
}

TEST(KillResume, CorruptSessionSnapshotFailsClosedNotSilentRestart) {
  const std::string dir = temp_dir("kill_resume_corrupt");
  std::vector<std::string> first = session_args(dir + "/first.txt");
  first.push_back("checkpoint=" + dir + "/ckpt");
  ASSERT_EQ(run_cli(first, dir + "/first.log"), 0) << slurp(dir + "/first.log");

  {  // flip a byte mid-snapshot
    const std::string snap = dir + "/ckpt/session.snap";
    std::fstream file(snap, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good()) << snap;
    file.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(file.tellg());
    char byte = 0;
    file.seekg(size / 2);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(size / 2);
    file.write(&byte, 1);
  }

  std::vector<std::string> resumed = session_args(dir + "/resumed.txt");
  resumed.push_back("checkpoint=" + dir + "/ckpt");
  resumed.push_back("resume=1");
  EXPECT_EQ(run_cli(resumed, dir + "/resumed.log"), 1);
  const std::string log = slurp(dir + "/resumed.log");
  EXPECT_NE(log.find("failed closed"), std::string::npos) << log;
  EXPECT_FALSE(std::filesystem::exists(dir + "/resumed.txt"))
      << "a failed-closed resume must not emit a report";
}

}  // namespace
}  // namespace tradefl
