// Byzantine acceptance suite: under each adversarial attack at rate f < n/2
// the robust aggregation rules (median / trimmed / krum) must stay within 2%
// of their own attack-free accuracy, while the paper's plain weighted mean
// measurably degrades. Also pins the strategic-deviation audit and the
// checkpoint/resume-mid-attack byte-identity contract.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/faults.h"
#include "common/parallel.h"
#include "fl/fedavg.h"
#include "game/game_factory.h"
#include "tradefl/report.h"
#include "tradefl/session.h"

namespace tradefl {
namespace {

using fl::AggregatorSpec;
using fl::FedAvgOptions;
using fl::FedAvgResult;
using fl::FedClient;

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// Restores the serial global pool even when an assertion fails mid-test.
struct ThreadsRestorer {
  ~ThreadsRestorer() { set_global_threads(1); }
};

/// Seven-silo FMNIST-like workload (the Table-II population shape scaled for
/// test speed): two Byzantine silos keeps the attack rate at 2/7 < n/2, and
/// the honest majority is dense enough that one adversarial value shifts the
/// coordinate median by only half an order statistic.
struct Workload {
  fl::DatasetSpec concept_spec = fl::DatasetSpec::builtin(fl::DatasetKind::kFmnistLike, 5);
  std::vector<fl::Dataset> locals;
  fl::Dataset test_set;
  fl::ModelSpec model;

  Workload() : test_set(concept_spec.with_sample_seed(999), 200) {
    for (std::size_t i = 0; i < 7; ++i) {
      locals.emplace_back(concept_spec.with_sample_seed(10 + i), 120);
    }
    model.kind = fl::ModelKind::kMlp;
    model.channels = concept_spec.channels;
    model.height = concept_spec.height;
    model.width = concept_spec.width;
    model.classes = concept_spec.classes;
    model.seed = 3;
  }

  std::vector<FedClient> clients() {
    std::vector<FedClient> out;
    for (std::size_t i = 0; i < locals.size(); ++i) {
      out.push_back(FedClient{&locals[i], 1.0, 100 + i});
    }
    return out;
  }
};

FedAvgResult run_workload(Workload& workload, const AggregatorSpec& aggregator,
                          const FaultInjector* faults) {
  FedAvgOptions options;
  // Long enough for the robust rules to absorb their per-round slowdown under
  // attack; the containment bounds below are tight at this horizon.
  options.rounds = 10;
  options.local_epochs = 3;
  options.batch_size = 32;
  options.max_batches_per_epoch = 8;
  options.aggregator = aggregator;
  options.faults = faults;
  return fl::train_fedavg(workload.model, workload.clients(), workload.test_set, options);
}

FaultPlan attack_plan(const std::string& kind, std::uint64_t silos = 2) {
  FaultPlan plan;
  plan.seed = 11;
  if (kind == "signflip") plan.signflip_silos = silos;
  if (kind == "amplify") plan.scale_silos = silos;
  if (kind == "freeride") plan.freeride_silos = silos;
  if (kind == "collude") plan.collude_silos = silos;
  return plan;
}

TEST(Byzantine, RobustRulesHoldAccuracyWhileMeanDegrades) {
  Workload workload;
  // Krum runs at its theory-valid f=1 against a single attacker (Blanchard
  // et al. require n > 2f + 2, and a pair of *identical* Byzantine
  // submissions defeats a larger f outright — each duplicate's nearest
  // neighbour sits at distance zero).
  // Free-riding is a passivity attack, not a corruption attack — no outlier
  // rule can restore the missing gradient — so it is pinned separately in
  // FreeRidingDilutesButNeverCorrupts.
  const std::vector<std::string> rules = {"mean", "median", "trimmed:1", "krum:1"};
  const std::vector<std::string> attacks = {"signflip", "amplify", "collude"};

  std::map<std::string, double> baseline;
  for (const std::string& rule : rules) {
    const AggregatorSpec spec = fl::parse_aggregator(rule).value();
    baseline[rule] = run_workload(workload, spec, nullptr).final_accuracy;
    // Chance is 0.1. Krum forwards a single client's update per round rather
    // than averaging, so its attack-free convergence trails the mean-family
    // rules on a short run — its bar is lower.
    EXPECT_GT(baseline[rule], rule == "krum:1" ? 0.2 : 0.25) << rule;
  }

  for (const std::string& attack : attacks) {
    for (const std::string& rule : rules) {
      // The mean faces the full 2/7 Byzantine rate; the robust rules are
      // pinned at 1/7 (still f < n/2), where the honest majority is dense
      // enough for the 2% bound to hold at this horizon. At higher rates the
      // coordinate median shifts whole order statistics toward the small
      // honest steps — slowed, not corrupted.
      const std::uint64_t silos = (rule == "mean") ? 2 : 1;
      FaultPlan plan = attack_plan(attack, silos);
      // An 8x delta merely acts as a larger learning rate on an undertrained
      // model (it can even help the mean); destabilizing the average takes a
      // genuinely divergent factor.
      if (attack == "amplify") plan.scale_factor = 1000.0;
      const FaultInjector injector(plan);
      const AggregatorSpec spec = fl::parse_aggregator(rule).value();
      const FedAvgResult attacked = run_workload(workload, spec, &injector);
      EXPECT_EQ(attacked.total_attacked, silos * attacked.history.size())
          << attack << "/" << rule;
      if (rule == "mean") {
        // Eq. (3) has no defense: the corruption attacks visibly hurt.
        EXPECT_LT(attacked.final_accuracy, baseline[rule] - 0.02) << attack;
      } else {
        // The robust rules contain the attack: within 2% of their own
        // attack-free accuracy — except signflip vs the coordinate-wise
        // rules. A flipped small local step is a per-coordinate *inlier*
        // (it hides inside honest SGD noise), so median/trimmed absorb a
        // persistent few-percent drag; only Krum's full-vector L2 test
        // rejects it outright. The wider bound is itself a pin: beyond 9%
        // would mean the rule stopped containing the attack at all.
        const bool coordinate_rule = rule == "median" || rule == "trimmed:1";
        const double bound = (attack == "signflip" && coordinate_rule) ? 0.09 : 0.02;
        EXPECT_GE(attacked.final_accuracy, baseline[rule] - bound) << attack << "/" << rule;
      }
    }
  }
}

TEST(Byzantine, FreeRidingDilutesButNeverCorrupts) {
  Workload workload;
  // A freerider resubmits the global model verbatim — an inlier by
  // construction. No aggregation rule can conjure the missing gradient, so
  // the honest claims are: the model is never corrupted (stays finite, never
  // below chance), free-riding never *helps*, and Krum exhibits its
  // documented failure — the freerider looks maximally consistent, gets
  // selected, and stalls training. Detection and pricing of free-riders is
  // the deviation audit's job (SessionAuditPricesTheDeviation), not the
  // outlier rules'.
  const FaultInjector two_freeriders(attack_plan("freeride", 2));
  const FaultInjector one_freerider(attack_plan("freeride", 1));

  for (const std::string& rule : {std::string("mean"), std::string("median"),
                                  std::string("trimmed:2")}) {
    const AggregatorSpec spec = fl::parse_aggregator(rule).value();
    const double clean = run_workload(workload, spec, nullptr).final_accuracy;
    const FedAvgResult attacked = run_workload(workload, spec, &two_freeriders);
    EXPECT_EQ(attacked.total_attacked, 2u * attacked.history.size()) << rule;
    EXPECT_LE(attacked.final_accuracy, clean + 0.02) << rule;  // never helps
    EXPECT_GE(attacked.final_accuracy, 0.08) << rule;          // never corrupts
    for (float w : attacked.final_weights) ASSERT_TRUE(std::isfinite(w));
  }

  // Krum's stall: the freerider's update is the current global, the centre of
  // the honest cloud, so Krum keeps selecting it and the model never moves.
  const FedAvgResult krum =
      run_workload(workload, fl::parse_aggregator("krum:1").value(), &one_freerider);
  EXPECT_GT(krum.client_influence[0], 0.0);
}

TEST(Byzantine, RobustAggregationContainsAttackerInfluence) {
  Workload workload;
  FaultPlan plan;
  plan.seed = 11;
  plan.scale_silos = 1;  // silo 0 amplifies its delta 8x — an isolated outlier
  const FaultInjector injector(plan);

  const FedAvgResult mean =
      run_workload(workload, fl::parse_aggregator("mean").value(), &injector);
  const FedAvgResult krum =
      run_workload(workload, fl::parse_aggregator("krum:1").value(), &injector);

  ASSERT_EQ(mean.client_influence.size(), 7u);
  ASSERT_EQ(krum.client_influence.size(), 7u);
  // Under the plain mean the amplifier keeps its full 1/7 weight share; Krum
  // scores it against the 6-strong honest cluster and rejects it every round.
  EXPECT_NEAR(mean.client_influence[0], 1.0 / 7.0, 1e-9);
  EXPECT_EQ(krum.client_influence[0], 0.0);
  EXPECT_GT(krum.total_rejected, 0u);
  EXPECT_EQ(krum.client_rejected[0], krum.history.size());
  double attacker_influence = 0.0;
  for (const fl::RoundMetrics& round : krum.history) {
    attacker_influence += round.attacker_influence;
  }
  EXPECT_EQ(attacker_influence, 0.0);
}

TEST(Byzantine, CheckpointResumeMidAttackIsBitIdentical) {
  Workload workload;
  const FaultPlan plan = attack_plan("signflip");
  const FaultInjector injector(plan);
  const AggregatorSpec spec = fl::parse_aggregator("trimmed:2").value();

  FedAvgOptions options;
  options.rounds = 5;
  options.local_epochs = 2;
  options.batch_size = 32;
  options.max_batches_per_epoch = 4;
  options.aggregator = spec;
  options.faults = &injector;
  const FedAvgResult baseline =
      fl::train_fedavg(workload.model, workload.clients(), workload.test_set, options);

  // Interrupt after round 2 of 5, mid-attack, then resume under four threads.
  ThreadsRestorer restore;
  set_global_threads(4);
  const std::string path = temp_path("byzantine_split.snap");
  FedAvgOptions first = options;
  first.rounds = 2;
  first.checkpoint_path = path;
  (void)fl::train_fedavg(workload.model, workload.clients(), workload.test_set, first);
  FedAvgOptions second = options;
  second.checkpoint_path = path;
  second.resume = true;
  const FedAvgResult resumed =
      fl::train_fedavg(workload.model, workload.clients(), workload.test_set, second);

  EXPECT_EQ(baseline.final_weights, resumed.final_weights);  // exact bytes
  EXPECT_EQ(baseline.final_accuracy, resumed.final_accuracy);
  EXPECT_EQ(baseline.total_attacked, resumed.total_attacked);
  EXPECT_EQ(baseline.total_rejected, resumed.total_rejected);
  EXPECT_EQ(baseline.client_influence, resumed.client_influence);
  EXPECT_EQ(baseline.client_rejected, resumed.client_rejected);
}

TEST(Byzantine, ResumeUnderDifferentAggregatorFailsClosed) {
  Workload workload;
  const std::string path = temp_path("byzantine_agg_mismatch.snap");
  FedAvgOptions options;
  options.rounds = 2;
  options.local_epochs = 1;
  options.max_batches_per_epoch = 2;
  options.checkpoint_path = path;
  options.aggregator = fl::parse_aggregator("trimmed:2").value();
  (void)fl::train_fedavg(workload.model, workload.clients(), workload.test_set, options);

  options.rounds = 4;
  options.resume = true;
  options.aggregator = fl::parse_aggregator("krum:2").value();
  EXPECT_THROW((void)fl::train_fedavg(workload.model, workload.clients(), workload.test_set,
                                      options),
               std::runtime_error);
}

TEST(Byzantine, SessionAuditPricesTheDeviation) {
  const auto game = game::make_toy_game();
  SessionOptions options;
  options.run_training = true;
  options.sample_scale = 0.12;
  options.fedavg.rounds = 2;
  options.fedavg.aggregator = fl::parse_aggregator("median").value();
  options.faults.seed = 4;
  options.faults.freeride_silos = 1;

  TradingSession session(game);
  const SessionResult result = session.run(options);
  ASSERT_TRUE(result.training.has_value());
  ASSERT_TRUE(result.deviation.has_value());
  const core::DeviationAudit& audit = *result.deviation;

  EXPECT_TRUE(audit.attacked);
  EXPECT_EQ(audit.attacked_updates, result.training->total_attacked);
  ASSERT_EQ(audit.silos.size(), 1u);
  EXPECT_EQ(audit.silos[0].silo, 0u);
  EXPECT_EQ(audit.silos[0].attack, "freeride");
  // The free-rider pockets its entire energy bill: its empirical payoff must
  // beat truthful play by at least the refunded energy, minus whatever the
  // accuracy drop cost it in repriced revenue.
  const auto breakdown =
      game.payoff_breakdown(0, result.mechanism.solution.profile);
  EXPECT_GT(audit.silos[0].payoff_gain,
            breakdown.energy_cost - std::abs(breakdown.revenue - breakdown.damage));
  // BB is structural — attacks forge gradients, not declared contributions.
  EXPECT_TRUE(audit.bb_empirical);
  EXPECT_TRUE(audit.ce_empirical);
  // The audit surfaces in both report flavors.
  EXPECT_NE(describe_session(game, result).find("deviation audit"), std::string::npos);
  const std::string canonical = canonical_session_report(game, result);
  EXPECT_NE(canonical.find("empirical properties"), std::string::npos);
  EXPECT_NE(canonical.find("freeride"), std::string::npos);
}

TEST(Byzantine, SessionResumeCarriesTheAuditBitIdentically) {
  const auto game = game::make_toy_game();
  SessionOptions options;
  options.run_training = true;
  options.sample_scale = 0.12;
  options.fedavg.rounds = 2;
  options.fedavg.aggregator = fl::parse_aggregator("trimmed:1").value();
  options.faults.seed = 6;
  options.faults.signflip_silos = 1;

  TradingSession uninterrupted(game);
  const SessionResult baseline = uninterrupted.run(options);
  ASSERT_TRUE(baseline.deviation.has_value());

  // Crash right after the training phase became durable, then resume: the
  // audit must come back from the checkpoint byte-identically.
  SessionOptions crashing = options;
  crashing.checkpoint_dir = temp_path("byzantine_session_ckpt");
  FaultEvent crash;
  crash.kind = FaultKind::kProcessCrash;
  crash.round = 2;  // phase 2 = training
  crashing.faults.events.push_back(crash);
  TradingSession killed(game);
  {
    CrashContainmentScope contain;  // turn the _Exit into a thrown InjectedCrash
    EXPECT_THROW((void)killed.run(crashing), InjectedCrash);
  }

  SessionOptions resuming = options;
  resuming.checkpoint_dir = crashing.checkpoint_dir;
  resuming.resume = true;
  TradingSession resumed_session(game);
  const SessionResult resumed = resumed_session.run(resuming);

  ASSERT_TRUE(resumed.deviation.has_value());
  EXPECT_EQ(canonical_session_report(game, baseline), canonical_session_report(game, resumed));
}

TEST(Byzantine, SessionResumeUnderDifferentAggregatorFailsClosed) {
  const auto game = game::make_toy_game();
  SessionOptions options;
  options.run_training = true;
  options.sample_scale = 0.12;
  options.fedavg.rounds = 2;
  options.fedavg.aggregator = fl::parse_aggregator("median").value();
  options.checkpoint_dir = temp_path("byzantine_session_agg");

  TradingSession session(game);
  (void)session.run(options);

  options.resume = true;
  options.fedavg.aggregator = fl::parse_aggregator("mean").value();
  TradingSession mismatched(game);
  EXPECT_THROW((void)mismatched.run(options), std::runtime_error);
}

}  // namespace
}  // namespace tradefl
