// Cross-layer invariants exercised end to end: the empirical accuracy model
// from real FL measurements driving the game; welfare orderings across
// schemes surviving the full pipeline; tamper detection after settlement.
#include <gtest/gtest.h>

#include "fl/data_accuracy.h"
#include "game/game_factory.h"
#include "game/potential.h"
#include "tradefl/session.h"

namespace tradefl {
namespace {

TEST(EndToEnd, EmpiricalAccuracyModelDrivesTheGame) {
  // Measure a real accuracy curve with the FL substrate, fit it, and solve
  // the coopetition game on top of the fitted model (the "no specific
  // functional form" claim, Sec. III-C).
  fl::DataAccuracyOptions options;
  options.org_count = 3;
  options.samples_per_org = 120;
  options.test_samples = 200;
  options.d_grid = {0.2, 0.6, 1.0};
  options.fedavg.rounds = 4;
  const auto curve =
      fl::measure_data_accuracy(fl::ModelKind::kMlp, fl::DatasetKind::kFmnistLike, options);

  auto base = game::make_toy_game();
  // Rescale: the empirical curve is in units of samples; map the game's
  // Ω (GB units, ~0-60 for the toy game) onto the sample range.
  game::GameParams params = base.params();
  params.a0 = 0.9;
  params.data_scale = 1e9;
  const auto model = fl::empirical_accuracy_model(curve, params.a0);
  game::CoopetitionGame game(base.orgs(), base.rho(), model, params);

  const auto solution = core::run_dbr(game);
  EXPECT_TRUE(solution.converged);
  EXPECT_TRUE(game.is_feasible(solution.profile));
  EXPECT_LE(game.max_unilateral_gain(solution.profile), 1e-3);
  // The exact-potential identity holds for ANY Eq.(5) model, including the
  // fitted one.
  const auto check =
      game::check_weighted_potential_identity(game, solution.profile, 200, 5);
  EXPECT_LT(check.max_rel_error, 1e-8);
}

TEST(EndToEnd, SchemeOrderingSurvivesFullPipeline) {
  const auto game = game::make_default_game(42);
  double welfare_dbr = 0.0, welfare_wpr = 0.0, welfare_gca = 0.0;
  for (auto [scheme, out] :
       {std::pair{core::Scheme::kDbr, &welfare_dbr},
        std::pair{core::Scheme::kWpr, &welfare_wpr},
        std::pair{core::Scheme::kGca, &welfare_gca}}) {
    TradingSession session(game);
    SessionOptions options;
    options.scheme = scheme;
    const SessionResult result = session.run(options);
    EXPECT_TRUE(result.chain_valid);
    EXPECT_EQ(result.settlement_sum, 0);
    *out = result.mechanism.welfare;
  }
  EXPECT_GT(welfare_dbr, welfare_wpr);
  EXPECT_GT(welfare_dbr, welfare_gca);
}

TEST(EndToEnd, TamperingAfterSettlementIsDetected) {
  const auto game = game::make_toy_game();
  TradingSession session(game);
  const SessionResult result = session.run();
  ASSERT_TRUE(result.chain_valid);
  chain::Blockchain& chain = session.blockchain();
  // A malicious org rewrites its recorded contribution in a sealed block.
  for (std::size_t b = 1; b < chain.block_count(); ++b) {
    if (!chain.block(b).transactions.empty()) {
      chain.mutable_block_for_test(b).transactions[0].data.push_back(0xFF);
      break;
    }
  }
  EXPECT_FALSE(chain.validate().valid);
}

TEST(EndToEnd, GammaSweepKeepsInvariantsAcrossLayers) {
  for (double gamma : {1e-9, 5.12e-9, 5e-8}) {
    game::ExperimentSpec spec;
    spec.org_count = 6;
    spec.params.gamma = gamma;
    const auto game = game::make_experiment_game(spec, 11);
    TradingSession session(game);
    const SessionResult result = session.run();
    EXPECT_TRUE(result.properties.individual_rationality) << "gamma " << gamma;
    EXPECT_TRUE(result.properties.budget_balance) << "gamma " << gamma;
    EXPECT_EQ(result.settlement_sum, 0) << "gamma " << gamma;
    EXPECT_TRUE(result.chain_valid) << "gamma " << gamma;
  }
}

TEST(EndToEnd, DamageDecreasesWithGammaUnderDbr) {
  // Fig. 9's qualitative claim, end to end.
  double damage_low = 0.0, damage_high = 0.0;
  {
    game::ExperimentSpec spec;
    spec.params.gamma = 1e-9;
    damage_low = core::run_scheme(game::make_experiment_game(spec, 42),
                                  core::Scheme::kDbr)
                     .total_damage;
  }
  {
    game::ExperimentSpec spec;
    spec.params.gamma = 5e-8;
    damage_high = core::run_scheme(game::make_experiment_game(spec, 42),
                                   core::Scheme::kDbr)
                      .total_damage;
  }
  EXPECT_LT(damage_high, damage_low);
}

}  // namespace
}  // namespace tradefl
