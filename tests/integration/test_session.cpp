// End-to-end TradingSession (Fig. 3): equilibrium -> contributions ->
// on-chain settlement, with cross-checks between layers.
#include "tradefl/session.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "game/game_factory.h"
#include "tradefl/report.h"

namespace tradefl {
namespace {

TEST(Session, FullRunOnDefaultGame) {
  const auto game = game::make_default_game(42);
  TradingSession session(game);
  const SessionResult result = session.run();

  EXPECT_TRUE(result.mechanism.solution.converged);
  EXPECT_TRUE(result.properties.individual_rationality);
  EXPECT_TRUE(result.properties.budget_balance);
  EXPECT_TRUE(result.properties.nash_equilibrium);
  EXPECT_TRUE(result.chain_valid);
  EXPECT_EQ(result.settlement_sum, 0);            // exact on-chain budget balance
  EXPECT_LT(result.max_settlement_gap, 1e-6);     // fixed point matches doubles
  EXPECT_EQ(result.settlements_wei.size(), game.size());
  EXPECT_GT(result.total_gas, 0u);
  EXPECT_GT(result.blocks, game.size());          // register+deposit+... per org
  EXPECT_GT(result.events, 0u);
}

TEST(Session, CgbdSchemeSettlesToo) {
  game::ExperimentSpec spec;
  spec.org_count = 5;  // keep the master traversal small
  const auto game = game::make_experiment_game(spec, 7);
  TradingSession session(game);
  SessionOptions options;
  options.scheme = core::Scheme::kCgbd;
  const SessionResult result = session.run(options);
  EXPECT_TRUE(result.chain_valid);
  EXPECT_EQ(result.settlement_sum, 0);
  EXPECT_TRUE(result.properties.nash_equilibrium);
}

TEST(Session, OnChainSettlementMatchesGameRedistribution) {
  const auto game = game::make_default_game(42);
  TradingSession session(game);
  const SessionResult result = session.run();
  for (game::OrgId i = 0; i < game.size(); ++i) {
    const double off_chain =
        game.redistribution(i, result.mechanism.solution.profile);
    const double on_chain = static_cast<double>(result.settlements_wei[i]) / 1e9;
    EXPECT_NEAR(on_chain, off_chain, 1e-6) << "org " << i;
  }
}

TEST(Session, TrainingProducesModelMetrics) {
  const auto game = game::make_toy_game();
  TradingSession session(game);
  SessionOptions options;
  options.run_training = true;
  options.sample_scale = 0.12;  // keep the test quick
  options.fedavg.rounds = 3;
  const SessionResult result = session.run(options);
  ASSERT_TRUE(result.training.has_value());
  EXPECT_EQ(result.training->history.size(), 3u);
  EXPECT_GT(result.training->total_contributed_samples, 0u);
  EXPECT_GE(result.training->final_accuracy, 0.0);
}

TEST(Session, ChainAccessibleAfterRun) {
  const auto game = game::make_toy_game();
  TradingSession session(game);
  EXPECT_THROW(static_cast<void>(session.blockchain()), std::runtime_error);  // not run yet
  session.run();
  chain::Blockchain& chain = session.blockchain();
  EXPECT_TRUE(chain.validate().valid);
  // The recorded events include the full Fig. 3 lifecycle.
  bool registered = false, deposited = false, contributed = false, transferred = false;
  for (const chain::Event& event : chain.events()) {
    if (event.name == "Registered") registered = true;
    if (event.name == "DepositSubmitted") deposited = true;
    if (event.name == "ContributionSubmitted") contributed = true;
    if (event.name == "PayoffTransferred") transferred = true;
  }
  EXPECT_TRUE(registered);
  EXPECT_TRUE(deposited);
  EXPECT_TRUE(contributed);
  EXPECT_TRUE(transferred);
}

TEST(Session, ReportsAreHumanReadable) {
  const auto game = game::make_toy_game();
  TradingSession session(game);
  const SessionResult result = session.run();
  const std::string mechanism_text = describe_mechanism(game, result.mechanism);
  EXPECT_NE(mechanism_text.find("welfare"), std::string::npos);
  EXPECT_NE(mechanism_text.find("alpha"), std::string::npos);
  const std::string session_text = describe_session(game, result);
  EXPECT_NE(session_text.find("budget balance"), std::string::npos);
  EXPECT_NE(session_text.find("VALID"), std::string::npos);
}

TEST(Session, ExplicitFundingRespected) {
  const auto game = game::make_toy_game();
  TradingSession session(game);
  SessionOptions options;
  options.funding = 1;  // far below any sane deposit
  EXPECT_THROW(session.run(options), std::invalid_argument);
}

TEST(Session, CanonicalReportIsDeterministicAcrossRuns) {
  // The canonical report drops wall-clock timing, the one nondeterministic
  // field — two independent runs of the same session must agree byte-for-byte.
  const auto game = game::make_toy_game();
  SessionOptions options;
  options.run_training = true;
  options.sample_scale = 0.12;
  options.fedavg.rounds = 2;
  TradingSession first(game);
  TradingSession second(game);
  EXPECT_EQ(canonical_session_report(game, first.run(options)),
            canonical_session_report(game, second.run(options)));
}

TEST(Session, CheckpointedResumeReturnsStoredResult) {
  // A session resumed after its final phase checkpoint re-runs nothing and
  // reports exactly what the completed run reported.
  const auto game = game::make_toy_game();
  const std::string dir = std::string(::testing::TempDir()) + "/session_idempotent";
  SessionOptions options;
  options.checkpoint_dir = dir;
  TradingSession first(game);
  const std::string completed = canonical_session_report(game, first.run(options));

  options.resume = true;
  TradingSession second(game);
  EXPECT_EQ(completed, canonical_session_report(game, second.run(options)));
}

TEST(Session, CorruptSessionSnapshotFailsClosed) {
  const auto game = game::make_toy_game();
  const std::string dir = std::string(::testing::TempDir()) + "/session_corrupt";
  SessionOptions options;
  options.checkpoint_dir = dir;
  TradingSession first(game);
  (void)first.run(options);

  {  // flip one byte mid-snapshot
    const std::string snap = dir + "/session.snap";
    std::fstream file(snap, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good()) << snap;
    file.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(file.tellg());
    char byte = 0;
    file.seekg(size / 2);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(size / 2);
    file.write(&byte, 1);
  }

  options.resume = true;
  TradingSession second(game);
  try {
    (void)second.run(options);
    FAIL() << "corrupt session snapshot must not resume";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("failed closed"), std::string::npos)
        << error.what();
  }
}

TEST(Session, WriteReportToUnwritablePathIsTypedError) {
  const auto game = game::make_toy_game();
  TradingSession session(game);
  const SessionResult result = session.run();
  const Status written =
      write_session_report("/nonexistent-dir/report.txt", game, result);
  ASSERT_FALSE(written.ok());
  EXPECT_EQ(written.error().code, "io");

  const std::string good = std::string(::testing::TempDir()) + "/session_report.txt";
  ASSERT_TRUE(write_session_report(good, game, result).ok());
  std::ifstream file(good);
  const std::string bytes{std::istreambuf_iterator<char>(file),
                          std::istreambuf_iterator<char>()};
  EXPECT_EQ(bytes, canonical_session_report(game, result));
}

}  // namespace
}  // namespace tradefl
