// In-process smoke tests for the deterministic load generator behind
// bench/bench_load.cpp: report shapes, phase percentiles, and the manifest
// JSON the CI perf gate diffs.
#include "tradefl/loadgen.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "obs/obs.h"

namespace tradefl::loadgen {
namespace {

[[maybe_unused]] bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

LoadOptions tiny() {
  LoadOptions options;
  options.sessions = 2;
  options.orgs = 3;
  options.transfers = 192;
  options.accounts = 4;
  options.seal_every = 64;
  options.repeats = 1;
  return options;
}

/// The load generator reads the global metrics registry; run it observed and
/// leave the process state clean.
class LoadgenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::metrics().reset();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::metrics().reset();
  }
};

TEST_F(LoadgenTest, SessionLoadReportsThroughputAndLatencyPhases) {
  const LoadReport report = run_session_load(tiny());
  EXPECT_EQ(report.name, "session");
  EXPECT_EQ(report.operations, 2u);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.ops_per_sec, 0.0);
#if TRADEFL_ENABLE_TRACING
  ASSERT_FALSE(report.phases.empty());
  bool saw_session_latency = false;
  for (const PhaseStats& phase : report.phases) {
    EXPECT_TRUE(ends_with(phase.name, ".seconds")) << phase.name;
    EXPECT_GT(phase.count, 0u) << phase.name;
    EXPECT_LE(phase.p50, phase.p90) << phase.name;
    EXPECT_LE(phase.p90, phase.p99) << phase.name;
    EXPECT_LE(phase.p99, phase.max) << phase.name;
    if (phase.name == "session.latency.seconds") {
      saw_session_latency = true;
      EXPECT_EQ(phase.count, report.operations);  // one observation per session
    }
  }
  EXPECT_TRUE(saw_session_latency);
#else
  // With the obs gate compiled out the latency timers fold away entirely:
  // throughput still reports, but there are no phase histograms to collect.
  EXPECT_TRUE(report.phases.empty());
#endif
}

TEST_F(LoadgenTest, ChainLoadCountsEveryTransfer) {
  const LoadReport report = run_chain_load(tiny());
  EXPECT_EQ(report.name, "chain");
  EXPECT_EQ(report.operations, 192u);
#if TRADEFL_ENABLE_TRACING
  // Three latency phases: the three submissions that crossed the seal_every=64
  // threshold (192 / 64) and paid a block seal, the 189 pure transfers, and
  // the final full-chain validation.
  ASSERT_EQ(report.phases.size(), 3u);
  EXPECT_EQ(report.phases[0].name, "chain.seal.seconds");
  EXPECT_EQ(report.phases[0].count, 3u);
  EXPECT_EQ(report.phases[1].name, "chain.transfer.seconds");
  EXPECT_EQ(report.phases[1].count, 189u);
  EXPECT_EQ(report.phases[2].name, "chain.validate.seconds");
  EXPECT_EQ(report.phases[2].count, 1u);
#else
  EXPECT_TRUE(report.phases.empty());
#endif
}

TEST_F(LoadgenTest, ChainLoadRejectsDegenerateAccountCount) {
  LoadOptions options = tiny();
  options.accounts = 1;
  EXPECT_THROW(run_chain_load(options), std::invalid_argument);
}

TEST_F(LoadgenTest, ManifestJsonCarriesConfigAndMetrics) {
  const LoadOptions options = tiny();
  const LoadReport session_report = run_session_load(options);
  const std::string manifest = manifest_json(session_report, options);
  EXPECT_EQ(manifest.rfind("{\"bench\": \"bench_load.session\", \"schema\": 1, ", 0), 0u);
  EXPECT_NE(manifest.find("\"sessions\": 2"), std::string::npos);
  EXPECT_NE(manifest.find("\"repeats\": 1"), std::string::npos);
  EXPECT_NE(manifest.find("\"seal_every\": 64"), std::string::npos);
  EXPECT_NE(manifest.find("\"sessions_per_sec\": "), std::string::npos);
  EXPECT_NE(manifest.find("\"operations\": 2"), std::string::npos);
#if TRADEFL_ENABLE_TRACING
  EXPECT_NE(manifest.find("\"session.latency.seconds\": {\"count\": 2, \"p50\": "),
            std::string::npos);
#endif

  const LoadReport chain_report = run_chain_load(options);
  const std::string combined = combined_manifest_json(session_report, chain_report, options);
  EXPECT_EQ(combined.rfind("{\"bench\": \"bench_load\", \"schema\": 1, ", 0), 0u);
  EXPECT_NE(combined.find("\"metrics\": {\"session\": {"), std::string::npos);
  EXPECT_NE(combined.find(", \"chain\": {\"tx_per_sec\": "), std::string::npos);
}

TEST_F(LoadgenTest, FastPresetShrinksEveryDimension) {
  const LoadOptions full;
  const LoadOptions fast = full.fast();
  EXPECT_LT(fast.sessions, full.sessions);
  EXPECT_LT(fast.orgs, full.orgs);
  EXPECT_LT(fast.transfers, full.transfers);
  EXPECT_LT(fast.accounts, full.accounts);
  EXPECT_EQ(fast.seed, full.seed);
  EXPECT_EQ(fast.repeats, full.repeats);
}

}  // namespace
}  // namespace tradefl::loadgen
