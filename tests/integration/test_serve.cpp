// In-process tests of the serve daemon (src/tradefl/server.{h,cpp}) and its
// wire protocol: admission + completion byte-identical to a solo run, bounded
// load shedding, watchdog eviction, drain parking, restart re-attach, crash
// containment, and fail-closed registry handling. Every test drives a real
// Server through a LineSource and parses the reply lines back through the
// wire codec — exactly what a remote client sees.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/faults.h"
#include "tradefl/cli.h"
#include "tradefl/report.h"
#include "tradefl/server.h"
#include "tradefl/session.h"
#include "tradefl/wire.h"

namespace tradefl {
namespace {

std::string temp_dir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);  // TempDir persists across runs: start clean
  std::filesystem::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << "missing " << path;
  return {std::istreambuf_iterator<char>(file), std::istreambuf_iterator<char>()};
}

/// The small session used throughout: 3 orgs, no training, distinct seeds.
Config session_config(std::uint64_t seed, const std::string& faults = "") {
  Config config;
  config.set("orgs", "3");
  config.set("seed", std::to_string(seed));
  if (!faults.empty()) config.set("faults", faults);
  return config;
}

std::string session_request_line(const Config& config) {
  wire::Message request;
  request.set_string("op", "session");
  for (const auto& [key, value] : config.entries()) {
    request.set_string(key, value);
  }
  return request.serialize();
}

/// Canonical report of an uninterrupted solo run of the same option
/// vocabulary. Crash/hang events are stripped — a solo run has no containment
/// scope or supervisor, and the server strips them on requeue/re-attach too,
/// so the stripped plan is exactly what the served session finished under.
std::string solo_report(const Config& config) {
  const game::CoopetitionGame game = cli::game_from_options(config);
  auto built = cli::session_options_from_config(config);
  EXPECT_TRUE(built.ok());
  SessionOptions options = std::move(built).take();
  auto& events = options.faults.events;
  events.erase(std::remove_if(events.begin(), events.end(),
                              [](const FaultEvent& event) {
                                return event.kind == FaultKind::kProcessCrash ||
                                       event.kind == FaultKind::kPhaseHang;
                              }),
               events.end());
  TradingSession session(game);
  const SessionResult result = session.run(options);
  return canonical_session_report(game, result);
}

struct ServeRun {
  server::ServeSummary summary;
  std::vector<wire::Message> replies;
  std::string raw;
};

/// Runs one server lifecycle over an in-memory input and parses every reply
/// line back through the strict wire parser (a reply that does not round-trip
/// is itself a protocol bug).
ServeRun run_serve(const server::ServeOptions& options,
                   const std::vector<std::string>& lines) {
  std::string joined;
  for (const std::string& line : lines) joined += line + "\n";
  std::istringstream in(joined);
  std::ostringstream out;
  server::StreamLineSource source(in);
  server::Server daemon(options);
  ServeRun run;
  run.summary = daemon.run(source, out);
  run.raw = out.str();
  std::istringstream replies(run.raw);
  std::string line;
  while (std::getline(replies, line)) {
    auto parsed = wire::Message::parse(line);
    EXPECT_TRUE(parsed.ok()) << "unparseable reply: " << line;
    if (parsed.ok()) run.replies.push_back(std::move(parsed).take());
  }
  return run;
}

std::vector<const wire::Message*> replies_with_op(const ServeRun& run,
                                                  const std::string& op) {
  std::vector<const wire::Message*> matches;
  for (const wire::Message& reply : run.replies) {
    if (reply.get_string("op") == std::optional<std::string>(op)) {
      matches.push_back(&reply);
    }
  }
  return matches;
}

/// Reply for session `id` with the given op, or nullptr.
const wire::Message* reply_for(const ServeRun& run, const std::string& op,
                               std::uint64_t id) {
  for (const wire::Message* reply : replies_with_op(run, op)) {
    if (reply->get_number("id") == std::optional<double>(static_cast<double>(id))) {
      return reply;
    }
  }
  return nullptr;
}

/// A LineSource that waits a per-line delay before delivering, so tests can
/// order protocol input against worker progress without flaky sleeps spread
/// through the test body.
class PacedLineSource : public server::LineSource {
 public:
  explicit PacedLineSource(std::vector<std::pair<int, std::string>> lines)
      : lines_(std::move(lines)) {}

  server::ReadStatus next(std::string& line) override {
    if (index_ >= lines_.size()) return server::ReadStatus::kEof;
    const auto& [delay_ms, text] = lines_[index_++];
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    line = text;
    return server::ReadStatus::kLine;
  }

 private:
  std::vector<std::pair<int, std::string>> lines_;
  std::size_t index_ = 0;
};

// ---------------------------------------------------------------------------
// Wire protocol.

TEST(ServeWire, SerializeParseRoundTripPreservesOrderAndEscapes) {
  wire::Message message;
  message.set_string("op", "session");
  message.set_string("note", "tabs\tand \"quotes\" and\nnewlines");
  message.set_number("orgs", 4);
  message.set_number("scale", 0.15);
  message.set_bool("train", true);
  message.set("gap", wire::Value::null());

  const std::string line = message.serialize();
  auto parsed = wire::Message::parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().serialize(), line) << "round trip must be bit-identical";
  EXPECT_EQ(parsed.value().fields()[0].first, "op") << "field order must survive";
  EXPECT_EQ(parsed.value().get_string("note"),
            std::optional<std::string>("tabs\tand \"quotes\" and\nnewlines"));
  EXPECT_EQ(parsed.value().get_number("orgs"), std::optional<double>(4.0));
  EXPECT_EQ(parsed.value().get_bool("train"), std::optional<bool>(true));
}

TEST(ServeWire, StrictParseRejectsMalformedInput) {
  const std::vector<std::string> bad = {
      "",                                  // not an object
      "{\"op\": \"x\"",                   // unterminated object
      "{\"op\": {\"nested\": 1}}",        // nested object (flat by design)
      "{\"op\": [1, 2]}",                 // array
      "{\"op\": \"a\", \"op\": \"b\"}",   // duplicate key
      "{\"op\": \"a\"} trailing",          // trailing garbage
      "{\"op\": \"\\x\"}",                // bad escape
      "{op: \"a\"}",                      // unquoted key
  };
  for (const std::string& line : bad) {
    auto parsed = wire::Message::parse(line);
    EXPECT_FALSE(parsed.ok()) << "should reject: " << line;
    if (!parsed.ok()) EXPECT_EQ(parsed.error().code, "wire.parse") << line;
  }
}

TEST(ServeWire, ToConfigFlattensOntoCliVocabulary) {
  auto parsed = wire::Message::parse(
      "{\"op\": \"session\", \"orgs\": 4, \"train\": true, \"scale\": 0.5, "
      "\"skip\": null, \"scheme\": \"dbr\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const Config config = wire::to_config(parsed.value());
  EXPECT_FALSE(config.get("op").has_value()) << "protocol keys must not leak";
  EXPECT_EQ(config.get_int("orgs", 0), 4) << "integral numbers render integrally";
  EXPECT_EQ(config.get_string("train", ""), "1");
  EXPECT_EQ(config.get_string("scheme", ""), "dbr");
  EXPECT_FALSE(config.get("skip").has_value()) << "nulls are skipped";
}

// ---------------------------------------------------------------------------
// Admission, completion, byte-identity.

TEST(Serve, CompletesSessionsByteIdenticalToSoloRuns) {
  const std::string root = temp_dir("serve_basic");
  server::ServeOptions options;
  options.root = root;
  options.workers = 2;

  const Config first = session_config(11);
  const Config second = session_config(12);
  const ServeRun run = run_serve(
      options, {"{\"op\": \"ping\"}", session_request_line(first),
                session_request_line(second), "{\"op\": \"status\"}"});

  EXPECT_EQ(run.summary.exit_code, 0) << run.raw;
  EXPECT_EQ(run.summary.admitted, 2u);
  EXPECT_EQ(run.summary.completed, 2u);
  EXPECT_EQ(run.summary.failed, 0u);
  EXPECT_FALSE(run.summary.drained);

  ASSERT_FALSE(run.replies.empty());
  EXPECT_EQ(run.replies.front().get_string("op"), std::optional<std::string>("hello"));
  EXPECT_EQ(run.replies.back().get_string("op"), std::optional<std::string>("bye"));
  EXPECT_EQ(replies_with_op(run, "pong").size(), 1u);
  EXPECT_EQ(replies_with_op(run, "accepted").size(), 2u);
  EXPECT_EQ(replies_with_op(run, "done").size(), 2u);

  // Sessions are admitted in request order, so id 1 is `first`, id 2 `second`.
  const wire::Message* done_first = reply_for(run, "done", 1);
  const wire::Message* done_second = reply_for(run, "done", 2);
  ASSERT_NE(done_first, nullptr) << run.raw;
  ASSERT_NE(done_second, nullptr) << run.raw;
  EXPECT_EQ(slurp(*done_first->get_string("report")), solo_report(first))
      << "served session must be byte-identical to a solo run";
  EXPECT_EQ(slurp(*done_second->get_string("report")), solo_report(second));
}

TEST(Serve, RejectsMalformedLinesAndUnknownOpsWithoutDying) {
  const std::string root = temp_dir("serve_bad_input");
  server::ServeOptions options;
  options.root = root;
  options.workers = 1;

  const ServeRun run = run_serve(
      options, {"{broken", "{\"op\": \"frobnicate\"}",
                "{\"op\": \"session\", \"scheme\": \"not-a-scheme\"}",
                "{\"op\": \"ping\"}"});

  EXPECT_EQ(run.summary.exit_code, 0) << "bad input is the client's problem";
  EXPECT_EQ(run.summary.admitted, 0u);

  std::vector<std::string> error_codes;
  for (const wire::Message& reply : run.replies) {
    if (const auto code = reply.get_string("error")) error_codes.push_back(*code);
  }
  EXPECT_NE(std::find(error_codes.begin(), error_codes.end(), "wire.parse"),
            error_codes.end())
      << run.raw;
  EXPECT_NE(std::find(error_codes.begin(), error_codes.end(), "serve.op"),
            error_codes.end())
      << run.raw;
  EXPECT_EQ(replies_with_op(run, "pong").size(), 1u)
      << "the daemon must keep serving after bad requests";
}

TEST(Serve, OptionBuilderBoundsChecksCounts) {
  Config bad_workers;
  bad_workers.set("workers", "0");
  EXPECT_FALSE(server::serve_options_from_config(bad_workers).ok());

  Config bad_queue;
  bad_queue.set("queue_limit", "0");
  EXPECT_FALSE(server::serve_options_from_config(bad_queue).ok());

  Config bad_watchdog;
  bad_watchdog.set("watchdog_seconds", "-0.5");
  EXPECT_FALSE(server::serve_options_from_config(bad_watchdog).ok());

  Config good;
  good.set("root", "x");
  good.set("workers", "3");
  good.set("queue_limit", "5");
  good.set("watchdog_seconds", "1.5");
  good.set("resume", "0");
  auto built = server::serve_options_from_config(good);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().workers, 3u);
  EXPECT_EQ(built.value().queue_limit, 5u);
  EXPECT_DOUBLE_EQ(built.value().watchdog_seconds, 1.5);
  EXPECT_FALSE(built.value().resume);
}

// ---------------------------------------------------------------------------
// Load shedding + drain parking + re-attach.

TEST(Serve, ShedsLoadWhenQueueIsFullThenDrainsAndReattaches) {
  const std::string root = temp_dir("serve_shed");
  server::ServeOptions options;
  options.root = root;
  options.workers = 1;
  options.queue_limit = 1;

  // The first session hangs at phase 1, wedging the single worker; by the
  // time the second request lands (300 ms later) it is off the queue, so the
  // second occupies the one queue slot and the next two are shed.
  const Config hung = session_config(21, "seed:1,hang:1");
  const Config queued = session_config(22);

  std::ostringstream out;
  PacedLineSource source({{0, session_request_line(hung)},
                          {300, session_request_line(queued)},
                          {30, session_request_line(session_config(23))},
                          {0, session_request_line(session_config(24))},
                          {0, "{\"op\": \"drain\"}"}});
  server::Server daemon(options);
  const server::ServeSummary summary = daemon.run(source, out);

  EXPECT_EQ(summary.exit_code, 0) << out.str();
  EXPECT_TRUE(summary.drained);
  EXPECT_EQ(summary.admitted, 2u) << out.str();
  EXPECT_EQ(summary.rejected, 2u) << out.str();
  EXPECT_EQ(summary.parked, 2u)
      << "drain must park both the cancelled hang and the queued session\n"
      << out.str();
  EXPECT_EQ(summary.completed, 0u);
  EXPECT_NE(out.str().find("\"error\": \"overloaded\""), std::string::npos) << out.str();

  // Both parked sessions stayed pending in the registry; a restarted server
  // re-attaches (stripping the hang) and finishes them bit-identically.
  server::ServeOptions restart = options;
  const ServeRun resumed = run_serve(restart, {});
  EXPECT_EQ(resumed.summary.exit_code, 0) << resumed.raw;
  EXPECT_EQ(resumed.summary.reattached, 2u) << resumed.raw;
  EXPECT_EQ(resumed.summary.completed, 2u) << resumed.raw;

  const wire::Message* done_hung = reply_for(resumed, "done", 1);
  const wire::Message* done_queued = reply_for(resumed, "done", 2);
  ASSERT_NE(done_hung, nullptr) << resumed.raw;
  ASSERT_NE(done_queued, nullptr) << resumed.raw;
  EXPECT_EQ(done_hung->get_bool("reattached"), std::optional<bool>(true));
  EXPECT_EQ(slurp(*done_hung->get_string("report")), solo_report(hung));
  EXPECT_EQ(slurp(*done_queued->get_string("report")), solo_report(queued));
}

// ---------------------------------------------------------------------------
// Watchdog eviction.

TEST(Serve, WatchdogEvictsHungSessionAndRestartCompletesIt) {
  const std::string root = temp_dir("serve_watchdog");
  server::ServeOptions options;
  options.root = root;
  options.workers = 2;
  options.watchdog_seconds = 0.3;

  const Config hung = session_config(31, "seed:1,hang:2");
  const Config healthy = session_config(32);
  const ServeRun run =
      run_serve(options, {session_request_line(hung), session_request_line(healthy)});

  EXPECT_EQ(run.summary.exit_code, 0) << run.raw;
  EXPECT_EQ(run.summary.evicted, 1u) << run.raw;
  EXPECT_EQ(run.summary.completed, 1u) << run.raw;
  EXPECT_FALSE(run.summary.drained) << "eviction is per-session, not a shutdown";

  const wire::Message* evicted = reply_for(run, "evicted", 1);
  ASSERT_NE(evicted, nullptr) << run.raw;
  EXPECT_EQ(evicted->get_string("error"), std::optional<std::string>("deadline"));

  // The healthy neighbour was untouched by the eviction.
  const wire::Message* done_healthy = reply_for(run, "done", 2);
  ASSERT_NE(done_healthy, nullptr) << run.raw;
  EXPECT_EQ(slurp(*done_healthy->get_string("report")), solo_report(healthy));

  // The evicted session stayed pending; a restart strips the hang and runs it
  // to a byte-identical report.
  const ServeRun resumed = run_serve(options, {});
  EXPECT_EQ(resumed.summary.reattached, 1u) << resumed.raw;
  EXPECT_EQ(resumed.summary.completed, 1u) << resumed.raw;
  const wire::Message* done_hung = reply_for(resumed, "done", 1);
  ASSERT_NE(done_hung, nullptr) << resumed.raw;
  EXPECT_EQ(slurp(*done_hung->get_string("report")), solo_report(hung));
}

// ---------------------------------------------------------------------------
// Crash containment.

TEST(Serve, ContainsInjectedCrashAndRequeuesToCompletion) {
  const std::string root = temp_dir("serve_crash");
  server::ServeOptions options;
  options.root = root;
  options.workers = 1;

  const Config crashing = session_config(41, "seed:1,crash:2");
  const ServeRun run = run_serve(options, {session_request_line(crashing)});

  EXPECT_EQ(run.summary.exit_code, 0) << "a contained crash must not kill the daemon";
  EXPECT_EQ(run.summary.crashed, 1u) << run.raw;
  EXPECT_EQ(run.summary.completed, 1u) << "the requeued attempt finishes the session";
  EXPECT_EQ(run.summary.failed, 0u);

  const wire::Message* crashed = reply_for(run, "crashed", 1);
  ASSERT_NE(crashed, nullptr) << run.raw;
  EXPECT_EQ(crashed->get_bool("resumable"), std::optional<bool>(true));
  EXPECT_NE(crashed->get_string("detail").value_or("").find("point 2"),
            std::string::npos);

  const wire::Message* done = reply_for(run, "done", 1);
  ASSERT_NE(done, nullptr) << run.raw;
  EXPECT_EQ(slurp(*done->get_string("report")), solo_report(crashing))
      << "crash + resume must converge to the uninterrupted report";
}

// ---------------------------------------------------------------------------
// Registry durability.

TEST(Serve, CorruptRegistryFailsClosedInsteadOfForgettingSessions) {
  const std::string root = temp_dir("serve_corrupt_registry");
  {
    std::ofstream registry(root + "/registry.snap", std::ios::binary);
    registry << "TFLSgarbage that is definitely not a valid snapshot payload";
  }
  server::ServeOptions options;
  options.root = root;
  const ServeRun run = run_serve(options, {session_request_line(session_config(51))});
  EXPECT_EQ(run.summary.exit_code, 1)
      << "refusing to serve beats silently forgetting admitted sessions";
  EXPECT_EQ(run.summary.admitted, 0u);
  EXPECT_NE(run.raw.find("\"ok\": false"), std::string::npos) << run.raw;
}

TEST(Serve, ResumeOffIgnoresExistingRegistry) {
  const std::string root = temp_dir("serve_resume_off");
  server::ServeOptions options;
  options.root = root;

  // Park one session via drain so the registry has a pending entry.
  {
    std::ostringstream out;
    PacedLineSource source({{0, session_request_line(session_config(61, "seed:1,hang:1"))},
                            {250, "{\"op\": \"drain\"}"}});
    server::Server daemon(options);
    const server::ServeSummary summary = daemon.run(source, out);
    EXPECT_TRUE(summary.drained) << out.str();
    EXPECT_EQ(summary.parked, 1u) << out.str();
  }

  server::ServeOptions fresh = options;
  fresh.resume = false;
  const ServeRun run = run_serve(fresh, {});
  EXPECT_EQ(run.summary.reattached, 0u) << run.raw;
  EXPECT_EQ(run.summary.exit_code, 0);
}

}  // namespace
}  // namespace tradefl
