// Chaos suite: the full TradingSession under a mixed fault plan. The session
// must never abort — every injected fault is either retried, degraded around,
// or reported — and the whole schedule must replay bit-identically across
// thread counts.
#include <gtest/gtest.h>

#include <cmath>

#include "common/parallel.h"
#include "game/game_factory.h"
#include "tradefl/report.h"
#include "tradefl/session.h"

namespace tradefl {
namespace {

/// Restores the serial global pool even when an assertion fails mid-test.
struct ThreadsRestorer {
  ~ThreadsRestorer() { set_global_threads(1); }
};

FaultPlan mixed_plan() {
  FaultPlan plan;
  plan.seed = 3;
  plan.dropout_rate = 0.2;
  plan.corrupt_rate = 0.1;
  plan.straggler_rate = 0.1;
  plan.submit_failure_rate = 0.05;
  plan.solver_perturb_rate = 0.5;
  return plan;
}

SessionOptions chaos_options() {
  SessionOptions options;
  options.scheme = core::Scheme::kCgbd;  // exercises solver recovery too
  options.run_training = true;
  options.sample_scale = 0.12;
  options.fedavg.rounds = 2;
  options.faults = mixed_plan();
  return options;
}

bool has_phase(const SessionResult& result, const std::string& phase) {
  for (const Degradation& d : result.degradations) {
    if (d.phase == phase) return true;
  }
  return false;
}

TEST(Chaos, MixedPlanNeverAborts) {
  const auto game = game::make_toy_game();
  TradingSession session(game);
  SessionResult result;
  ASSERT_NO_THROW(result = session.run(chaos_options()));
  // Invariants that hold whether or not settlement landed: the chain is
  // internally consistent and the integer budget stays balanced.
  EXPECT_TRUE(result.chain_valid);
  EXPECT_EQ(result.settlement_sum, 0);
  EXPECT_TRUE(result.mechanism.solution.converged);
  if (result.settled) {
    EXPECT_LT(result.max_settlement_gap, 1e-6);
  } else {
    EXPECT_TRUE(has_phase(result, "chain"));
    for (chain::Wei w : result.settlements_wei) EXPECT_EQ(w, 0);
  }
  // Training either produced metrics or was contained as a degradation.
  EXPECT_TRUE(result.training.has_value() || has_phase(result, "training"));
}

TEST(Chaos, ReplayIsThreadCountInvariant) {
  ThreadsRestorer restore;
  const auto game = game::make_toy_game();

  set_global_threads(1);
  TradingSession serial_session(game);
  const SessionResult serial = serial_session.run(chaos_options());

  set_global_threads(4);
  TradingSession parallel_session(game);
  const SessionResult parallel = parallel_session.run(chaos_options());

  EXPECT_EQ(serial.settled, parallel.settled);
  EXPECT_EQ(serial.settlements_wei, parallel.settlements_wei);
  EXPECT_EQ(serial.settlement_sum, parallel.settlement_sum);
  EXPECT_EQ(serial.retry_attempts, parallel.retry_attempts);
  ASSERT_EQ(serial.degradations.size(), parallel.degradations.size());
  for (std::size_t i = 0; i < serial.degradations.size(); ++i) {
    EXPECT_EQ(serial.degradations[i].phase, parallel.degradations[i].phase);
    EXPECT_EQ(serial.degradations[i].detail, parallel.degradations[i].detail);
  }
  ASSERT_EQ(serial.training.has_value(), parallel.training.has_value());
  if (serial.training) {
    EXPECT_EQ(serial.training->final_weights, parallel.training->final_weights);  // bitwise
    EXPECT_EQ(serial.training->total_dropped, parallel.training->total_dropped);
    EXPECT_EQ(serial.training->total_quarantined, parallel.training->total_quarantined);
  }
}

TEST(Chaos, ZeroPlanMatchesPlainRunBitwise) {
  // Fault plumbing engaged (retry policy set, injector threaded through) but
  // an all-zero plan: results must be indistinguishable from a plain run.
  const auto game = game::make_toy_game();
  SessionOptions plain;
  plain.run_training = true;
  plain.sample_scale = 0.12;
  plain.fedavg.rounds = 2;

  SessionOptions plumbed = plain;
  plumbed.faults = FaultPlan{};  // explicit zero plan
  plumbed.retry.jitter_seed = 99;
  plumbed.retry.max_attempts = 7;  // policy differs, but never engages

  TradingSession a(game);
  const SessionResult base = a.run(plain);
  TradingSession b(game);
  const SessionResult wired = b.run(plumbed);

  EXPECT_EQ(base.settlements_wei, wired.settlements_wei);
  EXPECT_EQ(base.total_gas, wired.total_gas);
  EXPECT_EQ(base.blocks, wired.blocks);
  EXPECT_EQ(wired.retry_attempts, 0u);
  EXPECT_TRUE(wired.degradations.empty());
  EXPECT_TRUE(wired.settled);
  ASSERT_TRUE(base.training && wired.training);
  EXPECT_EQ(base.training->final_weights, wired.training->final_weights);  // bitwise
}

TEST(Chaos, SettlementAbortIsGraceful) {
  const auto game = game::make_toy_game();
  TradingSession session(game);
  SessionOptions options;
  options.faults.submit_failure_rate = 1.0;  // every submission is lost
  SessionResult result;
  ASSERT_NO_THROW(result = session.run(options));
  EXPECT_FALSE(result.settled);
  EXPECT_TRUE(result.chain_valid);  // the chain itself is untouched by faults
  EXPECT_EQ(result.settlement_sum, 0);
  for (chain::Wei w : result.settlements_wei) EXPECT_EQ(w, 0);
  EXPECT_TRUE(has_phase(result, "chain"));
  EXPECT_GT(result.retry_attempts, 0u);
  // The report spells out the abort instead of pretending a settlement.
  const std::string text = describe_session(game, result);
  EXPECT_NE(text.find("ABORTED"), std::string::npos);
}

TEST(Chaos, SolverPerturbationStillSettles) {
  const auto game = game::make_toy_game();
  TradingSession session(game);
  SessionOptions options;
  options.scheme = core::Scheme::kCgbd;
  options.faults.solver_perturb_rate = 1.0;  // poison every primal solve
  const SessionResult result = session.run(options);
  // Structured recovery absorbs the perturbations: equilibrium found, full
  // settlement lands, budget balances.
  EXPECT_TRUE(result.mechanism.solution.converged);
  EXPECT_TRUE(result.settled);
  EXPECT_TRUE(result.chain_valid);
  EXPECT_EQ(result.settlement_sum, 0);
  EXPECT_TRUE(result.properties.nash_equilibrium);
}

TEST(Chaos, QuorumShortfallIsReportedAsDegradation) {
  const auto game = game::make_toy_game();
  TradingSession session(game);
  SessionOptions options;
  options.run_training = true;
  options.sample_scale = 0.12;
  options.fedavg.rounds = 2;
  options.fedavg.quorum = game.size();  // need every client...
  options.faults.events.push_back(
      FaultEvent{FaultKind::kClientDropout, 1, kAnyFaultTarget, 0.0});  // ...drop all in r1
  const SessionResult result = session.run(options);
  ASSERT_TRUE(result.training.has_value());
  EXPECT_EQ(result.training->rounds_skipped, 1u);
  EXPECT_TRUE(has_phase(result, "training"));
  // Training degradation is advisory: settlement still completes.
  EXPECT_TRUE(result.settled);
  EXPECT_EQ(result.settlement_sum, 0);
}

}  // namespace
}  // namespace tradefl
