// End-to-end exit-code contract for the checker binaries: 0 clean,
// 1 findings (or self-test failure / perf regression), 2 usage/configuration
// error. CI scripts branch on these codes, so they are API. Binary paths are
// baked in by CMake (TFL_LINT_BIN / TFL_ANALYZE_BIN / TFL_BENCH_DIFF_BIN).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

int run(const std::string& command) {
  const int status = std::system((command + " > /dev/null 2>&1").c_str());
  return WEXITSTATUS(status);
}

class ToolCli : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each discovered test as its own process, possibly in
    // parallel — the scratch dir must be unique per process AND per test.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("tfl_cli_" + std::to_string(::getpid()) + "_" + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path write(const std::string& name, const std::string& content) {
    const fs::path path = dir_ / name;
    std::ofstream out(path);
    out << content;
    return path;
  }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// tfl-lint
// ---------------------------------------------------------------------------

TEST_F(ToolCli, LintSelfTestPasses) { EXPECT_EQ(run(std::string(TFL_LINT_BIN) + " --self-test"), 0); }

TEST_F(ToolCli, LintCleanTreeExitsZero) {
  write("clean.cpp", "int add(int a, int b) { return a + b; }\n");
  EXPECT_EQ(run(std::string(TFL_LINT_BIN) + " " + dir_.string()), 0);
}

TEST_F(ToolCli, LintFindingExitsOne) {
  write("timer.cpp", "auto t0 = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(run(std::string(TFL_LINT_BIN) + " " + dir_.string()), 1);
}

TEST_F(ToolCli, LintAllowlistSuppressesToZero) {
  write("timer.cpp", "auto t0 = std::chrono::steady_clock::now();\n");
  const fs::path allow = write("allow.txt", "raw-steady-clock timer.cpp\n");
  EXPECT_EQ(run(std::string(TFL_LINT_BIN) + " --allow " + allow.string() + " " + dir_.string()),
            0);
}

TEST_F(ToolCli, LintUsageErrorsExitTwo) {
  EXPECT_EQ(run(std::string(TFL_LINT_BIN) + " --no-such-flag"), 2);
  EXPECT_EQ(run(std::string(TFL_LINT_BIN)), 2);                      // no paths
  EXPECT_EQ(run(std::string(TFL_LINT_BIN) + " --allow"), 2);        // missing operand
  EXPECT_EQ(run(std::string(TFL_LINT_BIN) + " /nonexistent/tree"), 2);
}

// ---------------------------------------------------------------------------
// tfl-analyze
// ---------------------------------------------------------------------------

TEST_F(ToolCli, AnalyzeSelfTestPasses) {
  EXPECT_EQ(run(std::string(TFL_ANALYZE_BIN) + " --self-test"), 0);
}

TEST_F(ToolCli, AnalyzeCleanTreeExitsZero) {
  write("clean.cpp", "int add(int a, int b) { return a + b; }\n");
  EXPECT_EQ(run(std::string(TFL_ANALYZE_BIN) + " " + dir_.string()), 0);
}

TEST_F(ToolCli, AnalyzeFindingExitsOneInEveryFormat) {
  write("audit.cpp",
        "void write_audit(SnapshotWriter& writer, const Audit& audit) {\n"
        "  writer.put_u64(audit.seq);\n"
        "}\n");
  for (const char* format : {"text", "json", "sarif"}) {
    EXPECT_EQ(run(std::string(TFL_ANALYZE_BIN) + " --format " + format + " " + dir_.string()), 1)
        << format;
  }
}

TEST_F(ToolCli, AnalyzeBaselineSuppressesToZero) {
  write("audit.cpp",
        "void write_audit(SnapshotWriter& writer, const Audit& audit) {\n"
        "  writer.put_u64(audit.seq);\n"
        "}\n");
  const fs::path baseline =
      write("baseline.txt", "schema-unpaired audit.cpp  # write-only audit trail\n");
  EXPECT_EQ(run(std::string(TFL_ANALYZE_BIN) + " --baseline " + baseline.string() + " " +
                dir_.string()),
            0);
}

TEST_F(ToolCli, AnalyzeBaselineWithoutJustificationExitsTwo) {
  write("audit.cpp",
        "void write_audit(SnapshotWriter& writer, const Audit& audit) {\n"
        "  writer.put_u64(audit.seq);\n"
        "}\n");
  const fs::path baseline = write("baseline.txt", "schema-unpaired audit.cpp\n");
  EXPECT_EQ(run(std::string(TFL_ANALYZE_BIN) + " --baseline " + baseline.string() + " " +
                dir_.string()),
            2);
}

TEST_F(ToolCli, AnalyzeUsageErrorsExitTwo) {
  EXPECT_EQ(run(std::string(TFL_ANALYZE_BIN) + " --no-such-flag"), 2);
  EXPECT_EQ(run(std::string(TFL_ANALYZE_BIN)), 2);  // no paths
  EXPECT_EQ(run(std::string(TFL_ANALYZE_BIN) + " --format yaml ."), 2);
  EXPECT_EQ(run(std::string(TFL_ANALYZE_BIN) + " /nonexistent/tree"), 2);
  EXPECT_EQ(run(std::string(TFL_ANALYZE_BIN) + " --baseline /nonexistent/base.txt ."), 2);
}

// ---------------------------------------------------------------------------
// tfl-bench-diff
// ---------------------------------------------------------------------------

TEST_F(ToolCli, BenchDiffIdenticalManifestsExitZero) {
  const fs::path old_manifest = write(
      "old.json", "{\"bench\": \"bench_load\", \"metrics\": {\"tx_per_sec\": 1000}}\n");
  const fs::path new_manifest = write(
      "new.json", "{\"bench\": \"bench_load\", \"metrics\": {\"tx_per_sec\": 1000}}\n");
  EXPECT_EQ(run(std::string(TFL_BENCH_DIFF_BIN) + " " + old_manifest.string() + " " +
                new_manifest.string()),
            0);
}

TEST_F(ToolCli, BenchDiffRegressionExitsOneInEveryFormat) {
  const fs::path old_manifest = write(
      "old.json", "{\"bench\": \"bench_load\", \"metrics\": {\"operations\": 64}}\n");
  const fs::path new_manifest = write(
      "new.json", "{\"bench\": \"bench_load\", \"metrics\": {\"operations\": 63}}\n");
  for (const char* format : {"text", "json"}) {
    EXPECT_EQ(run(std::string(TFL_BENCH_DIFF_BIN) + " --format " + format + " " +
                  old_manifest.string() + " " + new_manifest.string()),
              1)
        << format;
  }
}

TEST_F(ToolCli, BenchDiffThresholdFlagWidensTheGate) {
  const fs::path old_manifest = write(
      "old.json", "{\"bench\": \"bench_load\", \"metrics\": {\"tx_per_sec\": 1000}}\n");
  const fs::path new_manifest = write(
      "new.json", "{\"bench\": \"bench_load\", \"metrics\": {\"tx_per_sec\": 700}}\n");
  const std::string pair = " " + old_manifest.string() + " " + new_manifest.string();
  EXPECT_EQ(run(std::string(TFL_BENCH_DIFF_BIN) + pair), 1);  // -30% vs default 25%
  EXPECT_EQ(run(std::string(TFL_BENCH_DIFF_BIN) + " --threshold 0.4" + pair), 0);
}

TEST_F(ToolCli, BenchDiffMalformedInputsExitTwo) {
  const fs::path good = write(
      "good.json", "{\"bench\": \"bench_load\", \"metrics\": {\"tx_per_sec\": 1000}}\n");
  const fs::path truncated = write("bad.json", "{\"oops\"\n");
  const fs::path no_metrics = write("flat.json", "{\"bench\": \"bench_load\"}\n");
  const std::string bin(TFL_BENCH_DIFF_BIN);
  EXPECT_EQ(run(bin + " " + good.string() + " " + truncated.string()), 2);
  EXPECT_EQ(run(bin + " " + good.string() + " " + no_metrics.string()), 2);
  EXPECT_EQ(run(bin + " " + good.string() + " /nonexistent/manifest.json"), 2);
  EXPECT_EQ(run(bin + " " + good.string()), 2);  // missing operand
  EXPECT_EQ(run(bin + " --no-such-flag a b"), 2);
  EXPECT_EQ(run(bin + " --format yaml " + good.string() + " " + good.string()), 2);
}

}  // namespace
