// Allowlist/baseline grammar tests for the shared parser both checkers use
// (tfl-lint --allow, tfl-analyze --baseline). The edge cases here — blank
// lines, comments, unknown rule ids, duplicates, trailing whitespace, missing
// justifications — are exactly the ways a hand-edited allow file goes wrong.
#include "lint_common.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

namespace tfl_tools {
namespace {

const std::set<std::string>& rules() {
  static const std::set<std::string> kRules = {"raw-thread", "schema-drift"};
  return kRules;
}

TEST(AllowParse, BlankAndCommentLinesAreSkipped) {
  const AllowParse parsed = parse_allow_text(
      "\n"
      "# full-line comment\n"
      "   \t  \n"
      "raw-thread src/common/parallel.cpp\n"
      "\n",
      rules(), /*require_justification=*/false);
  EXPECT_TRUE(parsed.errors.empty());
  EXPECT_TRUE(parsed.warnings.empty());
  ASSERT_EQ(parsed.entries.size(), 1u);
  EXPECT_EQ(parsed.entries[0].rule, "raw-thread");
  EXPECT_EQ(parsed.entries[0].path_suffix, "src/common/parallel.cpp");
  EXPECT_EQ(parsed.entries[0].line, 4u);
}

TEST(AllowParse, TrailingWhitespaceAndCommentsStripped) {
  const AllowParse parsed = parse_allow_text(
      "raw-thread src/a.cpp   \t\n"
      "schema-drift src/b.cpp  # the reason   \n",
      rules(), false);
  EXPECT_TRUE(parsed.errors.empty());
  ASSERT_EQ(parsed.entries.size(), 2u);
  EXPECT_EQ(parsed.entries[0].path_suffix, "src/a.cpp");
  EXPECT_EQ(parsed.entries[1].path_suffix, "src/b.cpp");
  EXPECT_EQ(parsed.entries[1].justification, "the reason");
}

TEST(AllowParse, UnknownRuleIdWarns) {
  const AllowParse parsed =
      parse_allow_text("no-such-rule src/a.cpp\n", rules(), false);
  ASSERT_EQ(parsed.warnings.size(), 1u);
  EXPECT_NE(parsed.warnings[0].find("no-such-rule"), std::string::npos);
  // The entry is kept: a stale id suppresses nothing but must not crash scans.
  EXPECT_EQ(parsed.entries.size(), 1u);
}

TEST(AllowParse, UnknownRuleNotCheckedWithoutCatalog) {
  const AllowParse parsed = parse_allow_text("no-such-rule src/a.cpp\n", {}, false);
  EXPECT_TRUE(parsed.warnings.empty());
}

TEST(AllowParse, DuplicateEntriesWarnAndDeduplicate) {
  const AllowParse parsed = parse_allow_text(
      "raw-thread src/a.cpp\n"
      "raw-thread src/a.cpp  # same thing again\n",
      rules(), false);
  ASSERT_EQ(parsed.entries.size(), 1u);
  ASSERT_EQ(parsed.warnings.size(), 1u);
  EXPECT_NE(parsed.warnings[0].find("duplicate"), std::string::npos);
}

TEST(AllowParse, MissingPathSuffixWarnsAndDropsTheLine) {
  const AllowParse parsed = parse_allow_text("raw-thread\n", rules(), false);
  EXPECT_EQ(parsed.entries.size(), 0u);
  ASSERT_EQ(parsed.warnings.size(), 1u);
  EXPECT_NE(parsed.warnings[0].find("rule-id"), std::string::npos);
}

TEST(AllowParse, BaselinePolicyRequiresJustification) {
  const AllowParse parsed = parse_allow_text(
      "raw-thread src/a.cpp\n"
      "schema-drift src/b.cpp  # reviewed: variant codec\n",
      rules(), /*require_justification=*/true);
  ASSERT_EQ(parsed.errors.size(), 1u);
  EXPECT_NE(parsed.errors[0].find("justification"), std::string::npos);
  // The offending line is dropped; the justified one survives.
  ASSERT_EQ(parsed.entries.size(), 1u);
  EXPECT_EQ(parsed.entries[0].rule, "schema-drift");
  EXPECT_EQ(parsed.entries[0].justification, "reviewed: variant codec");
}

TEST(AllowParse, JustificationMustBeNonEmptyText) {
  // A bare `#` with nothing behind it is not a justification.
  const AllowParse parsed =
      parse_allow_text("raw-thread src/a.cpp  #   \n", rules(), true);
  EXPECT_EQ(parsed.errors.size(), 1u);
}

TEST(Allowed, MatchesRuleAndPathSuffix) {
  AllowEntry entry;
  entry.rule = "raw-thread";
  entry.path_suffix = "common/parallel.cpp";
  Finding hit{"src/common/parallel.cpp", 10, "raw-thread", "m"};
  Finding wrong_rule{"src/common/parallel.cpp", 10, "schema-drift", "m"};
  Finding wrong_path{"src/common/parallel.h", 10, "raw-thread", "m"};
  EXPECT_TRUE(allowed(hit, {entry}));
  EXPECT_FALSE(allowed(wrong_rule, {entry}));
  EXPECT_FALSE(allowed(wrong_path, {entry}));
}

TEST(LoadAllowFile, MissingFileFailsWithError) {
  AllowParse parsed;
  std::string error;
  EXPECT_FALSE(load_allow_file("/nonexistent/allow.txt", rules(), false, parsed, error));
  EXPECT_FALSE(error.empty());
}

TEST(LoadAllowFile, RoundTripsThroughDisk) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("tfl_test_allow_" + std::to_string(::getpid()) + ".txt");
  {
    std::ofstream out(path);
    out << "raw-thread src/a.cpp  # pinned\n";
  }
  AllowParse parsed;
  std::string error;
  ASSERT_TRUE(load_allow_file(path.string(), rules(), true, parsed, error));
  ASSERT_EQ(parsed.entries.size(), 1u);
  EXPECT_EQ(parsed.entries[0].justification, "pinned");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tfl_tools
