// Unit tests for the bench-manifest regression differ behind tfl-bench-diff
// and the ci_check.sh perf gate: the JSON parser, the per-metric direction
// policy, and the diff verdicts CI branches on.
#include "bench_diff.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tfl_benchdiff {
namespace {

JsonValue must_parse(const std::string& text) {
  const JsonParseResult result = parse_json(text);
  EXPECT_TRUE(result.ok) << result.error;
  return result.value;
}

DiffReport diff(const std::string& baseline, const std::string& candidate,
                DiffOptions options = {}) {
  return diff_manifests(must_parse(baseline), must_parse(candidate), options);
}

std::string manifest(const std::string& metrics) {
  return "{\"bench\": \"bench_load\", \"schema\": 1, \"metrics\": " + metrics + "}";
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

TEST(BenchDiffJson, ParsesScalarsAndStructure) {
  const JsonValue value =
      must_parse("{\"a\": 1.5, \"b\": \"x\\\"y\", \"c\": [true, null, -2e3], \"d\": {}}");
  ASSERT_EQ(value.kind, JsonValue::Kind::kObject);
  ASSERT_EQ(value.members.size(), 4u);
  EXPECT_EQ(value.members[0].first, "a");  // insertion order preserved
  EXPECT_DOUBLE_EQ(value.find("a")->number, 1.5);
  EXPECT_EQ(value.find("b")->text, "x\"y");
  const JsonValue* array = value.find("c");
  ASSERT_EQ(array->items.size(), 3u);
  EXPECT_TRUE(array->items[0].boolean);
  EXPECT_EQ(array->items[1].kind, JsonValue::Kind::kNull);
  EXPECT_DOUBLE_EQ(array->items[2].number, -2000.0);
  EXPECT_EQ(value.find("d")->kind, JsonValue::Kind::kObject);
  EXPECT_EQ(value.find("missing"), nullptr);
}

TEST(BenchDiffJson, ReportsErrorsWithOffset) {
  for (const char* bad : {"{\"oops\"", "{\"a\": }", "[1, 2", "\"open", "{} trailing", "nope"}) {
    const JsonParseResult result = parse_json(bad);
    EXPECT_FALSE(result.ok) << bad;
    EXPECT_NE(result.error.find(':'), std::string::npos) << bad;  // "<offset>: message"
  }
}

// ---------------------------------------------------------------------------
// classification + flattening
// ---------------------------------------------------------------------------

TEST(BenchDiffPolicy, ClassifiesByLeafName) {
  EXPECT_EQ(classify_metric("session.sessions_per_sec"), Direction::kHigherBetter);
  EXPECT_EQ(classify_metric("chain.tx_per_sec"), Direction::kHigherBetter);
  EXPECT_EQ(classify_metric("session.operations"), Direction::kExact);
  EXPECT_EQ(classify_metric("session.phases.chain.settle.seconds.count"), Direction::kExact);
  EXPECT_EQ(classify_metric("schema"), Direction::kExact);
  EXPECT_EQ(classify_metric("session.phases.chain.settle.seconds.p99"),
            Direction::kInformational);
  EXPECT_EQ(classify_metric("session.phases.chain.settle.seconds.max"),
            Direction::kInformational);
  EXPECT_EQ(classify_metric("session.phases.chain.settle.seconds.p50"),
            Direction::kLowerBetter);
  EXPECT_EQ(classify_metric("session.wall_seconds"), Direction::kLowerBetter);
}

TEST(BenchDiffPolicy, FlattensNumericLeavesToDottedKeys) {
  const JsonValue value = must_parse(
      "{\"a\": 1, \"nested\": {\"b\": 2, \"deep\": {\"c\": 3}}, "
      "\"skip_string\": \"x\", \"skip_array\": [4], \"skip_bool\": true}");
  const auto flat = flatten_metrics(value);
  ASSERT_EQ(flat.size(), 3u);
  EXPECT_EQ(flat[0].first, "a");
  EXPECT_EQ(flat[1].first, "nested.b");
  EXPECT_EQ(flat[2].first, "nested.deep.c");
  EXPECT_DOUBLE_EQ(flat[2].second, 3.0);
}

// ---------------------------------------------------------------------------
// diff verdicts
// ---------------------------------------------------------------------------

TEST(BenchDiff, IdenticalManifestsHaveNoRegression) {
  const std::string text = manifest("{\"tx_per_sec\": 1000, \"operations\": 64}");
  const DiffReport report = diff(text, text);
  EXPECT_FALSE(report.has_regression());
  EXPECT_EQ(report.regression_count(), 0u);
}

TEST(BenchDiff, ThroughputDropBeyondThresholdFails) {
  const DiffReport drop =
      diff(manifest("{\"tx_per_sec\": 1000}"), manifest("{\"tx_per_sec\": 700}"));
  ASSERT_EQ(drop.deltas.size(), 1u);
  EXPECT_TRUE(drop.deltas[0].regression);  // -30% < -25%

  const DiffReport within =
      diff(manifest("{\"tx_per_sec\": 1000}"), manifest("{\"tx_per_sec\": 800}"));
  EXPECT_FALSE(within.has_regression());  // -20% is inside the slack

  const DiffReport faster =
      diff(manifest("{\"tx_per_sec\": 1000}"), manifest("{\"tx_per_sec\": 5000}"));
  EXPECT_FALSE(faster.has_regression());  // improvements never fail
}

TEST(BenchDiff, DeterministicMetricsMustMatchExactly) {
  const DiffReport report =
      diff(manifest("{\"operations\": 64}"), manifest("{\"operations\": 63}"));
  EXPECT_TRUE(report.has_regression());
}

TEST(BenchDiff, LatencyTiersGetGraduatedSlack) {
  // p50: 2x multiplier -> 50% allowed at the default 25% threshold.
  EXPECT_TRUE(diff(manifest("{\"p\": {\"p50\": 100e-6}}"), manifest("{\"p\": {\"p50\": 160e-6}}"))
                  .has_regression());
  EXPECT_FALSE(diff(manifest("{\"p\": {\"p50\": 100e-6}}"), manifest("{\"p\": {\"p50\": 140e-6}}"))
                   .has_regression());
  // p90: 8x multiplier -> 200% allowed.
  EXPECT_TRUE(diff(manifest("{\"p\": {\"p90\": 100e-6}}"), manifest("{\"p\": {\"p90\": 350e-6}}"))
                  .has_regression());
  EXPECT_FALSE(diff(manifest("{\"p\": {\"p90\": 100e-6}}"), manifest("{\"p\": {\"p90\": 250e-6}}"))
                   .has_regression());
  // p99/max: informational, never a regression.
  EXPECT_FALSE(diff(manifest("{\"p\": {\"p99\": 100e-6}}"), manifest("{\"p\": {\"p99\": 1.0}}"))
                   .has_regression());
  EXPECT_FALSE(diff(manifest("{\"p\": {\"max\": 100e-6}}"), manifest("{\"p\": {\"max\": 9.0}}"))
                   .has_regression());
}

TEST(BenchDiff, MissingKeyFailsNewKeyIsInformational) {
  const DiffReport report = diff(manifest("{\"tx_per_sec\": 1000, \"gone\": 1}"),
                                 manifest("{\"tx_per_sec\": 1000, \"added\": 2}"));
  ASSERT_EQ(report.missing_keys, (std::vector<std::string>{"gone"}));
  ASSERT_EQ(report.new_keys, (std::vector<std::string>{"added"}));
  EXPECT_EQ(report.regression_count(), 1u);  // only the missing key counts
}

TEST(BenchDiff, ZeroBaselineIsARegressionOnlyWhenCandidateGrows) {
  EXPECT_TRUE(diff(manifest("{\"w.wall_seconds\": 0}"), manifest("{\"w.wall_seconds\": 1}"))
                  .has_regression());
  EXPECT_FALSE(diff(manifest("{\"w.wall_seconds\": 0}"), manifest("{\"w.wall_seconds\": 0}"))
                   .has_regression());
}

TEST(BenchDiff, TextAndJsonReportsNameTheVerdict) {
  const DiffReport report =
      diff(manifest("{\"tx_per_sec\": 1000}"), manifest("{\"tx_per_sec\": 1}"));
  const std::string text = report.to_text();
  EXPECT_NE(text.find("FAIL tx_per_sec"), std::string::npos);
  EXPECT_NE(text.find("result: 1 regression(s)"), std::string::npos);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"regressions\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"regression\": true"), std::string::npos);
}

TEST(BenchDiff, ManifestMetricsRejectsMalformedShapes) {
  EXPECT_EQ(manifest_metrics(must_parse("{\"bench\": \"x\"}")), nullptr);
  EXPECT_EQ(manifest_metrics(must_parse("{\"metrics\": 3}")), nullptr);
  EXPECT_EQ(manifest_metrics(must_parse("[1, 2]")), nullptr);
  EXPECT_NE(manifest_metrics(must_parse("{\"metrics\": {}}")), nullptr);
}

}  // namespace
}  // namespace tfl_benchdiff
