// Real-tree guarantees for the tfl-analyze schema pass, run in-process against
// the actual src/ checkout (TRADEFL_SOURCE_DIR):
//
//   1. every persisted codec pair in the repo is discovered and compared —
//      the list below is the repo's durable-format inventory, so adding a
//      codec without the analyzer seeing it fails here;
//   2. the tree is clean modulo the reviewed baseline entries;
//   3. a mutation test: flipping any pair's primitive op type in the
//      in-memory file set must produce a schema-drift finding for that pair.
//      This proves the comparison is live for every pair, not vacuously green.
#include "analyze/analyzer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "lint_common.h"

namespace {

using tfl_analyze::Analysis;
using tfl_analyze::CodecOp;
using tfl_analyze::CodecPair;
using tfl_analyze::SourceFile;

std::vector<SourceFile> load_tree() {
  std::vector<std::filesystem::path> paths;
  std::string error;
  const std::string root = std::string(TRADEFL_SOURCE_DIR) + "/src";
  if (!tfl_tools::collect_files({root}, paths, error)) {
    ADD_FAILURE() << "cannot walk " << root << ": " << error;
    return {};
  }
  std::vector<SourceFile> files;
  for (const auto& path : paths) {
    std::string content;
    if (tfl_tools::read_file(path, content)) {
      files.push_back({tfl_tools::normalize_path(path), std::move(content)});
    }
  }
  return files;
}

Analysis analyze_tree(const std::vector<SourceFile>& files) {
  tradefl::ThreadPool pool(4);
  return tfl_analyze::analyze(files, tfl_analyze::Options{}, &pool);
}

/// The repo's durable-format inventory: every writer/reader codec pair that
/// persists bytes. Update this list when adding a codec — that is the point.
const std::vector<std::pair<std::string, std::string>>& expected_pairs() {
  static const std::vector<std::pair<std::string, std::string>> kPairs = {
      // chain: ABI, mempool/chain persistence, contract state
      {"encode_value", "decode_value"},
      {"encode_call", "decode_call"},
      {"encode_values", "decode_values"},
      {"put_tx", "get_tx"},
      {"serialize_block", "decode_block"},
      {"save_chain_state", "restore_chain_state"},
      {"save_state", "load_state"},
      // solver solutions & mechanism results
      {"put_profile", "get_profile"},
      {"put_iteration_record", "get_iteration_record"},
      {"put_solution", "get_solution"},
      {"put_mechanism_result", "get_mechanism_result"},
      {"put_property_report", "get_property_report"},
      // FL training state
      {"put_round_metrics", "get_round_metrics"},
      {"put_fedavg_result", "get_fedavg_result"},
      {"put_aggregator_spec", "get_aggregator_spec"},
      // deviation audit (core/deviation_audit.cpp)
      {"put_silo_deviation", "get_silo_deviation"},
      {"put_deviation_audit", "get_deviation_audit"},
      // session bookkeeping
      {"put_address", "get_address"},
  };
  return kPairs;
}

/// Checkpoint writers whose reader is an anonymous decode lambda; the pass
/// pairs them by proximity, so only the writer name is stable.
const std::vector<std::string>& expected_checkpoint_writers() {
  static const std::vector<std::string> kWriters = {
      "write_checkpoint",           // CGBD solver (core/gbd.cpp)
      "write_fedavg_checkpoint",    // fl/fedavg.cpp
      "write_fedasync_checkpoint",  // fl/fedasync.cpp
      "write_session_checkpoint",   // tradefl/session.cpp
  };
  return kWriters;
}

TEST(SchemaCoverage, EveryCodecPairInTheTreeIsCompared) {
  const std::vector<SourceFile> files = load_tree();
  ASSERT_FALSE(files.empty());
  const Analysis analysis = analyze_tree(files);

  std::set<std::pair<std::string, std::string>> seen;
  std::set<std::string> seen_writers;
  for (const CodecPair& pair : analysis.pairs) {
    seen.insert({pair.writer_name, pair.reader_name});
    seen_writers.insert(pair.writer_name);
    EXPECT_FALSE(pair.writer_ops.empty()) << pair.writer_name;
    EXPECT_FALSE(pair.reader_ops.empty()) << pair.reader_name;
  }
  for (const auto& expected : expected_pairs()) {
    EXPECT_TRUE(seen.count(expected))
        << "codec pair " << expected.first << " / " << expected.second
        << " not discovered by the schema pass";
  }
  for (const std::string& writer : expected_checkpoint_writers()) {
    EXPECT_TRUE(seen_writers.count(writer))
        << "checkpoint writer " << writer << " not paired with its decode lambda";
  }
}

TEST(SchemaCoverage, TreeIsCleanModuloTheReviewedBaseline) {
  const std::vector<SourceFile> files = load_tree();
  ASSERT_FALSE(files.empty());
  const Analysis analysis = analyze_tree(files);

  // Exactly the findings justified in tools/tfl_analyze_baseline.txt: the
  // abi.cpp variant codec (beyond the flat-sequence model) and the two
  // hash-only serialize helpers. Anything else is a regression.
  // Paths come back absolute (the tree is loaded from TRADEFL_SOURCE_DIR);
  // compare on the repo-relative suffix.
  std::multiset<std::pair<std::string, std::string>> got;
  for (const auto& finding : analysis.findings) {
    std::string path = finding.path;
    const std::size_t src = path.rfind("src/");
    if (src != std::string::npos) path.erase(0, src);
    got.insert({finding.rule, path});
  }
  const std::multiset<std::pair<std::string, std::string>> want = {
      {"schema-drift", "src/chain/abi.cpp"},
      {"schema-unpaired", "src/chain/block.cpp"},
      {"schema-unpaired", "src/chain/tx.cpp"},
  };
  EXPECT_EQ(got, want);
}

TEST(SchemaCoverage, MutatingAnyPairIsDetected) {
  const std::vector<SourceFile> files = load_tree();
  ASSERT_FALSE(files.empty());
  const Analysis baseline = analyze_tree(files);

  std::map<std::string, std::size_t> file_index;
  for (std::size_t i = 0; i < files.size(); ++i) file_index[files[i].path] = i;

  // Pairs already drifting (the baselined abi variant codec) can't show a
  // *new* drift, so they are exempt; everything else must be mutation-live.
  std::set<std::string> already_drifting;
  for (const auto& finding : baseline.findings) {
    if (finding.rule == "schema-drift") already_drifting.insert(finding.path);
  }

  std::size_t verified = 0;
  for (const CodecPair& pair : baseline.pairs) {
    if (already_drifting.count(pair.writer_file)) continue;

    // Pick a primitive op recorded in the writer's own file and flip its
    // type at the recorded site (put_u32 -> put_u8, ...).
    const CodecOp* target = nullptr;
    for (const CodecOp& op : pair.writer_ops) {
      if (!op.type.empty() && op.type[0] != '#' && op.file == pair.writer_file) {
        target = &op;
        break;
      }
    }
    ASSERT_NE(target, nullptr) << pair.writer_name << " has no direct primitive op";

    const std::string from = "put_" + target->type;
    const std::string to = target->type == "u8" ? "put_u64" : "put_u8";
    std::vector<SourceFile> mutated = files;
    SourceFile& victim = mutated[file_index.at(target->file)];

    // Locate the recorded line inside the file text and rewrite the call.
    std::size_t line_start = 0;
    for (std::size_t line = 1; line < target->line; ++line) {
      line_start = victim.content.find('\n', line_start);
      ASSERT_NE(line_start, std::string::npos) << target->file << ":" << target->line;
      ++line_start;
    }
    const std::size_t line_end = victim.content.find('\n', line_start);
    const std::size_t hit = victim.content.find(from, line_start);
    ASSERT_TRUE(hit != std::string::npos && (line_end == std::string::npos || hit < line_end))
        << pair.writer_name << ": no `" << from << "` on " << target->file << ":"
        << target->line;
    victim.content.replace(hit, from.size(), to);

    const Analysis after = analyze_tree(mutated);
    bool drifted = false;
    for (const auto& finding : after.findings) {
      if (finding.rule == "schema-drift" &&
          finding.message.find("`" + pair.writer_name + "`") != std::string::npos) {
        drifted = true;
      }
    }
    EXPECT_TRUE(drifted) << "mutating " << from << " in " << pair.writer_name << " ("
                         << target->file << ":" << target->line
                         << ") was not reported as schema-drift";
    ++verified;
  }
  // The inventory currently holds 19 pairs; at least the non-abi ones must
  // have been mutation-verified. Guards against the loop silently skipping.
  EXPECT_GE(verified, 15u);
}

}  // namespace
