// In-process tests for the tfl-analyze rule passes. The CLI self-test proves
// each rule end to end; these tests pin down the pieces the fixtures reach
// through — token-walking helpers, local-declaration collection, and the
// finding metadata (paths, lines, messages) the fixtures don't assert on.
#include "analyze/analyzer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace tfl_analyze {
namespace {

Analysis run(const std::vector<SourceFile>& files, const Options& options = {}) {
  return analyze(files, options, nullptr);
}

// ---------------------------------------------------------------------------
// Token-walking helpers
// ---------------------------------------------------------------------------

TEST(Helpers, MatchForwardBalancesMixedBrackets) {
  const auto t = lex("f([&](int a) { g(a); }, b)");
  ASSERT_TRUE(is_punct(t[1], "("));
  const std::size_t close = match_forward(t, 1);
  ASSERT_LT(close, t.size());
  EXPECT_TRUE(is_punct(t[close], ")"));
  EXPECT_EQ(close, t.size() - 1);
}

TEST(Helpers, MatchForwardUnbalancedReturnsEnd) {
  const auto t = lex("f(a, g(b)");
  EXPECT_EQ(match_forward(t, 1), t.size());
}

TEST(Helpers, SplitArgsIgnoresNestedCommas) {
  const auto t = lex("f(a, g(b, c), {d, e})");
  const std::size_t close = match_forward(t, 1);
  const auto args = split_args(t, 1, close);
  ASSERT_EQ(args.size(), 3u);
  EXPECT_TRUE(is_ident(t[args[0].first], "a"));
  EXPECT_TRUE(is_ident(t[args[1].first], "g"));
}

TEST(Helpers, CollectLocalsSeesPlainAndRangeFor) {
  const auto t = lex(
      "double total = 0.0;\n"
      "for (std::size_t i = lo; i < hi; ++i) { }\n"
      "for (const auto& entry : table) { }\n");
  const Locals locals = collect_locals(t, 0, t.size());
  EXPECT_TRUE(locals.contains("total"));
  EXPECT_TRUE(locals.contains("i"));
  EXPECT_TRUE(locals.contains("entry"));
  EXPECT_FALSE(locals.contains("table"));
}

TEST(Helpers, CollectLocalsWalksDeclaratorChains) {
  // The gemm kernel's four-lane accumulators regressed this once: every name
  // in a multi-declarator statement is a local, not just the first.
  const auto t = lex("float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;");
  const Locals locals = collect_locals(t, 0, t.size());
  EXPECT_TRUE(locals.contains("acc0"));
  EXPECT_TRUE(locals.contains("acc1"));
  EXPECT_TRUE(locals.contains("acc2"));
  EXPECT_TRUE(locals.contains("acc3"));
}

// ---------------------------------------------------------------------------
// parallel-* pass: finding metadata
// ---------------------------------------------------------------------------

TEST(ParallelRule, RaceFindingPointsAtTheWrite) {
  const Analysis analysis = run({{"x/race.cpp",
                                  "void f(tradefl::ThreadPool* pool, std::vector<double>& w) {\n"
                                  "  double total = 0.0;\n"
                                  "  parallel_for(pool, 0, w.size(), 64,\n"
                                  "               [&](std::size_t lo, std::size_t hi, std::size_t) {\n"
                                  "    for (std::size_t i = lo; i < hi; ++i) total += w[i];\n"
                                  "  });\n"
                                  "}\n"}});
  ASSERT_EQ(analysis.findings.size(), 1u);
  EXPECT_EQ(analysis.findings[0].rule, "parallel-capture");
  EXPECT_EQ(analysis.findings[0].path, "x/race.cpp");
  EXPECT_EQ(analysis.findings[0].line, 5u);
  EXPECT_NE(analysis.findings[0].message.find("total"), std::string::npos);
}

TEST(ParallelRule, LambdaLocalAccumulatorIsClean) {
  const Analysis analysis =
      run({{"x/local.cpp",
            "void f(tradefl::ThreadPool* pool, std::vector<double>& w) {\n"
            "  parallel_for(pool, 0, w.size(), 64,\n"
            "               [&](std::size_t lo, std::size_t hi, std::size_t) {\n"
            "    double total = 0.0;\n"
            "    for (std::size_t i = lo; i < hi; ++i) total += w[i];\n"
            "  });\n"
            "}\n"}});
  EXPECT_TRUE(analysis.findings.empty());
}

TEST(ParallelRule, SequentialCodeNeverFires) {
  const Analysis analysis = run({{"x/serial.cpp",
                                  "void f(std::vector<double>& w, double& total) {\n"
                                  "  for (std::size_t i = 0; i < w.size(); ++i) total += w[i];\n"
                                  "  tradefl::Rng rng(7);\n"
                                  "  total += rng.uniform01();\n"
                                  "}\n"}});
  EXPECT_TRUE(analysis.findings.empty());
}

TEST(ParallelRule, FindingsAreSortedAndStable) {
  const std::vector<SourceFile> files = {
      {"b/second.cpp",
       "void f(tradefl::ThreadPool* pool, double& acc) {\n"
       "  run_chunks(pool, 4, [&](std::size_t c, std::size_t) { acc += c; });\n"
       "}\n"},
      {"a/first.cpp",
       "void g(tradefl::ThreadPool* pool, double& acc) {\n"
       "  run_chunks(pool, 4, [&](std::size_t c, std::size_t) { acc += c; });\n"
       "}\n"}};
  const Analysis analysis = run(files);
  ASSERT_EQ(analysis.findings.size(), 2u);
  EXPECT_EQ(analysis.findings[0].path, "a/first.cpp");
  EXPECT_EQ(analysis.findings[1].path, "b/second.cpp");
}

// ---------------------------------------------------------------------------
// schema pass: pair records
// ---------------------------------------------------------------------------

TEST(SchemaRule, CleanPairIsRecordedWithItsOps) {
  const Analysis analysis = run({{"x/codec.cpp",
                                  "void put_point(SnapshotWriter& writer, const Point& p) {\n"
                                  "  writer.put_f64(p.x);\n"
                                  "  writer.put_f64(p.y);\n"
                                  "}\n"
                                  "Point get_point(SnapshotReader& reader) {\n"
                                  "  Point p;\n"
                                  "  p.x = reader.get_f64();\n"
                                  "  p.y = reader.get_f64();\n"
                                  "  return p;\n"
                                  "}\n"}});
  EXPECT_TRUE(analysis.findings.empty());
  ASSERT_EQ(analysis.pairs.size(), 1u);
  const CodecPair& pair = analysis.pairs[0];
  EXPECT_EQ(pair.writer_name, "put_point");
  EXPECT_EQ(pair.reader_name, "get_point");
  ASSERT_EQ(pair.writer_ops.size(), 2u);
  ASSERT_EQ(pair.reader_ops.size(), 2u);
  EXPECT_EQ(pair.writer_ops[0].type, "f64");
  EXPECT_EQ(pair.writer_ops[0].line, 2u);
}

TEST(SchemaRule, DriftNamesBothSidesAndTheOp) {
  const Analysis analysis = run({{"x/drift.cpp",
                                  "void put_row(SnapshotWriter& writer, const Row& r) {\n"
                                  "  writer.put_u32(r.id);\n"
                                  "}\n"
                                  "Row get_row(SnapshotReader& reader) {\n"
                                  "  Row r;\n"
                                  "  r.id = reader.get_u64();\n"
                                  "  return r;\n"
                                  "}\n"}});
  ASSERT_EQ(analysis.findings.size(), 1u);
  const auto& finding = analysis.findings[0];
  EXPECT_EQ(finding.rule, "schema-drift");
  EXPECT_NE(finding.message.find("put_row"), std::string::npos);
  EXPECT_NE(finding.message.find("get_row"), std::string::npos);
  EXPECT_NE(finding.message.find("u32"), std::string::npos);
  EXPECT_NE(finding.message.find("u64"), std::string::npos);
  // The pair is still recorded so coverage reports see it.
  ASSERT_EQ(analysis.pairs.size(), 1u);
}

TEST(SchemaRule, LengthMismatchReportsCounts) {
  const Analysis analysis = run({{"x/len.cpp",
                                  "void put_cfg(SnapshotWriter& writer, const Cfg& c) {\n"
                                  "  writer.put_u32(c.version);\n"
                                  "  writer.put_bool(c.strict);\n"
                                  "}\n"
                                  "Cfg get_cfg(SnapshotReader& reader) {\n"
                                  "  Cfg c;\n"
                                  "  c.version = reader.get_u32();\n"
                                  "  return c;\n"
                                  "}\n"}});
  ASSERT_EQ(analysis.findings.size(), 1u);
  EXPECT_EQ(analysis.findings[0].rule, "schema-drift");
  EXPECT_NE(analysis.findings[0].message.find("writer has 2"), std::string::npos);
  EXPECT_NE(analysis.findings[0].message.find("reader has 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// obs pass: wildcard grammar
// ---------------------------------------------------------------------------

TEST(VocabRule, WildcardMatchesExactlyOneSegment) {
  Options options;
  options.vocab_lines = {"contract.*"};
  options.vocab_path = "vocab.txt";
  // Two-segment suffix must NOT match a one-segment wildcard.
  const Analysis analysis =
      run({{"x/obs.cpp", "void f() { TFL_SPAN(\"contract.calls.count\"); }\n"}}, options);
  // The unknown name fires AND the entry is orphaned: nothing matched it.
  ASSERT_EQ(analysis.findings.size(), 2u);
  std::vector<std::string> rules;
  for (const auto& finding : analysis.findings) rules.push_back(finding.rule);
  std::sort(rules.begin(), rules.end());
  EXPECT_EQ(rules, (std::vector<std::string>{"obs-orphan", "obs-vocab"}));
}

TEST(VocabRule, CommentsAndBlanksInVocabIgnored) {
  Options options;
  options.vocab_lines = {"# header", "", "fl.round", "  "};
  options.vocab_path = "vocab.txt";
  const Analysis analysis =
      run({{"x/obs.cpp", "void f() { TFL_COUNTER_INC(\"fl.round\"); }\n"}}, options);
  EXPECT_TRUE(analysis.findings.empty());
}

TEST(VocabRule, EmptyVocabDisablesBothRules) {
  const Analysis analysis =
      run({{"x/obs.cpp", "void f() { TFL_COUNTER_INC(\"never.registered\"); }\n"}});
  EXPECT_TRUE(analysis.findings.empty());
}

}  // namespace
}  // namespace tfl_analyze
