// Regression test for the documentation side of the obs vocabulary contract:
// tfl-analyze proves code <-> tools/obs_vocab.txt agree; this test proves
// tools/obs_vocab.txt <-> docs/OBSERVABILITY.md agree, closing the triangle.
// (This PR's tree scan originally caught six names instrumented in code but
// missing from the doc's table — this keeps that from regressing.)
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "lint_common.h"

namespace {

std::string must_read(const std::string& relative) {
  const std::string path = std::string(TRADEFL_SOURCE_DIR) + "/" + relative;
  std::string content;
  EXPECT_TRUE(tfl_tools::read_file(path, content)) << path;
  return content;
}

/// Expands one level of `{a,b,c}` alternation groups, the doc's shorthand for
/// metric families (`fl.{local_train,aggregate,eval}.seconds`).
std::vector<std::string> expand_braces(const std::string& text) {
  const std::size_t open = text.find('{');
  if (open == std::string::npos) return {text};
  const std::size_t close = text.find('}', open);
  if (close == std::string::npos) return {text};
  std::vector<std::string> out;
  std::string alternative;
  const std::string prefix = text.substr(0, open);
  const std::string suffix = text.substr(close + 1);
  for (std::size_t i = open + 1; i <= close; ++i) {
    if (i == close || text[i] == ',') {
      for (const std::string& rest : expand_braces(suffix)) {
        out.push_back(prefix + alternative + rest);
      }
      alternative.clear();
    } else {
      alternative.push_back(text[i]);
    }
  }
  return out;
}

/// All dotted names documented in OBSERVABILITY.md: the contents of every
/// inline code span, brace-expanded, with `<placeholder>` segments mapped to
/// the vocabulary's `*` wildcard.
std::set<std::string> documented_names(const std::string& markdown) {
  std::set<std::string> names;
  std::size_t i = 0;
  while ((i = markdown.find('`', i)) != std::string::npos) {
    const std::size_t end = markdown.find('`', i + 1);
    if (end == std::string::npos) break;
    std::string span = markdown.substr(i + 1, end - i - 1);
    i = end + 1;
    if (span.find(' ') != std::string::npos || span.find('.') == std::string::npos) continue;
    // `<kernel>`-style placeholders document a dynamic segment.
    while (true) {
      const std::size_t lt = span.find('<');
      const std::size_t gt = span.find('>', lt == std::string::npos ? 0 : lt);
      if (lt == std::string::npos || gt == std::string::npos) break;
      span.replace(lt, gt - lt + 1, "*");
    }
    for (const std::string& name : expand_braces(span)) names.insert(name);
  }
  return names;
}

TEST(VocabDoc, EveryVocabularyEntryIsDocumented) {
  const std::string vocab = must_read("tools/obs_vocab.txt");
  const std::set<std::string> documented = documented_names(must_read("docs/OBSERVABILITY.md"));
  ASSERT_FALSE(documented.empty());

  std::size_t checked = 0;
  for (std::string line : tfl_tools::split_lines(vocab)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    const std::string name = line.substr(begin, end - begin + 1);
    EXPECT_TRUE(documented.count(name))
        << "vocabulary entry `" << name
        << "` is not documented in docs/OBSERVABILITY.md (code spans, after "
           "{a,b} expansion)";
    ++checked;
  }
  // The vocabulary currently holds ~80 names; a mostly-empty parse would make
  // this test vacuous.
  EXPECT_GE(checked, 50u);
}

TEST(VocabDoc, DeliberateExclusionsStayExcluded) {
  // solver.*.trajectory and bench.<kernel>.speedup are recorded through the
  // registry API, not the TFL_* macros; listing them in the vocabulary would
  // trip obs-orphan. The header comment documents this — keep it true.
  // (bench.load.* is NOT excluded: those are macro sites in
  // src/tradefl/loadgen.cpp, so the family legitimately lives in the
  // vocabulary — hence the speedup-specific patterns below instead of a
  // blanket "bench." check.)
  const std::string vocab = must_read("tools/obs_vocab.txt");
  for (const char* name : {"solver.potential.trajectory", "solver.welfare.trajectory",
                           "solver.payoff_gap.trajectory", ".speedup"}) {
    std::size_t pos = 0;
    while ((pos = vocab.find(name, pos)) != std::string::npos) {
      // Allowed only inside the explanatory header comment.
      const std::size_t line_start = vocab.rfind('\n', pos) + 1;
      EXPECT_EQ(vocab[line_start], '#') << name << " must not be a live vocabulary entry";
      ++pos;
    }
  }
}

}  // namespace
