// Unit tests for the tfl-analyze lexer: the corners that break regex tools
// (raw strings, splices, digit separators, preprocessor lines) must tokenize
// exactly, because every semantic rule walks this stream.
#include "analyze/lexer.h"

#include <gtest/gtest.h>

namespace tfl_analyze {
namespace {

std::vector<Token> toks(const std::string& text) { return lex(text); }

TEST(Lexer, IdentifiersNumbersPunctuation) {
  const auto t = toks("int x = f(a1, 2.5e-3) + 0x1F;");
  ASSERT_EQ(t.size(), 12u);
  EXPECT_TRUE(is_ident(t[0], "int"));
  EXPECT_TRUE(is_ident(t[1], "x"));
  EXPECT_TRUE(is_punct(t[2], "="));
  EXPECT_TRUE(is_ident(t[3], "f"));
  EXPECT_EQ(t[7].kind, Tok::kNumber);
  EXPECT_EQ(t[7].text, "2.5e-3");
  EXPECT_EQ(t[10].kind, Tok::kNumber);
  EXPECT_EQ(t[10].text, "0x1F");
}

TEST(Lexer, MaximalMunchPunctuators) {
  const auto t = toks("a::b->c <<= d >>= e ... f ->* g .* h ## i");
  std::vector<std::string> puncts;
  for (const Token& tok : t) {
    if (tok.kind == Tok::kPunct) puncts.push_back(tok.text);
  }
  EXPECT_EQ(puncts, (std::vector<std::string>{"::", "->", "<<=", ">>=", "...", "->*", ".*", "##"}));
}

TEST(Lexer, DigitSeparatorIsNotCharLiteral) {
  const auto t = toks("std::uint64_t n = 1'000'000; char c = 'x';");
  // 1'000'000 must be one number token, 'x' one char token.
  bool saw_number = false, saw_char = false;
  for (const Token& tok : t) {
    if (tok.kind == Tok::kNumber && tok.text == "1'000'000") saw_number = true;
    if (tok.kind == Tok::kChar && tok.text == "x") saw_char = true;
    EXPECT_NE(tok.text, "000");  // separator never splits the literal
  }
  EXPECT_TRUE(saw_number);
  EXPECT_TRUE(saw_char);
}

TEST(Lexer, StringLiteralKeepsEscapes) {
  const auto t = toks("const char* s = \"a\\\"b\\n\";");
  ASSERT_GE(t.size(), 6u);
  EXPECT_EQ(t[5].kind, Tok::kString);
  EXPECT_EQ(t[5].text, "a\\\"b\\n");
}

TEST(Lexer, EncodingPrefixedLiterals) {
  const auto t = toks("auto a = u8\"x\"; auto b = L'y';");
  bool saw_string = false, saw_char = false;
  for (const Token& tok : t) {
    if (tok.kind == Tok::kString && tok.text == "x") saw_string = true;
    if (tok.kind == Tok::kChar && tok.text == "y") saw_char = true;
  }
  EXPECT_TRUE(saw_string);
  EXPECT_TRUE(saw_char);
}

TEST(Lexer, RawStringCustomDelimiter) {
  // The )" inside must not close the literal; only )x" does.
  const auto t = toks("const char* s = R\"x(quote \" close )\" still)x\"; int k;");
  ASSERT_GE(t.size(), 6u);
  EXPECT_EQ(t[5].kind, Tok::kString);
  EXPECT_EQ(t[5].text, "quote \" close )\" still");
  // Code after the literal still tokenizes.
  EXPECT_TRUE(is_ident(t[t.size() - 3], "int"));
  EXPECT_TRUE(is_ident(t[t.size() - 2], "k"));
}

TEST(Lexer, RawStringAdvancesLineNumbers) {
  const auto t = toks("auto s = R\"(line one\nline two\n)\";\nint after;");
  // `after` sits on line 4: the raw string spans lines 1-3.
  bool found = false;
  for (const Token& tok : t) {
    if (is_ident(tok, "after")) {
      EXPECT_EQ(tok.line, 4u);
      found = true;
    }
  }
  ASSERT_TRUE(found);
}

TEST(Lexer, LineSpliceJoinsTokens) {
  const auto t = toks("int ab\\\ncd = 1;\nint next;");
  ASSERT_GE(t.size(), 5u);
  EXPECT_TRUE(is_ident(t[1], "abcd"));
  EXPECT_EQ(t[1].line, 1u);
  // The splice consumed a physical line: `next` is on line 3.
  for (const Token& tok : t) {
    if (is_ident(tok, "next")) {
      EXPECT_EQ(tok.line, 3u);
    }
  }
}

TEST(Lexer, SpliceStaysLiteralInsideRawString) {
  const auto t = toks("auto s = R\"(a\\\nb)\";");
  ASSERT_GE(t.size(), 4u);
  EXPECT_EQ(t[3].kind, Tok::kString);
  // Phase-1 revert: the backslash-newline survives verbatim inside.
  EXPECT_EQ(t[3].text, "a\\\nb");
}

TEST(Lexer, PreprocessorDirectivesSkipped) {
  const auto t = toks("#include <vector>\n#define FOO bar(1, 2)\nint real;\n");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_TRUE(is_ident(t[0], "int"));
  EXPECT_TRUE(is_ident(t[1], "real"));
  EXPECT_EQ(t[0].line, 3u);
}

TEST(Lexer, SplicedMacroDefinitionFullySkipped) {
  // The continuation lines belong to the directive, not to real code.
  const auto t = toks("#define WIDE(x) do { \\\n  f(x); \\\n} while (false)\nint code;\n");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_TRUE(is_ident(t[0], "int"));
  EXPECT_EQ(t[0].line, 4u);
}

TEST(Lexer, CommentsSkippedEvenWithQuotes) {
  const auto t = toks("int a; // can't touch \"this\"\n/* nor 'this' */ int b;");
  std::size_t idents = 0;
  for (const Token& tok : t) {
    if (tok.kind == Tok::kIdent) ++idents;
    EXPECT_NE(tok.kind, Tok::kString);
    EXPECT_NE(tok.kind, Tok::kChar);
  }
  EXPECT_EQ(idents, 4u);  // int a int b
}

TEST(Lexer, HashMidLineIsNotADirective) {
  const auto t = toks("int x = a ## b;\n");
  bool saw = false;
  for (const Token& tok : t) {
    if (is_punct(tok, "##")) saw = true;
  }
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace tfl_analyze
