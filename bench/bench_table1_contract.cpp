// Table I + the prototype paragraph of Sec. VI: the smart contract's key
// functions, exercised end to end on the private chain, with per-function
// gas usage and google-benchmark wall-clock latency (standing in for the
// paper's Xeon testbed measurement).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "chain/tradefl_contract.h"
#include "chain/web3.h"
#include "tradefl/session.h"

using namespace tradefl;

namespace {

struct Proto {
  chain::Blockchain chain;
  chain::Web3Client web3{chain};
  std::vector<chain::Address> orgs;
  chain::Address contract;
  static constexpr chain::Wei kDeposit = 500'000'000'000;

  explicit Proto(std::size_t n = 10) {
    chain::TradeFlContractConfig config;
    config.org_count = n;
    config.gamma_scaled = chain::Fixed::from_double(5.12);
    config.lambda = chain::Fixed::from_double(2.0);
    config.rho.assign(n * n, chain::Fixed{});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j) config.rho[i * n + j] = chain::Fixed::from_double(0.05);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      config.data_size_gb.push_back(chain::Fixed::from_double(20.0));
    }
    config.min_deposit = kDeposit;
    contract = chain.deploy(std::make_unique<chain::TradeFlContract>(config));
    for (std::size_t i = 0; i < n; ++i) {
      orgs.push_back(chain::Address::from_name("org-" + std::to_string(i)));
      chain.credit(orgs[i], 4 * kDeposit);
    }
  }

  void run_through(const std::string& last_step) {
    for (std::size_t i = 0; i < orgs.size(); ++i) {
      web3.call_or_throw(orgs[i], contract, "register",
                         {orgs[i], static_cast<std::uint64_t>(i)});
    }
    if (last_step == "register") return;
    for (const auto& org : orgs) {
      web3.call_or_throw(org, contract, "depositSubmit", {}, kDeposit);
    }
    if (last_step == "deposit") return;
    for (std::size_t i = 0; i < orgs.size(); ++i) {
      web3.call_or_throw(orgs[i], contract, "contributionSubmit",
                         {chain::Fixed::from_double(0.1 + 0.08 * static_cast<double>(i)),
                          chain::Fixed::from_double(3.0)});
    }
    if (last_step == "contribute") return;
    web3.call_or_throw(orgs[0], contract, "payoffCalculate");
    if (last_step == "calculate") return;
    web3.call_or_throw(orgs[0], contract, "payoffTransfer");
  }
};

std::uint64_t last_gas(Proto& proto) {
  return proto.chain.receipts().back().gas_used;
}

void BM_depositSubmit(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Proto proto;
    proto.run_through("register");
    state.ResumeTiming();
    proto.web3.call_or_throw(proto.orgs[0], proto.contract, "depositSubmit", {},
                             Proto::kDeposit);
  }
}
BENCHMARK(BM_depositSubmit);

void BM_contributionSubmit(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Proto proto;
    proto.run_through("deposit");
    state.ResumeTiming();
    proto.web3.call_or_throw(proto.orgs[0], proto.contract, "contributionSubmit",
                             {chain::Fixed::from_double(0.5), chain::Fixed::from_double(3.0)});
  }
}
BENCHMARK(BM_contributionSubmit);

void BM_payoffCalculate(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Proto proto;
    proto.run_through("contribute");
    state.ResumeTiming();
    proto.web3.call_or_throw(proto.orgs[0], proto.contract, "payoffCalculate");
  }
}
BENCHMARK(BM_payoffCalculate);

void BM_payoffTransfer(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Proto proto;
    proto.run_through("calculate");
    state.ResumeTiming();
    proto.web3.call_or_throw(proto.orgs[0], proto.contract, "payoffTransfer");
  }
}
BENCHMARK(BM_payoffTransfer);

void BM_profileRecord(benchmark::State& state) {
  Proto proto;
  proto.run_through("calculate");
  for (auto _ : state) {
    proto.web3.call_or_throw(proto.orgs[0], proto.contract, "profileRecord",
                             {std::uint64_t{0}});
  }
}
BENCHMARK(BM_profileRecord);

}  // namespace

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Table I / prototype",
                "the smart contract's key functions execute the trading mechanism "
                "credibly: deposits, contributions, payoff calculation/transfer, and "
                "profile records for arbitration");

  // ---- Functional walkthrough with gas accounting. ----
  AsciiTable table({"function", "description", "gas"},
                   {Align::kLeft, Align::kLeft, Align::kRight});
  Proto proto;
  proto.web3.call_or_throw(proto.orgs[0], proto.contract, "register",
                           {proto.orgs[0], std::uint64_t{0}});
  table.add_row({"register()", "join the trading round", std::to_string(last_gas(proto))});
  for (std::size_t i = 1; i < proto.orgs.size(); ++i) {
    proto.web3.call_or_throw(proto.orgs[i], proto.contract, "register",
                             {proto.orgs[i], static_cast<std::uint64_t>(i)});
  }
  for (const auto& org : proto.orgs) {
    proto.web3.call_or_throw(org, proto.contract, "depositSubmit", {}, Proto::kDeposit);
  }
  table.add_row({"depositSubmit()", "issue bonds to the contract",
                 std::to_string(last_gas(proto))});
  for (std::size_t i = 0; i < proto.orgs.size(); ++i) {
    proto.web3.call_or_throw(proto.orgs[i], proto.contract, "contributionSubmit",
                             {chain::Fixed::from_double(0.1 + 0.08 * static_cast<double>(i)),
                              chain::Fixed::from_double(3.0)});
  }
  table.add_row({"contributionSubmit()", "submit contribution {d*, f*}",
                 std::to_string(last_gas(proto))});
  proto.web3.call_or_throw(proto.orgs[0], proto.contract, "payoffCalculate");
  table.add_row({"payoffCalculate()", "calculate the payoff (Eq. 9)",
                 std::to_string(last_gas(proto))});
  proto.web3.call_or_throw(proto.orgs[0], proto.contract, "payoffTransfer");
  table.add_row({"payoffTransfer()", "perform payoff redistribution",
                 std::to_string(last_gas(proto))});
  proto.web3.call_or_throw(proto.orgs[0], proto.contract, "profileRecord",
                           {std::uint64_t{0}});
  table.add_row({"profileRecord()", "record the contribution profile",
                 std::to_string(last_gas(proto))});
  bench::emit(config, "table1_contract", table);

  const auto validation = proto.chain.validate();
  std::printf("chain after full round: %zu blocks, %zu events, validation %s\n",
              proto.chain.block_count(), proto.chain.events().size(),
              validation.valid ? "VALID" : validation.problem.c_str());
  chain::Wei sum = 0;
  for (const auto& org : proto.orgs) sum += proto.chain.balance(org);
  std::printf("sum of org balances preserved: %lld wei across %zu organizations\n\n",
              static_cast<long long>(sum), proto.orgs.size());

  // ---- Latency micro-benchmarks (google-benchmark). ----
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
