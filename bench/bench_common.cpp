#include "bench_common.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/parallel.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace tradefl::bench {

Config parse_args(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (starts_with(arg, "--")) continue;  // google-benchmark flags
    args.push_back(arg);
  }
  // Benches always record telemetry; write_manifest persists it per figure.
  obs::set_enabled(true);
  auto parsed = Config::from_args(args);
  if (!parsed.ok()) {
    std::cerr << "bad arguments: " << parsed.error().to_string() << "\n";
    return Config{};
  }
  // threads=N sizes the shared pool; being a config entry, the value lands in
  // the run manifest automatically.
  const std::int64_t threads = parsed.value().get_int("threads", 1);
  set_global_threads(threads < 1 ? 1 : static_cast<std::size_t>(threads));
  return parsed.value();
}

void banner(const std::string& experiment_id, const std::string& claim) {
  std::printf("================================================================\n");
  std::printf("TradeFL reproduction — %s\n", experiment_id.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

void emit(const Config& config, const std::string& name, const AsciiTable& table,
          const CsvWriter* csv) {
  std::printf("%s\n", table.render().c_str());
  const std::string dir = config.get_string("csv", "");
  if (!dir.empty() && csv != nullptr) {
    const std::string path = dir + "/" + name + ".csv";
    if (auto status = csv->write_file(path); status.ok()) {
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::printf("csv write failed: %s\n", status.error().to_string().c_str());
    }
  }
}

Status write_text_file(const std::string& path, const std::string& text) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Error{"io", "bench: cannot open " + path + " for writing"};
  file << text;
  file.flush();
  if (!file) return Error{"io", "bench: short write to " + path};
  return ok_status();
}

Status write_manifest(const Config& config, const std::string& name) {
  const std::string dir = config.get_string("csv", "");
  if (dir.empty()) return ok_status();
  const std::string path = dir + "/" + name + ".manifest.json";
  std::ostringstream payload;
  payload << "{\n  \"bench\": \"" << name << "\",\n  \"config\": {";
  const auto& entries = config.entries();
  std::size_t i = 0;
  for (const auto& [key, value] : entries) {
    payload << (i++ == 0 ? "\n" : ",\n") << "    \"" << key << "\": \"" << value << "\"";
  }
  payload << (entries.empty() ? "" : "\n  ") << "},\n  \"metrics\": "
          << obs::metrics().snapshot().to_json() << "}\n";
  const Status written = write_text_file(path, payload.str());
  if (!written.ok()) {
    std::cerr << "manifest write failed: " << written.error().to_string() << "\n";
    return written;
  }
  std::printf("wrote %s\n", path.c_str());
  return ok_status();
}

SweepStats replicate(const std::vector<double>& values) {
  SweepStats stats;
  if (values.empty()) return stats;
  double total = 0.0;
  for (double v : values) total += v;
  stats.mean = total / static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) ss += (v - stats.mean) * (v - stats.mean);
  stats.stddev = std::sqrt(ss / static_cast<double>(values.size()));
  return stats;
}

double extract_metric(const core::MechanismResult& result, Metric metric) {
  switch (metric) {
    case Metric::kWelfare: return result.welfare;
    case Metric::kDamage: return result.total_damage;
    case Metric::kDataFraction: return result.total_data_fraction;
    case Metric::kPotential: return result.potential;
    case Metric::kPerformance: return result.performance;
  }
  return 0.0;
}

std::vector<double> metric_over_seeds(const game::ExperimentSpec& spec, core::Scheme scheme,
                                      Metric metric, std::size_t seeds,
                                      std::uint64_t seed0) {
  std::vector<double> values;
  values.reserve(seeds);
  for (std::size_t s = 0; s < seeds; ++s) {
    const auto game = game::make_experiment_game(spec, seed0 + s);
    const auto result = core::run_scheme(game, scheme);
    values.push_back(extract_metric(result, metric));
  }
  return values;
}

std::vector<double> gamma_grid() {
  return {1e-10, 5e-10, 1e-9, 2e-9, 5.12e-9, 1e-8, 2e-8, 5e-8, 1e-7};
}

}  // namespace tradefl::bench
