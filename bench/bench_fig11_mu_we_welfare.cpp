// Fig. 11 — welfare vs competition intensity mu and the training-overhead
// weight omega_e: welfare decreases as either escalates.
#include <cstdio>

#include "bench_common.h"

using namespace tradefl;

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Fig. 11",
                "welfare decreases as the competition intensity mu and the training "
                "overhead weight omega_e escalate");

  const std::size_t seeds = static_cast<std::size_t>(config.get_int("seeds", 3));
  const std::vector<double> mus{0.01, 0.03, 0.05, 0.08, 0.12};
  const game::ExperimentSpec base;
  const std::vector<double> omega_es{base.params.omega_e * 0.5, base.params.omega_e,
                                     base.params.omega_e * 2.0, base.params.omega_e * 4.0};

  std::vector<std::string> header{"mu"};
  for (double we : omega_es) header.push_back("omega_e=" + format_double(we));
  AsciiTable table(header);
  CsvWriter csv(header);
  std::vector<std::vector<double>> grid;
  for (double mu : mus) {
    std::vector<double> row{mu};
    for (double we : omega_es) {
      game::ExperimentSpec spec;
      spec.rho_mean = mu;
      spec.params.omega_e = we;
      row.push_back(
          bench::replicate(bench::metric_over_seeds(spec, core::Scheme::kDbr,
                                                    bench::Metric::kWelfare, seeds))
              .mean);
    }
    grid.push_back(row);
    table.add_row_doubles(row, 7);
    csv.add_row_doubles(row);
  }
  bench::emit(config, "fig11_mu_we_welfare", table, &csv);

  // Trend checks along both axes.
  bool down_in_we = true;
  for (const auto& row : grid) {
    for (std::size_t c = 2; c < row.size(); ++c) {
      if (row[c] > row[c - 1] + 1e-6) down_in_we = false;
    }
  }
  bool down_in_mu = true;
  for (std::size_t c = 1; c <= omega_es.size(); ++c) {
    if (grid.back()[c] > grid.front()[c] + 1e-6) down_in_mu = false;
  }
  std::printf("welfare decreasing in omega_e: %s; decreasing in mu (end vs start): %s\n\n",
              down_in_we ? "CONFIRMED" : "NOT OBSERVED",
              down_in_mu ? "CONFIRMED" : "NOT OBSERVED");
  return 0;
}
