// Serve bench — daemon-side throughput and admission latency SLOs. Boots an
// in-process `tradefl serve` per pass, pushes a burst of session requests
// through the wire protocol, and emits the canonical BENCH_serve.json
// manifest the CI regression gate diffs against
// bench/baselines/bench_serve.fast.json (tools/tfl_bench_diff.cpp):
// sessions/sec plus server.admission.seconds / server.session.seconds
// p50/p99.
//
// Knobs (key=value): sessions= orgs= workers= seed=
//   repeats=N   timed passes per run; the best pass is reported (default 3)
//   fast=1      shrunk workload for smoke runs and the CI gate
//   out=DIR     where BENCH_serve.json lands (default ".")
//   root=DIR    daemon scratch state dir (default "serve-load-state"; wiped
//               before every pass)
//   csv=DIR     also write the summary CSV + standard run manifest
//   client=1    print the request lines instead of benching — the CI drain
//               stage pipes exactly this workload into a REAL serve process
//               before SIGTERMing it.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "tradefl/loadgen.h"

using namespace tradefl;

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);

  loadgen::ServeLoadOptions options;
  if (config.get_bool("fast", false)) options = options.fast();
  options.sessions = static_cast<std::size_t>(config.get_int("sessions", options.sessions));
  options.orgs = static_cast<std::size_t>(config.get_int("orgs", options.orgs));
  options.workers = static_cast<std::size_t>(config.get_int("workers", options.workers));
  options.seed = static_cast<std::uint64_t>(config.get_int("seed", options.seed));
  options.repeats = static_cast<std::size_t>(config.get_int("repeats", options.repeats));
  options.root = config.get_string("root", options.root);

  if (config.get_bool("client", false)) {
    // Client mode: emit the workload, not the bench. No banner — the output
    // is piped verbatim into a serve process's stdin.
    for (const std::string& line : loadgen::serve_request_lines(options)) {
      std::printf("%s\n", line.c_str());
    }
    return 0;
  }

  bench::banner("serve bench — daemon throughput and admission latency",
                "burst of session requests through the serve daemon's wire "
                "protocol; best-of-N sessions/s plus server.* p50/p99");

  const std::string out_dir = config.get_string("out", ".");
  loadgen::LoadReport report;
  try {
    report = loadgen::run_serve_load(options);
  } catch (const std::exception& failure) {
    std::cerr << "bench_serve: " << failure.what() << "\n";
    return 1;
  }
  std::printf("serve load: %llu sessions in %.3fs -> %.2f sessions/s (%zu workers)\n",
              static_cast<unsigned long long>(report.operations), report.wall_seconds,
              report.ops_per_sec, options.workers);

  const std::vector<std::string> header{"load",  "operations", "wall_s", "ops_per_sec",
                                        "phase", "count",      "p50_us", "p99_us",
                                        "max_us"};
  AsciiTable table(header);
  CsvWriter csv(header);
  for (const loadgen::PhaseStats& phase : report.phases) {
    const std::vector<std::string> row{report.name,
                                       std::to_string(report.operations),
                                       format_double(report.wall_seconds, 4),
                                       format_double(report.ops_per_sec, 2),
                                       phase.name,
                                       std::to_string(phase.count),
                                       format_double(phase.p50 * 1e6, 2),
                                       format_double(phase.p99 * 1e6, 2),
                                       format_double(phase.max * 1e6, 2)};
    table.add_row(row);
    csv.add_row(row);
  }
  bench::emit(config, "bench_serve", table, &csv);

  int exit_code = 0;
  const std::string manifest = loadgen::serve_manifest_json(report, options);
  const Status written = bench::write_text_file(out_dir + "/BENCH_serve.json", manifest);
  if (!written.ok()) {
    std::cerr << "bench_serve: " << written.error().to_string() << "\n";
    exit_code = 1;
  } else {
    std::printf("wrote %s\n", (out_dir + "/BENCH_serve.json").c_str());
  }
  if (!bench::write_manifest(config, "bench_serve").ok()) exit_code = 1;
  return exit_code;
}
