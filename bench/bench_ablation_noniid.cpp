// Ablation — the i.i.d. assumption (footnote 4): the paper investigates
// P(d_i, d_-i) under i.i.d. organizational data. This bench probes how
// label-skewed (Dirichlet) shards change the picture: global accuracy at
// fixed contributions as skew increases, and whether the measured
// data-accuracy curve keeps its Eq. (5) shape.
#include <cstdio>

#include "bench_common.h"
#include "fl/dataset.h"
#include "fl/fedavg.h"

using namespace tradefl;

namespace {

double run_skewed(double alpha, double fraction, std::size_t samples, std::size_t rounds,
                  std::uint64_t seed) {
  const auto concept_spec = fl::DatasetSpec::builtin(fl::DatasetKind::kFmnistLike, seed);
  Rng rng(seed * 7 + 1);
  std::vector<fl::Dataset> locals;
  std::vector<fl::FedClient> clients;
  for (std::size_t i = 0; i < 5; ++i) {
    auto spec = concept_spec.with_sample_seed(seed + i + 1);
    if (alpha > 0.0) {
      spec = spec.with_class_weights(
          fl::dirichlet_class_weights(concept_spec.classes, alpha, rng));
    }
    locals.emplace_back(spec, samples);
  }
  for (std::size_t i = 0; i < 5; ++i) {
    clients.push_back(fl::FedClient{&locals[i], fraction, seed * 31 + i});
  }
  const fl::Dataset test_set(concept_spec.with_sample_seed(seed + 999), 300);
  fl::ModelSpec model;
  model.kind = fl::ModelKind::kMlp;
  model.channels = concept_spec.channels;
  model.height = concept_spec.height;
  model.width = concept_spec.width;
  model.classes = concept_spec.classes;
  model.seed = seed;
  fl::FedAvgOptions options;
  options.rounds = rounds;
  options.local_epochs = 2;
  return fl::train_fedavg(model, clients, test_set, options).final_accuracy;
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Ablation: non-IID shards (footnote 4)",
                "the paper assumes i.i.d. organizational data; label skew degrades "
                "the trained accuracy but the more-data-helps shape survives mild skew");

  const bool fast = config.get_bool("fast", false);
  const std::size_t samples = fast ? 100 : 250;
  const std::size_t rounds = fast ? 4 : 8;

  // alpha = 0 encodes the IID baseline (uniform class draws).
  const std::vector<double> alphas{0.0, 10.0, 1.0, 0.3, 0.1};
  const std::vector<double> fractions{0.2, 0.6, 1.0};

  std::vector<std::string> header{"skew"};
  for (double fraction : fractions) {
    header.push_back("acc @ d=" + format_double(fraction));
  }
  AsciiTable table(header);
  CsvWriter csv(header);
  for (double alpha : alphas) {
    std::vector<std::string> row{alpha == 0.0 ? std::string("IID")
                                              : "Dir(" + format_double(alpha) + ")"};
    for (double fraction : fractions) {
      row.push_back(format_double(run_skewed(alpha, fraction, samples, rounds, 42), 4));
    }
    table.add_row(row);
    std::vector<std::string> csv_row = row;
    csv.add_row(csv_row);
  }
  bench::emit(config, "ablation_noniid", table, &csv);
  std::printf("reading: rows go from IID to heavy label skew. Accuracy falls with skew\n"
              "(client updates conflict), but within each row accuracy still rises with\n"
              "the contributed fraction d — the monotonicity the mechanism relies on.\n\n");
  return 0;
}
