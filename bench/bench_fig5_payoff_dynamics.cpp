// Fig. 5 — dynamics of organizations' payoffs C_i under DBR: each org
// best-responds autonomously and the payoffs settle at the NE. The paper
// plots fully synchronous updates (slower convergence), so this bench uses
// Jacobi mode; pass sequential=1 for the Gauss-Seidel variant.
#include <cstdio>

#include "bench_common.h"
#include "obs/metrics.h"

using namespace tradefl;

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Fig. 5",
                "per-organization payoffs under DBR converge to the NE within ~25 "
                "decision slots");

  const auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  const auto game = game::make_default_game(seed);

  core::DbrOptions options;
  options.sequential_updates = config.get_bool("sequential", false);
  const core::Solution solution = run_dbr(game, options);

  // The per-iteration payoff spread comes from the registry series fed by
  // append_iteration (max_i C_i - min_i C_i per decision slot).
  const auto snapshot = obs::metrics().snapshot();
  const auto* gap_series = snapshot.find_series("solver.payoff_gap.trajectory");

  std::vector<std::string> header{"iteration"};
  for (game::OrgId i = 0; i < game.size(); ++i) header.push_back(game.org(i).name);
  header.push_back("payoff_gap");
  AsciiTable table(header);
  CsvWriter csv(header);
  std::size_t k = 0;
  for (const auto& record : solution.trace) {
    std::vector<double> row{static_cast<double>(record.iteration)};
    for (double payoff : record.payoffs) row.push_back(payoff);
    row.push_back(gap_series != nullptr && k < gap_series->values.size()
                      ? gap_series->values[k]
                      : 0.0);
    ++k;
    table.add_row_doubles(row, 6);
    csv.add_row_doubles(row);
  }
  bench::emit(config, "fig5_payoff_dynamics", table, &csv);
  if (!bench::write_manifest(config, "fig5_payoff_dynamics").ok()) return 1;

  std::printf("converged=%s after %d iterations; max unilateral gain at NE = %.3e\n\n",
              solution.converged ? "yes" : "no", solution.iterations,
              game.max_unilateral_gain(solution.profile));
  return 0;
}
