// Fig. 5 — dynamics of organizations' payoffs C_i under DBR: each org
// best-responds autonomously and the payoffs settle at the NE. The paper
// plots fully synchronous updates (slower convergence), so this bench uses
// Jacobi mode; pass sequential=1 for the Gauss-Seidel variant.
#include <cstdio>

#include "bench_common.h"

using namespace tradefl;

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Fig. 5",
                "per-organization payoffs under DBR converge to the NE within ~25 "
                "decision slots");

  const auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  const auto game = game::make_default_game(seed);

  core::DbrOptions options;
  options.sequential_updates = config.get_bool("sequential", false);
  const core::Solution solution = run_dbr(game, options);

  std::vector<std::string> header{"iteration"};
  for (game::OrgId i = 0; i < game.size(); ++i) header.push_back(game.org(i).name);
  AsciiTable table(header);
  CsvWriter csv(header);
  for (const auto& record : solution.trace) {
    std::vector<double> row{static_cast<double>(record.iteration)};
    for (double payoff : record.payoffs) row.push_back(payoff);
    table.add_row_doubles(row, 6);
    csv.add_row_doubles(row);
  }
  bench::emit(config, "fig5_payoff_dynamics", table, &csv);

  std::printf("converged=%s after %d iterations; max unilateral gain at NE = %.3e\n\n",
              solution.converged ? "yes" : "no", solution.iterations,
              game.max_unilateral_gain(solution.profile));
  return 0;
}
