// FL robustness bench — the Byzantine attack sweep behind docs/ROBUSTNESS.md.
// Runs every adversarial FaultKind (plus an attack-free baseline) against the
// plain Eq. (3) mean and the robust rules, on the same deterministic
// FMNIST-like workload the acceptance suite pins (tests/integration/
// test_byzantine.cpp), and emits a BENCH_fl.json manifest the CI regression
// gate diffs against bench/baselines/bench_fl.fast.json.
//
// Every per-cell metric is deterministic (the training loop is bit-identical
// for any thread count), so the gate's exact-match keys double as a semantic
// drift detector for the aggregation rules: `correct.count` is the number of
// test samples the final model classifies correctly — if a refactor moves the
// arithmetic of an aggregator, the sweep fails before any accuracy test does.
// Only `rounds_per_sec` / `wall_seconds` carry timing noise and get the usual
// throughput slack.
//
// Knobs (key=value): silos= samples= test_samples= rounds= local_epochs=
//   attackers=N  Byzantine silos per attacked cell (default 1, keeps krum:1
//                inside the Blanchard n > 2f + 2 regime)
//   seed=N       fault-schedule seed (default 11, as in the acceptance suite)
//   fast=1       shrunk workload for smoke runs and the CI gate
//   out=DIR      where BENCH_fl.json lands (default ".")
//   csv=DIR      also write the sweep CSV + standard run manifest
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/faults.h"
#include "fl/fedavg.h"

using namespace tradefl;

namespace {

struct SweepOptions {
  std::size_t silos = 7;
  std::size_t samples = 120;       // per-silo training samples
  std::size_t test_samples = 200;  // shared held-out set
  std::size_t rounds = 10;
  std::size_t local_epochs = 3;
  std::size_t max_batches = 8;
  std::size_t attackers = 1;
  std::uint64_t seed = 11;

  [[nodiscard]] SweepOptions fast() const {
    SweepOptions out = *this;
    out.silos = 5;
    out.samples = 64;
    out.test_samples = 128;
    out.rounds = 3;
    out.local_epochs = 1;
    out.max_batches = 4;
    return out;
  }
};

/// One sweep cell: the attack-free baseline or one FaultKind, under one rule.
struct CellResult {
  std::string attack;
  std::string rule;
  double accuracy = 0.0;
  std::size_t correct = 0;  // accuracy * test_samples, exact-match gated
  std::size_t attacked = 0;
  std::size_t rejected = 0;
  std::size_t clipped = 0;
  std::size_t rounds = 0;
  double wall_seconds = 0.0;
};

FaultPlan attack_plan(const std::string& kind, const SweepOptions& sweep) {
  FaultPlan plan;
  plan.seed = sweep.seed;
  if (kind == "signflip") plan.signflip_silos = sweep.attackers;
  if (kind == "amplify") plan.scale_silos = sweep.attackers;
  if (kind == "freeride") plan.freeride_silos = sweep.attackers;
  if (kind == "collude") plan.collude_silos = sweep.attackers;
  return plan;
}

std::string json_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

std::string manifest_json(const SweepOptions& sweep, const std::vector<CellResult>& cells,
                          std::size_t operations, double wall_seconds) {
  std::ostringstream out;
  out << "{\"bench\": \"bench_fl\", \"schema\": 1, \"config\": {"
      << "\"silos\": " << sweep.silos << ", \"samples\": " << sweep.samples
      << ", \"test_samples\": " << sweep.test_samples << ", \"rounds\": " << sweep.rounds
      << ", \"local_epochs\": " << sweep.local_epochs
      << ", \"attackers\": " << sweep.attackers << ", \"seed\": " << sweep.seed
      << "}, \"metrics\": {\"rounds_per_sec\": "
      << json_number(wall_seconds > 0.0 ? static_cast<double>(operations) / wall_seconds : 0.0)
      << ", \"operations\": " << operations
      << ", \"wall_seconds\": " << json_number(wall_seconds) << ", \"cells\": {";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    if (i != 0) out << ", ";
    out << "\"" << cell.attack << "." << cell.rule << "\": {"
        << "\"final_accuracy\": " << json_number(cell.accuracy)
        << ", \"correct.count\": " << cell.correct
        << ", \"attacked.count\": " << cell.attacked
        << ", \"rejected.count\": " << cell.rejected
        << ", \"clipped.count\": " << cell.clipped << "}";
  }
  out << "}}}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("fl robustness bench — Byzantine attack sweep",
                "final accuracy and containment counters per attack x "
                "aggregation rule (docs/ROBUSTNESS.md threat-model matrix)");

  SweepOptions sweep;
  if (config.get_bool("fast", false)) sweep = sweep.fast();
  sweep.silos = static_cast<std::size_t>(config.get_int("silos", sweep.silos));
  sweep.samples = static_cast<std::size_t>(config.get_int("samples", sweep.samples));
  sweep.test_samples =
      static_cast<std::size_t>(config.get_int("test_samples", sweep.test_samples));
  sweep.rounds = static_cast<std::size_t>(config.get_int("rounds", sweep.rounds));
  sweep.local_epochs =
      static_cast<std::size_t>(config.get_int("local_epochs", sweep.local_epochs));
  sweep.attackers = static_cast<std::size_t>(config.get_int("attackers", sweep.attackers));
  sweep.seed = static_cast<std::uint64_t>(config.get_int("seed", sweep.seed));
  const std::string out_dir = config.get_string("out", ".");

  // Same population shape as the Byzantine acceptance suite: per-silo draws
  // from one FMNIST-like concept, a shared held-out test set, MLP model.
  const fl::DatasetSpec concept_spec =
      fl::DatasetSpec::builtin(fl::DatasetKind::kFmnistLike, 5);
  std::vector<fl::Dataset> locals;
  for (std::size_t i = 0; i < sweep.silos; ++i) {
    locals.emplace_back(concept_spec.with_sample_seed(10 + i), sweep.samples);
  }
  fl::Dataset test_set(concept_spec.with_sample_seed(999), sweep.test_samples);
  fl::ModelSpec model;
  model.kind = fl::ModelKind::kMlp;
  model.channels = concept_spec.channels;
  model.height = concept_spec.height;
  model.width = concept_spec.width;
  model.classes = concept_spec.classes;
  model.seed = 3;

  const std::vector<std::string> attacks = {"none", "signflip", "amplify", "freeride",
                                            "collude"};
  const std::vector<std::string> rules = {"mean", "median", "trimmed:1", "krum:1",
                                          "normclip:1"};

  const std::vector<std::string> header{"attack", "rule",     "accuracy", "correct",
                                        "attacked", "rejected", "clipped",  "wall_s"};
  AsciiTable table(header);
  CsvWriter csv(header);

  std::vector<CellResult> cells;
  std::size_t operations = 0;
  double wall_seconds = 0.0;
  for (const std::string& attack : attacks) {
    const FaultPlan plan = attack_plan(attack, sweep);
    const FaultInjector injector(plan);
    for (const std::string& rule : rules) {
      std::vector<fl::FedClient> clients;
      for (std::size_t i = 0; i < locals.size(); ++i) {
        clients.push_back(fl::FedClient{&locals[i], 1.0, 100 + i});
      }
      fl::FedAvgOptions options;
      options.rounds = sweep.rounds;
      options.local_epochs = sweep.local_epochs;
      options.batch_size = 32;
      options.max_batches_per_epoch = sweep.max_batches;
      options.aggregator = fl::parse_aggregator(rule).value();
      options.faults = attack == "none" ? nullptr : &injector;

      const auto start = std::chrono::steady_clock::now();
      const fl::FedAvgResult result = fl::train_fedavg(model, clients, test_set, options);
      const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

      CellResult cell;
      cell.attack = attack;
      cell.rule = rule;
      cell.accuracy = result.final_accuracy;
      cell.correct = static_cast<std::size_t>(
          std::llround(result.final_accuracy * static_cast<double>(sweep.test_samples)));
      cell.attacked = result.total_attacked;
      cell.rejected = result.total_rejected;
      cell.clipped = result.total_clipped;
      cell.rounds = result.history.size();
      cell.wall_seconds = elapsed.count();
      cells.push_back(cell);
      operations += cell.rounds;
      wall_seconds += cell.wall_seconds;

      const std::vector<std::string> row{cell.attack,
                                         cell.rule,
                                         format_double(cell.accuracy, 4),
                                         std::to_string(cell.correct),
                                         std::to_string(cell.attacked),
                                         std::to_string(cell.rejected),
                                         std::to_string(cell.clipped),
                                         format_double(cell.wall_seconds, 4)};
      table.add_row(row);
      csv.add_row(row);
    }
  }
  bench::emit(config, "bench_fl", table, &csv);
  std::printf("attack sweep: %zu cells, %zu rounds in %.3fs -> %.2f rounds/s\n", cells.size(),
              operations, wall_seconds,
              wall_seconds > 0.0 ? static_cast<double>(operations) / wall_seconds : 0.0);

  int exit_code = 0;
  const std::string manifest = manifest_json(sweep, cells, operations, wall_seconds);
  const std::string path = out_dir + "/BENCH_fl.json";
  const Status written = bench::write_text_file(path, manifest);
  if (!written.ok()) {
    std::cerr << "bench_fl: " << written.error().to_string() << "\n";
    exit_code = 1;
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
  if (!bench::write_manifest(config, "bench_fl").ok()) exit_code = 1;
  return exit_code;
}
