// Kernel microbenchmarks — the naive seed loops vs the im2col+SGEMM backend
// (fl/gemm.h), plus one end-to-end FedAvg round under each backend. The
// speedup table at the bottom is the acceptance evidence for ISSUE 3
// (>= 3x Conv2D forward, >= 2x FedAvg round vs the serial seed kernels);
// docs/PERFORMANCE.md records the measured numbers. threads=N sizes the
// shared pool (bench::parse_args), so the same binary produces the thread
// sweep columns.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "fl/fedavg.h"
#include "fl/gemm.h"
#include "fl/layers.h"
#include "obs/metrics.h"

using namespace tradefl;

namespace {

void fill_random(float* data, std::size_t count, Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) {
    data[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
}

/// The seed's reference matmul: plain triple loop, C = A(m,k) * B(k,n).
void naive_matmul(std::size_t m, std::size_t n, std::size_t k, const float* a, const float* b,
                  float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
      c[i * n + j] = acc;
    }
  }
}

void bm_sgemm(benchmark::State& state, std::size_t dim, bool use_gemm) {
  Rng rng(11);
  std::vector<float> a(dim * dim), b(dim * dim), c(dim * dim);
  fill_random(a.data(), a.size(), rng);
  fill_random(b.data(), b.size(), rng);
  for (auto _ : state) {
    if (use_gemm) {
      fl::gemm::sgemm_nn(dim, dim, dim, a.data(), dim, b.data(), dim, /*accumulate=*/false,
                         c.data(), dim, global_pool());
    } else {
      naive_matmul(dim, dim, dim, a.data(), b.data(), c.data());
    }
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
}

void bm_conv2d(benchmark::State& state, fl::KernelBackend backend, bool backward,
               std::size_t batch) {
  Rng rng(7);
  fl::Conv2D conv(8, 16, 3, 1, 1, 1, rng);
  fl::Tensor input({batch, 8, 12, 12});
  fill_random(input.data(), input.size(), rng);
  fl::set_kernel_backend(backend);
  fl::Tensor output = conv.forward(input, /*training=*/true);
  fl::Tensor grad(output.shape(), 0.01f);
  for (auto _ : state) {
    if (backward) {
      for (fl::Param* param : conv.parameters()) param->grad.fill(0.0f);
      fl::Tensor grad_input = conv.backward(grad);
      benchmark::DoNotOptimize(grad_input.data());
    } else {
      fl::Tensor out = conv.forward(input, /*training=*/true);
      benchmark::DoNotOptimize(out.data());
    }
    benchmark::ClobberMemory();
  }
  fl::set_kernel_backend(fl::KernelBackend::kGemm);
}

void bm_dense(benchmark::State& state, fl::KernelBackend backend, bool backward,
              std::size_t batch) {
  Rng rng(13);
  fl::Dense dense(256, 128, rng);
  fl::Tensor input({batch, 256});
  fill_random(input.data(), input.size(), rng);
  fl::set_kernel_backend(backend);
  fl::Tensor output = dense.forward(input, /*training=*/true);
  fl::Tensor grad(output.shape(), 0.01f);
  for (auto _ : state) {
    if (backward) {
      for (fl::Param* param : dense.parameters()) param->grad.fill(0.0f);
      fl::Tensor grad_input = dense.backward(grad);
      benchmark::DoNotOptimize(grad_input.data());
    } else {
      fl::Tensor out = dense.forward(input, /*training=*/true);
      benchmark::DoNotOptimize(out.data());
    }
    benchmark::ClobberMemory();
  }
  fl::set_kernel_backend(fl::KernelBackend::kGemm);
}

/// One full FedAvg round (3 clients, AlexNet-lite on the FMNIST profile).
void bm_fedavg_round(benchmark::State& state, fl::KernelBackend backend, std::size_t samples) {
  const std::uint64_t seed = 42;
  const auto spec = fl::DatasetSpec::builtin(fl::DatasetKind::kFmnistLike, seed);
  std::vector<fl::Dataset> locals;
  locals.reserve(3);
  for (std::size_t i = 0; i < 3; ++i) {
    locals.emplace_back(spec.with_sample_seed(seed + i + 1), samples);
  }
  std::vector<fl::FedClient> clients;
  for (std::size_t i = 0; i < 3; ++i) {
    clients.push_back(fl::FedClient{&locals[i], 0.8, seed * 31 + i});
  }
  const fl::Dataset test_set(spec.with_sample_seed(seed + 999), samples);
  fl::ModelSpec model;
  model.kind = fl::ModelKind::kAlexNetLite;
  model.channels = spec.channels;
  model.height = spec.height;
  model.width = spec.width;
  model.classes = spec.classes;
  model.seed = seed;
  fl::FedAvgOptions options;
  options.rounds = 1;
  options.local_epochs = 1;
  fl::set_kernel_backend(backend);
  for (auto _ : state) {
    const fl::FedAvgResult result = fl::train_fedavg(model, clients, test_set, options);
    benchmark::DoNotOptimize(result.final_accuracy);
  }
  fl::set_kernel_backend(fl::KernelBackend::kGemm);
}

/// Console reporter that also captures seconds/iteration per benchmark so the
/// speedup table (and the manifest gauges) can be computed afterwards.
class CaptureReporter final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      const double iterations =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      // Fixed-iteration runs report as "name/iterations:N"; key by the name.
      std::string name = run.benchmark_name();
      if (const auto cut = name.find("/iterations:"); cut != std::string::npos) {
        name.resize(cut);
      }
      seconds_[name] = run.real_accumulated_time / iterations;
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] double seconds(const std::string& name) const {
    const auto it = seconds_.find(name);
    return it == seconds_.end() ? 0.0 : it->second;
  }

 private:
  std::map<std::string, double> seconds_;
};

}  // namespace

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("kernels",
                "im2col+SGEMM backend and the parallel execution layer beat the "
                "naive seed kernels (>= 3x Conv2D forward, >= 2x FedAvg round)");

  const bool fast = config.get_bool("fast", false);
  const std::size_t dim = fast ? 48 : 96;
  const std::size_t conv_batch = fast ? 8 : 16;
  const std::size_t dense_batch = fast ? 16 : 64;
  const std::size_t samples = fast ? 40 : 120;
  const auto iters = [fast](long long n) { return fast ? std::max(1LL, n / 4) : n; };

  benchmark::RegisterBenchmark("sgemm/naive", bm_sgemm, dim, false)
      ->Iterations(iters(40))->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("sgemm/gemm", bm_sgemm, dim, true)
      ->Iterations(iters(40))->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("conv2d_fwd/naive", bm_conv2d, fl::KernelBackend::kNaive, false,
                               conv_batch)
      ->Iterations(iters(40))->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("conv2d_fwd/gemm", bm_conv2d, fl::KernelBackend::kGemm, false,
                               conv_batch)
      ->Iterations(iters(40))->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("conv2d_bwd/naive", bm_conv2d, fl::KernelBackend::kNaive, true,
                               conv_batch)
      ->Iterations(iters(20))->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("conv2d_bwd/gemm", bm_conv2d, fl::KernelBackend::kGemm, true,
                               conv_batch)
      ->Iterations(iters(20))->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("dense_fwd/naive", bm_dense, fl::KernelBackend::kNaive, false,
                               dense_batch)
      ->Iterations(iters(200))->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("dense_fwd/gemm", bm_dense, fl::KernelBackend::kGemm, false,
                               dense_batch)
      ->Iterations(iters(200))->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("dense_bwd/naive", bm_dense, fl::KernelBackend::kNaive, true,
                               dense_batch)
      ->Iterations(iters(100))->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("dense_bwd/gemm", bm_dense, fl::KernelBackend::kGemm, true,
                               dense_batch)
      ->Iterations(iters(100))->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("fedavg_round/naive", bm_fedavg_round,
                               fl::KernelBackend::kNaive, samples)
      ->Iterations(iters(4))->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("fedavg_round/gemm", bm_fedavg_round, fl::KernelBackend::kGemm,
                               samples)
      ->Iterations(iters(4))->Unit(benchmark::kMillisecond);

  benchmark::Initialize(&argc, argv);
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  AsciiTable table({"kernel", "naive us/iter", "gemm us/iter", "speedup"});
  CsvWriter csv({"kernel", "naive_us", "gemm_us", "speedup"});
  for (const char* kernel :
       {"sgemm", "conv2d_fwd", "conv2d_bwd", "dense_fwd", "dense_bwd", "fedavg_round"}) {
    const double naive = reporter.seconds(std::string(kernel) + "/naive");
    const double with_gemm = reporter.seconds(std::string(kernel) + "/gemm");
    const double speedup = with_gemm > 0.0 ? naive / with_gemm : 0.0;
    table.add_labeled_row(kernel, {naive * 1e6, with_gemm * 1e6, speedup}, 3);
    csv.add_row({kernel, format_double(naive * 1e6, 3), format_double(with_gemm * 1e6, 3),
                 format_double(speedup, 3)});
    obs::metrics().gauge(std::string("bench.") + kernel + ".speedup").set(speedup);
  }
  std::printf("threads=%zu\n", global_threads());
  bench::emit(config, "kernels", table, &csv);
  if (!bench::write_manifest(config, "kernels").ok()) return 1;
  return 0;
}
