// Fig. 2 — the pre-experiment: impact of d_i on the data-accuracy function
// P(d_i, d_-i) with d_-i = 0.5, across models/datasets and sample counts
// |S_i|. Verifies the Eq. (5) shape (monotone increasing, muted growth) and
// fits the sqrt-saturation curve.
#include <cstdio>

#include "bench_common.h"
#include "fl/data_accuracy.h"

using namespace tradefl;

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Fig. 2",
                "P(d_i, d_-i) increases with d_i at a muted growth rate (Eq. 5), "
                "across models, datasets, and |S_i|");

  const bool fast = config.get_bool("fast", false);

  struct Combo {
    fl::ModelKind model;
    fl::DatasetKind dataset;
  };
  const std::vector<Combo> combos{
      {fl::ModelKind::kResNet18Lite, fl::DatasetKind::kCifar10Like},
      {fl::ModelKind::kAlexNetLite, fl::DatasetKind::kFmnistLike},
      {fl::ModelKind::kDenseNetLite, fl::DatasetKind::kEurosatLike},
      {fl::ModelKind::kMobileNetLite, fl::DatasetKind::kSvhnLike},
  };
  // The paper varies |S_i| in [2000, 20000]; scaled to this substrate.
  const std::vector<std::size_t> sample_counts = fast
                                                     ? std::vector<std::size_t>{150}
                                                     : std::vector<std::size_t>{150, 350};

  int confirmed = 0, total = 0;
  for (const Combo& combo : combos) {
    for (std::size_t samples : sample_counts) {
      fl::DataAccuracyOptions options;
      options.org_count = 4;
      options.samples_per_org = samples;
      options.test_samples = fast ? 200 : 300;
      options.d_grid = fast ? std::vector<double>{0.1, 0.5, 1.0}
                            : std::vector<double>{0.1, 0.4, 0.7, 1.0};
      options.fedavg.rounds = fast ? 4 : 8;
      options.fedavg.local_epochs = 2;
      options.replications = fast ? 1 : 2;
      options.seed = 17 + samples;
      const auto curve = fl::measure_data_accuracy(combo.model, combo.dataset, options);

      std::printf("---- %s on %s, |S_i| = %zu ----\n", fl::model_name(combo.model),
                  fl::dataset_name(combo.dataset), samples);
      AsciiTable table({"d_0", "omega (samples)", "accuracy", "P = acc - acc_untrained"});
      CsvWriter csv({"d", "omega_samples", "accuracy", "performance"});
      for (const auto& point : curve.points) {
        table.add_row_doubles({point.d, point.omega_samples, point.accuracy,
                               point.performance},
                              5);
        csv.add_row_doubles({point.d, point.omega_samples, point.accuracy,
                             point.performance});
      }
      const std::string name = std::string("fig2_") + fl::model_name(combo.model) + "_" +
                               std::to_string(samples);
      bench::emit(config, name, table, &csv);
      std::printf("fit P ~ a - b/sqrt(omega + c): a=%.4f b=%.4f c=%.1f R2=%.3f | "
                  "Eq.(5): nondecreasing=%s concave=%s\n\n",
                  curve.fit.a, curve.fit.b, curve.fit.c, curve.fit.r_squared,
                  curve.shape.nondecreasing ? "yes" : "no",
                  curve.shape.concave ? "yes" : "no");
      ++total;
      if (curve.shape.nondecreasing) ++confirmed;
    }
  }
  std::printf("Eq. (5) monotonicity confirmed in %d/%d model-dataset curves\n\n", confirmed,
              total);
  return 0;
}
