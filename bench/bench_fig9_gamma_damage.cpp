// Fig. 9 — coopetition damage vs gamma by scheme. Due to the marginal effect
// of data contribution, damage decreases as gamma increases for all schemes
// except WPR (which ignores gamma); DBR reaches the lowest damage.
#include "bench_common.h"

using namespace tradefl;

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Fig. 9",
                "total coopetition damage decreases with gamma for all schemes "
                "except WPR; DBR attains the lowest damage");

  const std::size_t seeds = static_cast<std::size_t>(config.get_int("seeds", 3));
  const std::vector<core::Scheme> schemes{core::Scheme::kDbr, core::Scheme::kWpr,
                                          core::Scheme::kGca, core::Scheme::kFip};
  std::vector<std::string> header{"gamma"};
  for (core::Scheme scheme : schemes) header.push_back(core::scheme_name(scheme));
  AsciiTable table(header);
  CsvWriter csv(header);
  for (double gamma : bench::gamma_grid()) {
    game::ExperimentSpec spec;
    spec.params.gamma = gamma;
    std::vector<double> row{gamma};
    for (core::Scheme scheme : schemes) {
      row.push_back(bench::replicate(bench::metric_over_seeds(
                                         spec, scheme, bench::Metric::kDamage, seeds))
                        .mean);
    }
    table.add_row_doubles(row, 6);
    csv.add_row_doubles(row);
  }
  bench::emit(config, "fig9_gamma_damage", table, &csv);
  return 0;
}
