// Load bench — sustained mechanism throughput and per-phase latency SLOs.
// Drives the deterministic load generator (src/tradefl/loadgen.h) over full
// trading sessions and bulk chain transfers, then emits the canonical
// root-level BENCH_session.json / BENCH_chain.json manifests plus the
// combined BENCH_load.json shape the CI regression gate diffs against
// bench/baselines/bench_load.fast.json (tools/tfl_bench_diff.cpp).
//
// Knobs (key=value): sessions= orgs= transfers= accounts= seal_every= seed=
//   repeats=N   timed passes per load; the best pass is reported (best-of-N
//               damps transient machine-load noise; default 3)
//   threads=N   worker pool for the pipelines (op sequence is identical for
//               any value; only the timing numbers move)
//   fast=1      shrunk workload for smoke runs and the CI gate
//   out=DIR     where the BENCH_*.json manifests land (default ".")
//   csv=DIR     also write the summary CSV + standard run manifest
//   ledger=FILE JSON-lines run ledger of the whole load run
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "tradefl/loadgen.h"

using namespace tradefl;

namespace {

void add_report_row(AsciiTable& table, CsvWriter& csv, const loadgen::LoadReport& report) {
  const auto row_for = [&report](const loadgen::PhaseStats& phase) {
    return std::vector<std::string>{report.name,
                                    std::to_string(report.operations),
                                    format_double(report.wall_seconds, 4),
                                    format_double(report.ops_per_sec, 2),
                                    phase.name,
                                    std::to_string(phase.count),
                                    format_double(phase.p50 * 1e6, 2),
                                    format_double(phase.p99 * 1e6, 2),
                                    format_double(phase.max * 1e6, 2)};
  };
  for (const loadgen::PhaseStats& phase : report.phases) {
    table.add_row(row_for(phase));
    csv.add_row(row_for(phase));
  }
}

int write_bench_json(const std::string& path, const std::string& payload) {
  const Status written = bench::write_text_file(path, payload);
  if (!written.ok()) {
    std::cerr << "bench_load: " << written.error().to_string() << "\n";
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("load bench — serving-side SLO telemetry",
                "sustained sessions/s and tx/s with per-phase p50/p99 latency "
                "(mechanism-as-a-service trajectory, ROADMAP item 1)");

  loadgen::LoadOptions options;
  if (config.get_bool("fast", false)) options = options.fast();
  options.sessions = static_cast<std::size_t>(config.get_int("sessions", options.sessions));
  options.orgs = static_cast<std::size_t>(config.get_int("orgs", options.orgs));
  options.transfers = static_cast<std::size_t>(config.get_int("transfers", options.transfers));
  options.accounts = static_cast<std::size_t>(config.get_int("accounts", options.accounts));
  options.seal_every = static_cast<std::size_t>(config.get_int("seal_every", options.seal_every));
  options.seed = static_cast<std::uint64_t>(config.get_int("seed", options.seed));
  options.repeats = static_cast<std::size_t>(config.get_int("repeats", options.repeats));
  const std::string out_dir = config.get_string("out", ".");

  if (const auto ledger = config.get("ledger")) {
    const Status opened = obs::event_log().open(*ledger);
    if (!opened.ok()) {
      std::cerr << "bench_load: [" << opened.error().code << "] " << opened.error().message
                << "\n";
      return 1;
    }
    const std::int64_t every = config.get_int("ledger_metrics_every", 32);
    obs::event_log().set_metrics_every(every < 0 ? 0 : static_cast<std::size_t>(every));
  }

  const loadgen::LoadReport session_report = loadgen::run_session_load(options);
  std::printf("session load: %llu sessions in %.3fs -> %.2f sessions/s\n",
              static_cast<unsigned long long>(session_report.operations),
              session_report.wall_seconds, session_report.ops_per_sec);
  const std::string session_manifest = loadgen::manifest_json(session_report, options);

  const loadgen::LoadReport chain_report = loadgen::run_chain_load(options);
  std::printf("chain load: %llu transfers in %.3fs -> %.2f tx/s\n",
              static_cast<unsigned long long>(chain_report.operations),
              chain_report.wall_seconds, chain_report.ops_per_sec);

  const std::vector<std::string> header{"load",  "operations", "wall_s",  "ops_per_sec",
                                        "phase", "count",      "p50_us",  "p99_us",
                                        "max_us"};
  AsciiTable table(header);
  CsvWriter csv(header);
  add_report_row(table, csv, session_report);
  add_report_row(table, csv, chain_report);
  bench::emit(config, "bench_load", table, &csv);

  int exit_code = 0;
  exit_code |= write_bench_json(out_dir + "/BENCH_session.json", session_manifest);
  exit_code |= write_bench_json(out_dir + "/BENCH_chain.json",
                                loadgen::manifest_json(chain_report, options));
  exit_code |= write_bench_json(
      out_dir + "/BENCH_load.json",
      loadgen::combined_manifest_json(session_report, chain_report, options));
  if (!bench::write_manifest(config, "bench_load").ok()) exit_code = 1;

  if (obs::event_log().active()) {
    obs::event_log().metrics_event(obs::metrics().snapshot());
    obs::event_log().close();
  }
  return exit_code;
}
