// Fig. 4 — dynamics of the potential-function value. All schemes converge;
// CGBD attains the largest potential with DBR close behind.
#include <cstdio>

#include "bench_common.h"
#include "game/potential.h"

using namespace tradefl;

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Fig. 4",
                "all schemes converge to the NE; CGBD reaches the largest potential, "
                "DBR's gap to CGBD is small");

  const auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  const auto game = game::make_default_game(seed);

  struct Run {
    const char* name;
    core::Solution solution;
  };
  std::vector<Run> runs;
  runs.push_back({"CGBD", core::run_cgbd(game)});
  runs.push_back({"DBR", core::run_dbr(game)});
  runs.push_back({"WPR", core::run_wpr(game)});
  runs.push_back({"GCA", core::run_gca(game)});
  runs.push_back({"FIP", core::run_fip(game)});

  std::size_t max_len = 0;
  for (const Run& run : runs) max_len = std::max(max_len, run.solution.trace.size());

  std::vector<std::string> header{"iteration"};
  for (const Run& run : runs) header.push_back(run.name);
  AsciiTable table(header);
  CsvWriter csv(header);
  for (std::size_t k = 0; k < max_len; ++k) {
    std::vector<double> row{static_cast<double>(k)};
    for (const Run& run : runs) {
      const auto& trace = run.solution.trace;
      const std::size_t idx = std::min(k, trace.size() - 1);  // hold final value
      row.push_back(trace[idx].potential);
    }
    table.add_row_doubles(row, 8);
    csv.add_row_doubles(row);
  }
  bench::emit(config, "fig4_potential_dynamics", table, &csv);

  AsciiTable final_table({"scheme", "final potential", "iterations", "converged"});
  for (const Run& run : runs) {
    final_table.add_row({run.name,
                         format_double(game::potential(game, run.solution.profile), 8),
                         std::to_string(run.solution.iterations),
                         run.solution.converged ? "yes" : "no"});
  }
  bench::emit(config, "fig4_final", final_table);

  const double cgbd = game::potential(game, runs[0].solution.profile);
  const double dbr = game::potential(game, runs[1].solution.profile);
  std::printf("CGBD - DBR potential gap: %.3e (paper: \"rather small\")\n\n", cgbd - dbr);
  return 0;
}
