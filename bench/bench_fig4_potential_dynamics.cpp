// Fig. 4 — dynamics of the potential-function value. All schemes converge;
// CGBD attains the largest potential with DBR close behind.
#include <cstdio>

#include "bench_common.h"
#include "game/potential.h"
#include "obs/metrics.h"

using namespace tradefl;

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Fig. 4",
                "all schemes converge to the NE; CGBD reaches the largest potential, "
                "DBR's gap to CGBD is small");

  const auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  const auto game = game::make_default_game(seed);

  struct Run {
    const char* name;
    core::Solution solution;
    std::vector<double> potentials;  // per-iteration U from the metrics registry
  };
  std::vector<Run> runs;
  // Every scheme feeds solver.potential.trajectory through append_iteration;
  // resetting the registry before each run separates the per-scheme series
  // (and leaves the last run's telemetry in place for write_manifest).
  const auto record = [&runs](const char* name, auto&& solve) {
    obs::metrics().reset();
    core::Solution solution = solve();
    const auto snapshot = obs::metrics().snapshot();
    const auto* series = snapshot.find_series("solver.potential.trajectory");
    runs.push_back({name, std::move(solution),
                    series ? series->values : std::vector<double>{}});
  };
  record("CGBD", [&game] { return core::run_cgbd(game); });
  record("DBR", [&game] { return core::run_dbr(game); });
  record("WPR", [&game] { return core::run_wpr(game); });
  record("GCA", [&game] { return core::run_gca(game); });
  record("FIP", [&game] { return core::run_fip(game); });

  std::size_t max_len = 0;
  for (const Run& run : runs) max_len = std::max(max_len, run.potentials.size());

  std::vector<std::string> header{"iteration"};
  for (const Run& run : runs) header.push_back(run.name);
  AsciiTable table(header);
  CsvWriter csv(header);
  for (std::size_t k = 0; k < max_len; ++k) {
    std::vector<double> row{static_cast<double>(k)};
    for (const Run& run : runs) {
      const std::size_t idx = std::min(k, run.potentials.size() - 1);  // hold final value
      row.push_back(run.potentials[idx]);
    }
    table.add_row_doubles(row, 8);
    csv.add_row_doubles(row);
  }
  bench::emit(config, "fig4_potential_dynamics", table, &csv);
  if (!bench::write_manifest(config, "fig4_potential_dynamics").ok()) return 1;

  AsciiTable final_table({"scheme", "final potential", "iterations", "converged"});
  for (const Run& run : runs) {
    final_table.add_row({run.name,
                         format_double(game::potential(game, run.solution.profile), 8),
                         std::to_string(run.solution.iterations),
                         run.solution.converged ? "yes" : "no"});
  }
  bench::emit(config, "fig4_final", final_table);

  const double cgbd = game::potential(game, runs[0].solution.profile);
  const double dbr = game::potential(game, runs[1].solution.profile);
  std::printf("CGBD - DBR potential gap: %.3e (paper: \"rather small\")\n\n", cgbd - dbr);
  return 0;
}
