// Fig. 12 — global-model accuracy and total data contribution Sum d_i under
// different gamma. TOS is flat at |N|; DBR's contribution grows with gamma
// and exceeds GCA's (paper: by up to 64%); accuracy tracks contribution.
#include <cstdio>

#include "bench_common.h"
#include "fl/fedavg.h"

using namespace tradefl;

namespace {

/// Trains FedAvg with the given equilibrium fractions and returns accuracy.
double accuracy_at_profile(const game::CoopetitionGame& game,
                           const game::StrategyProfile& profile, bool fast,
                           std::uint64_t seed) {
  const auto concept_spec = fl::DatasetSpec::builtin(fl::DatasetKind::kFmnistLike, seed);
  const std::size_t samples = fast ? 120 : 250;
  std::vector<fl::Dataset> locals;
  locals.reserve(game.size());
  for (game::OrgId i = 0; i < game.size(); ++i) {
    locals.emplace_back(concept_spec.with_sample_seed(seed + i + 1), samples);
  }
  std::vector<fl::FedClient> clients;
  for (game::OrgId i = 0; i < game.size(); ++i) {
    clients.push_back(fl::FedClient{&locals[i], profile[i].data_fraction, seed * 31 + i});
  }
  const fl::Dataset test_set(concept_spec.with_sample_seed(seed + 999), fast ? 200 : 400);
  fl::ModelSpec model;
  model.kind = fl::ModelKind::kMlp;
  model.channels = concept_spec.channels;
  model.height = concept_spec.height;
  model.width = concept_spec.width;
  model.classes = concept_spec.classes;
  model.seed = seed;
  fl::FedAvgOptions options;
  options.rounds = fast ? 4 : 8;
  options.local_epochs = 1;
  return fl::train_fedavg(model, clients, test_set, options).final_accuracy;
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Fig. 12",
                "Sum d_i and trained-model accuracy vs gamma: DBR contributes more "
                "data than GCA (paper: up to +64% at gamma*); TOS is flat at |N| = 10");

  const bool fast = config.get_bool("fast", false);
  const auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  const std::vector<core::Scheme> schemes{core::Scheme::kDbr, core::Scheme::kGca,
                                          core::Scheme::kWpr, core::Scheme::kTos};

  std::vector<std::string> header{"gamma"};
  for (core::Scheme scheme : schemes) {
    header.push_back(std::string(core::scheme_name(scheme)) + " sum_d");
    header.push_back(std::string(core::scheme_name(scheme)) + " acc");
  }
  AsciiTable table(header);
  CsvWriter csv(header);

  double best_ratio = 0.0;
  for (double gamma : {1e-9, 5.12e-9, 1e-8, 5e-8}) {
    game::ExperimentSpec spec;
    spec.params.gamma = gamma;
    const auto game = game::make_experiment_game(spec, seed);
    std::vector<double> row{gamma};
    double dbr_d = 0.0, gca_d = 0.0;
    for (core::Scheme scheme : schemes) {
      const auto result = core::run_scheme(game, scheme);
      const double sum_d = result.total_data_fraction;
      const double accuracy =
          accuracy_at_profile(game, result.solution.profile, fast, seed);
      row.push_back(sum_d);
      row.push_back(accuracy);
      if (scheme == core::Scheme::kDbr) dbr_d = sum_d;
      if (scheme == core::Scheme::kGca) gca_d = sum_d;
    }
    best_ratio = std::max(best_ratio, dbr_d / gca_d - 1.0);
    table.add_row_doubles(row, 5);
    csv.add_row_doubles(row);
  }
  bench::emit(config, "fig12_accuracy_contribution", table, &csv);
  std::printf("max data-contribution increase of DBR over GCA: +%.0f%% (paper: up to +64%%)\n\n",
              100.0 * best_ratio);
  return 0;
}
