// Figs. 13-15 — training loss and accuracy of the global model per
// model-dataset pair under each scheme's equilibrium contributions. DBR
// approaches TOS and beats WPR/GCA/FIP (paper: up to +23.2% accuracy vs GCA
// on MobileNet-SVHN).
#include <cstdio>

#include "bench_common.h"
#include "fl/fedavg.h"

using namespace tradefl;

namespace {

struct Pair {
  fl::ModelKind model;
  fl::DatasetKind dataset;
};

fl::FedAvgResult train_for_profile(const game::CoopetitionGame& game,
                                   const game::StrategyProfile& profile, const Pair& pair,
                                   std::size_t samples, std::size_t rounds,
                                   std::uint64_t seed) {
  const auto concept_spec = fl::DatasetSpec::builtin(pair.dataset, seed);
  std::vector<fl::Dataset> locals;
  locals.reserve(game.size());
  for (game::OrgId i = 0; i < game.size(); ++i) {
    locals.emplace_back(concept_spec.with_sample_seed(seed + i + 1), samples);
  }
  std::vector<fl::FedClient> clients;
  for (game::OrgId i = 0; i < game.size(); ++i) {
    clients.push_back(fl::FedClient{&locals[i], profile[i].data_fraction, seed * 31 + i});
  }
  const fl::Dataset test_set(concept_spec.with_sample_seed(seed + 999), 300);
  fl::ModelSpec model;
  model.kind = pair.model;
  model.channels = concept_spec.channels;
  model.height = concept_spec.height;
  model.width = concept_spec.width;
  model.classes = concept_spec.classes;
  model.seed = seed;
  fl::FedAvgOptions options;
  options.rounds = rounds;
  options.local_epochs = 2;
  options.max_batches_per_epoch = 8;  // bounds client drift across fractions
  return fl::train_fedavg(model, clients, test_set, options);
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Figs. 13-15",
                "training loss/accuracy per model-dataset pair: DBR approaches TOS "
                "and beats WPR/GCA/FIP (paper: up to +23.2% accuracy vs GCA on "
                "MobileNet-SVHN)");

  const bool fast = config.get_bool("fast", false);
  const std::size_t samples = fast ? 80 : static_cast<std::size_t>(config.get_int("samples", 250));
  const std::size_t rounds = fast ? 4 : static_cast<std::size_t>(config.get_int("rounds", 12));
  const auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));

  // The four model-dataset combinations highlighted by the paper's Sec. VI.
  const std::vector<Pair> pairs{
      {fl::ModelKind::kResNet18Lite, fl::DatasetKind::kCifar10Like},
      {fl::ModelKind::kAlexNetLite, fl::DatasetKind::kFmnistLike},
      {fl::ModelKind::kDenseNetLite, fl::DatasetKind::kEurosatLike},
      {fl::ModelKind::kMobileNetLite, fl::DatasetKind::kSvhnLike},
  };
  const std::vector<core::Scheme> schemes{core::Scheme::kDbr, core::Scheme::kWpr,
                                          core::Scheme::kGca, core::Scheme::kFip,
                                          core::Scheme::kTos};

  game::ExperimentSpec spec;  // gamma = gamma*
  const auto game = game::make_experiment_game(spec, seed);
  std::vector<std::pair<core::Scheme, game::StrategyProfile>> profiles;
  for (core::Scheme scheme : schemes) {
    profiles.emplace_back(scheme, core::run_scheme(game, scheme).solution.profile);
  }

  for (const Pair& pair : pairs) {
    std::printf("---- %s on %s ----\n", fl::model_name(pair.model),
                fl::dataset_name(pair.dataset));
    std::vector<std::string> header{"round"};
    for (core::Scheme scheme : schemes) {
      header.push_back(std::string(core::scheme_name(scheme)) + " loss");
      header.push_back(std::string(core::scheme_name(scheme)) + " acc");
    }
    AsciiTable table(header);
    CsvWriter csv(header);
    std::vector<fl::FedAvgResult> results;
    for (const auto& [scheme, profile] : profiles) {
      results.push_back(train_for_profile(game, profile, pair, samples, rounds, seed));
    }
    for (std::size_t r = 0; r < rounds; ++r) {
      std::vector<double> row{static_cast<double>(r + 1)};
      for (const auto& result : results) {
        row.push_back(result.history[r].test_loss);
        row.push_back(result.history[r].test_accuracy);
      }
      table.add_row_doubles(row, 4);
      csv.add_row_doubles(row);
    }
    const std::string name =
        std::string("fig13_15_") + fl::model_name(pair.model);
    bench::emit(config, name, table, &csv);

    const double dbr_acc = results[0].final_accuracy;
    const double gca_acc = results[2].final_accuracy;
    const double tos_acc = results[4].final_accuracy;
    std::printf("final acc: DBR %.3f, GCA %.3f, TOS %.3f -> DBR vs GCA %+.1f%%, "
                "DBR/TOS gap %.3f\n\n",
                dbr_acc, gca_acc, tos_acc,
                gca_acc > 0 ? 100.0 * (dbr_acc / gca_acc - 1.0) : 0.0,
                tos_acc - dbr_acc);
  }
  return 0;
}
