// Fig. 6 — social welfare by scheme. CGBD attains the highest welfare,
// followed by DBR; WPR/GCA/FIP/TOS fall behind.
#include <cstdio>

#include "bench_common.h"

using namespace tradefl;

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Fig. 6", "CGBD attains the highest social welfare, followed by DBR");

  const std::size_t seeds = static_cast<std::size_t>(config.get_int("seeds", 5));
  game::ExperimentSpec spec;
  spec.params.gamma = config.get_double("gamma", spec.params.gamma);

  AsciiTable table({"scheme", "welfare (mean)", "welfare (std)", "data Sum d_i", "P(Omega)"});
  CsvWriter csv({"scheme", "welfare_mean", "welfare_std", "sum_d", "performance"});
  for (core::Scheme scheme : core::all_schemes()) {
    const auto welfare =
        bench::metric_over_seeds(spec, scheme, bench::Metric::kWelfare, seeds);
    const auto data =
        bench::metric_over_seeds(spec, scheme, bench::Metric::kDataFraction, seeds);
    const auto performance =
        bench::metric_over_seeds(spec, scheme, bench::Metric::kPerformance, seeds);
    const auto welfare_stats = bench::replicate(welfare);
    table.add_labeled_row(core::scheme_name(scheme),
                          {welfare_stats.mean, welfare_stats.stddev,
                           bench::replicate(data).mean, bench::replicate(performance).mean},
                          7);
    csv.add_row({core::scheme_name(scheme), format_double(welfare_stats.mean, 10),
                 format_double(welfare_stats.stddev, 10),
                 format_double(bench::replicate(data).mean, 10),
                 format_double(bench::replicate(performance).mean, 10)});
  }
  bench::emit(config, "fig6_social_welfare", table, &csv);
  return 0;
}
