// Fig. 8 — social welfare vs gamma for every scheme. DBR dominates the
// baselines across the sweep; WPR is flat (no redistribution term).
#include "bench_common.h"

using namespace tradefl;

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Fig. 8",
                "DBR achieves the highest welfare across gamma; WPR is insensitive "
                "to gamma");

  const std::size_t seeds = static_cast<std::size_t>(config.get_int("seeds", 3));
  const std::vector<core::Scheme> schemes{core::Scheme::kDbr, core::Scheme::kWpr,
                                          core::Scheme::kGca, core::Scheme::kFip,
                                          core::Scheme::kTos};
  std::vector<std::string> header{"gamma"};
  for (core::Scheme scheme : schemes) header.push_back(core::scheme_name(scheme));
  AsciiTable table(header);
  CsvWriter csv(header);
  for (double gamma : bench::gamma_grid()) {
    game::ExperimentSpec spec;
    spec.params.gamma = gamma;
    std::vector<double> row{gamma};
    for (core::Scheme scheme : schemes) {
      row.push_back(bench::replicate(bench::metric_over_seeds(
                                         spec, scheme, bench::Metric::kWelfare, seeds))
                        .mean);
    }
    table.add_row_doubles(row, 7);
    csv.add_row_doubles(row);
  }
  bench::emit(config, "fig8_gamma_welfare_schemes", table, &csv);
  return 0;
}
