// Table II — experimental parameters. Instantiates the default configuration,
// validates it, and prints both the paper's tabulated values and the derived
// constants this reproduction adds (documented in DESIGN.md §3).
#include <cstdio>

#include "bench_common.h"

using namespace tradefl;

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Table II", "experimental parameters of the Sec. VI simulations");

  game::ExperimentSpec spec;
  if (auto status = spec.params.validate(); !status.ok()) {
    std::fprintf(stderr, "invalid default parameters: %s\n",
                 status.error().to_string().c_str());
    return 1;
  }

  AsciiTable table({"parameter", "paper", "this repo"}, {Align::kLeft, Align::kLeft, Align::kLeft});
  table.add_row({"|N|", "10", std::to_string(spec.org_count)});
  table.add_row({"D_min", "0.01", format_double(spec.params.d_min)});
  table.add_row({"s_i (bits)", "[15, 25] * 1e9",
                 "[" + format_double(spec.data_bits_lo) + ", " + format_double(spec.data_bits_hi) + "]"});
  table.add_row({"|S_i|", "[1000, 2000]",
                 "[" + std::to_string(spec.samples_lo) + ", " + std::to_string(spec.samples_hi) + "]"});
  table.add_row({"p_i", "[500, 2500]",
                 "[" + format_double(spec.profitability_lo) + ", " +
                     format_double(spec.profitability_hi) + "]"});
  table.add_row({"kappa", "1e-27", format_double(spec.params.kappa)});
  table.add_row({"F_i^(m)", "3-5 GHz",
                 "[" + format_double(spec.fmax_lo / 1e9) + ", " + format_double(spec.fmax_hi / 1e9) +
                     "] GHz, m=" + std::to_string(spec.freq_levels) +
                     " levels from " + format_double(spec.freq_base / 1e9) + " GHz"});
  table.add_row({"gamma (default)", "5.12e-9 (gamma*)", format_double(spec.params.gamma)});
  table.add_row({"lambda", "(unstated)", format_double(spec.params.lambda)});
  table.add_row({"omega_e", "(unstated)", format_double(spec.params.omega_e)});
  table.add_row({"tau", "(unstated)", format_double(spec.params.tau) + " s"});
  table.add_row({"eta_i (cycles/bit)", "(unstated)",
                 "[" + format_double(spec.cycles_per_bit_lo) + ", " +
                     format_double(spec.cycles_per_bit_hi) + "]"});
  table.add_row({"T^(1), T^(3)", "(unstated)",
                 "[" + format_double(spec.comm_time_lo) + ", " + format_double(spec.comm_time_hi) +
                     "] s"});
  table.add_row({"A(0)", "(unstated)", format_double(spec.params.a0)});
  table.add_row({"G (epochs)", "(unstated)", format_double(spec.params.epochs_g)});
  table.add_row({"rho mean", "(swept in Figs. 10-11)", format_double(spec.rho_mean)});
  bench::emit(config, "table2_params", table);

  // Derived sanity numbers for the default instance.
  const auto game = game::make_experiment_game(spec, 42);
  AsciiTable derived({"derived quantity", "value"}, {Align::kLeft, Align::kRight});
  derived.add_row({"min z_i (Theorem 1 guard)",
                   format_double(*std::min_element(game.weights_z().begin(),
                                                   game.weights_z().end()))});
  derived.add_row({"rho guard scale", format_double(game.rho_guard_scale())});
  derived.add_row({"P(Omega) at all-D_min",
                   format_double(game.performance(game.minimal_profile()))});
  bench::emit(config, "table2_derived", derived);
  return 0;
}
