// Shared plumbing for the reproduction harness: every bench binary prints a
// banner naming the table/figure it regenerates, accepts key=value overrides
// on the command line, and renders its series as ASCII tables (optionally
// CSV). Conventions:
//   * `seeds=N` — number of random game instances averaged (default 3);
//   * `fast=1`  — shrink the FL workloads for quick smoke runs;
//   * `csv=DIR` — also write each series to DIR/<bench>.csv.
//
// parse_args also enables the metrics registry (obs::set_enabled), so every
// bench records the instrumented pipelines' telemetry; write_manifest dumps
// the snapshot as a run manifest JSON next to the CSVs (csv=DIR runs only).
#pragma once

#include <string>
#include <vector>

#include "common/config.h"
#include "common/csv.h"
#include "common/result.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/mechanism.h"
#include "game/game_factory.h"

namespace tradefl::bench {

/// Parses argv into a Config (ignores flags starting with "--" so that
/// google-benchmark's own flags pass through).
Config parse_args(int argc, char** argv);

/// Prints the standard banner.
void banner(const std::string& experiment_id, const std::string& claim);

/// Prints a table and optionally writes a CSV next to it.
void emit(const Config& config, const std::string& name, const AsciiTable& table,
          const CsvWriter* csv = nullptr);

/// Checked whole-file text writer for bench artifacts (manifests, BENCH_*
/// JSON): typed Error{"io", ...} on open or short write, never a silent
/// truncation. Bench mains must propagate the failure as a nonzero exit.
[[nodiscard]] Status write_text_file(const std::string& path, const std::string& text);

/// Writes <DIR>/<name>.manifest.json (csv=DIR runs; ok no-op otherwise): the
/// bench's config entries plus the current metrics snapshot, so every figure
/// CSV carries the telemetry of the run that produced it. An I/O failure is
/// reported to stderr and returned; callers turn it into a nonzero exit.
[[nodiscard]] Status write_manifest(const Config& config, const std::string& name);

/// Mean of a metric across seeded replications of the experiment game.
struct SweepStats {
  double mean = 0.0;
  double stddev = 0.0;
};
SweepStats replicate(const std::vector<double>& values);

/// Runs one scheme on `spec` for each seed and returns the requested metric.
enum class Metric { kWelfare, kDamage, kDataFraction, kPotential, kPerformance };
std::vector<double> metric_over_seeds(const game::ExperimentSpec& spec, core::Scheme scheme,
                                      Metric metric, std::size_t seeds,
                                      std::uint64_t seed0 = 42);

double extract_metric(const core::MechanismResult& result, Metric metric);

/// Default gamma grid of the Figs. 7-12 sweeps.
std::vector<double> gamma_grid();

}  // namespace tradefl::bench
