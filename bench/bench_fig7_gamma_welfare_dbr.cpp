// Fig. 7 — impact of the incentive intensity gamma on social welfare under
// DBR: increasing gamma does NOT always improve welfare (drops at large
// gamma as organizations over-invest regardless of training overhead).
#include <cstdio>

#include "bench_common.h"

using namespace tradefl;

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Fig. 7",
                "welfare under DBR is non-monotone in gamma; it drops once gamma "
                "exceeds the optimum (paper: drops at 5e-8 and 1e-7)");

  const std::size_t seeds = static_cast<std::size_t>(config.get_int("seeds", 5));
  AsciiTable table({"gamma", "welfare (mean)", "welfare (std)", "Sum d_i"});
  CsvWriter csv({"gamma", "welfare_mean", "welfare_std", "sum_d"});
  double best_welfare = -1e300, best_gamma = 0.0, last_welfare = 0.0;
  for (double gamma : bench::gamma_grid()) {
    game::ExperimentSpec spec;
    spec.params.gamma = gamma;
    const auto welfare =
        bench::metric_over_seeds(spec, core::Scheme::kDbr, bench::Metric::kWelfare, seeds);
    const auto data =
        bench::metric_over_seeds(spec, core::Scheme::kDbr, bench::Metric::kDataFraction, seeds);
    const auto stats = bench::replicate(welfare);
    table.add_labeled_row(format_double(gamma, 4),
                          {stats.mean, stats.stddev, bench::replicate(data).mean}, 7);
    csv.add_row_doubles({gamma, stats.mean, stats.stddev, bench::replicate(data).mean});
    if (stats.mean > best_welfare) {
      best_welfare = stats.mean;
      best_gamma = gamma;
    }
    last_welfare = stats.mean;
  }
  bench::emit(config, "fig7_gamma_welfare_dbr", table, &csv);
  std::printf("welfare peaks at gamma* = %.3g (%.1f) and falls to %.1f at gamma = 1e-7\n"
              "(paper: peak 8582.7 at 5.12e-9, drop to 6891.7)\n\n",
              best_gamma, best_welfare, last_welfare);
  return 0;
}
