// Fig. 10 — welfare vs gamma for several competition intensities mu
// (rho ~ N(mu, (mu/5)^2)): welfare surges to its maximum at gamma* then
// drops (non-monotone), and higher mu lowers welfare.
#include <cstdio>

#include "bench_common.h"

using namespace tradefl;

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Fig. 10",
                "welfare peaks at gamma* then drops; larger competition intensity mu "
                "lowers welfare (paper: peak 8582.7 at gamma*=5.12e-9, drop to 6891.7)");

  const std::size_t seeds = static_cast<std::size_t>(config.get_int("seeds", 3));
  const std::vector<double> mus{0.02, 0.05, 0.08};
  std::vector<std::string> header{"gamma"};
  for (double mu : mus) header.push_back("mu=" + format_double(mu));
  AsciiTable table(header);
  CsvWriter csv(header);

  std::vector<double> peak(mus.size(), -1e300);
  std::vector<double> peak_gamma(mus.size(), 0.0);
  std::vector<double> final_welfare(mus.size(), 0.0);
  for (double gamma : bench::gamma_grid()) {
    std::vector<double> row{gamma};
    for (std::size_t m = 0; m < mus.size(); ++m) {
      game::ExperimentSpec spec;
      spec.params.gamma = gamma;
      spec.rho_mean = mus[m];
      const double welfare =
          bench::replicate(
              bench::metric_over_seeds(spec, core::Scheme::kDbr, bench::Metric::kWelfare, seeds))
              .mean;
      row.push_back(welfare);
      if (welfare > peak[m]) {
        peak[m] = welfare;
        peak_gamma[m] = gamma;
      }
      final_welfare[m] = welfare;
    }
    table.add_row_doubles(row, 7);
    csv.add_row_doubles(row);
  }
  bench::emit(config, "fig10_gamma_mu_welfare", table, &csv);

  AsciiTable summary({"mu", "gamma*", "peak welfare", "welfare at 1e-7"});
  for (std::size_t m = 0; m < mus.size(); ++m) {
    summary.add_row_doubles({mus[m], peak_gamma[m], peak[m], final_welfare[m]}, 6);
  }
  bench::emit(config, "fig10_summary", summary);

  // Check the ordering claim: higher mu => lower peak welfare.
  const bool ordering = peak[0] >= peak[1] && peak[1] >= peak[2];
  std::printf("higher mu lowers welfare: %s\n\n", ordering ? "CONFIRMED" : "NOT OBSERVED");
  return 0;
}
