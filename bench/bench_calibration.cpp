// Ablations on the design choices DESIGN.md calls out:
//  * sensitivity of the equilibrium to lambda (the d-vs-f magnitude knob);
//  * the exact-potential correction vs the paper-literal Eq. (15) — identity
//    deviation of both forms;
//  * robustness of the mechanism across accuracy-model families ("no
//    specific functional form" claim);
//  * asymmetric-rho behaviour (budget balance no longer exact; quantified).
#include <cstdio>

#include "bench_common.h"
#include "game/potential.h"

using namespace tradefl;

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Ablations: calibration & design choices",
                "lambda sensitivity, exact vs paper potential, accuracy-model "
                "robustness, asymmetric-rho budget imbalance");

  // ---- lambda sensitivity. ----
  {
    AsciiTable table({"lambda", "welfare", "Sum d_i", "avg f (GHz)"});
    CsvWriter csv({"lambda", "welfare", "sum_d", "avg_f_ghz"});
    for (double lambda : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      game::ExperimentSpec spec;
      spec.params.lambda = lambda;
      const auto game = game::make_experiment_game(spec, 42);
      const auto result = core::run_scheme(game, core::Scheme::kDbr);
      double avg_f = 0.0;
      for (game::OrgId i = 0; i < game.size(); ++i) {
        avg_f += game.frequency(i, result.solution.profile[i]) / 1e9;
      }
      avg_f /= static_cast<double>(game.size());
      table.add_row_doubles({lambda, result.welfare, result.total_data_fraction, avg_f}, 6);
      csv.add_row_doubles({lambda, result.welfare, result.total_data_fraction, avg_f});
    }
    bench::emit(config, "ablation_lambda", table, &csv);
  }

  // ---- exact vs paper potential identity. ----
  {
    AsciiTable table({"gamma", "exact-potential max rel err", "Eq.(15) max rel err"});
    for (double gamma : {1e-9, 5.12e-9, 5e-8}) {
      game::ExperimentSpec spec;
      spec.params.gamma = gamma;
      const auto game = game::make_experiment_game(spec, 42);
      const auto exact =
          game::check_weighted_potential_identity(game, game.minimal_profile(), 400, 9);
      const auto paper =
          game::check_paper_potential_identity(game, game.minimal_profile(), 400, 9);
      table.add_row_doubles({gamma, exact.max_rel_error, paper.max_rel_error}, 4);
    }
    bench::emit(config, "ablation_potential_forms", table);
    std::printf("(the exact form is what CGBD maximizes; see DESIGN.md §7)\n\n");
  }

  // ---- accuracy-model robustness. ----
  {
    AsciiTable table({"accuracy model", "welfare", "Sum d_i", "NE gain"});
    auto base = game::make_default_game(42);
    const std::vector<std::pair<std::string, game::AccuracyModelPtr>> models{
        {"sqrt (footnote 7)",
         std::make_shared<const game::SqrtAccuracyModel>(10.0, 0.75)},
        {"power-law a=0.5",
         std::make_shared<const game::PowerLawAccuracyModel>(0.75, 40.0, 0.5)},
        {"exponential",
         std::make_shared<const game::ExponentialAccuracyModel>(0.75, 80.0)},
    };
    for (const auto& [name, model] : models) {
      game::CoopetitionGame game(base.orgs(), base.rho(), model, base.params());
      const auto result = core::run_scheme(game, core::Scheme::kDbr);
      table.add_labeled_row(name,
                            {result.welfare, result.total_data_fraction,
                             game.max_unilateral_gain(result.solution.profile)},
                            6);
    }
    bench::emit(config, "ablation_accuracy_models", table);
  }

  // ---- asymmetric rho: budget balance quantified. ----
  {
    auto base = game::make_toy_game();
    auto rho = game::CompetitionMatrix::from_rows(
        {{0.0, 0.08, 0.01}, {0.02, 0.0, 0.06}, {0.09, 0.03, 0.0}});
    game::CoopetitionGame game(base.orgs(), rho, base.accuracy_ptr(), base.params());
    const auto result = core::run_scheme(game, core::Scheme::kDbr);
    double sum_r = 0.0;
    for (game::OrgId i = 0; i < game.size(); ++i) {
      sum_r += game.redistribution(i, result.solution.profile);
    }
    std::printf("asymmetric rho: Sum R_i = %.6g (symmetric rho gives exactly 0; the\n"
                "paper's BB property relies on symmetry of Eq. 9's pairing)\n\n",
                sum_r);
  }
  return 0;
}
