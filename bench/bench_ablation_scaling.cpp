// Ablation — computational complexity (Lemma 4 / Theorem 2 CE): CGBD's
// master traversal grows as m^|N| while DBR stays O(T L |N| m). Measures
// wall-clock and traversal sizes across |N| and m, plus solution-quality
// parity between the two algorithms.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "game/potential.h"

using namespace tradefl;

namespace {

game::CoopetitionGame sized_game(std::size_t n, std::size_t m, std::uint64_t seed = 42) {
  game::ExperimentSpec spec;
  spec.org_count = n;
  spec.freq_levels = m;
  return game::make_experiment_game(spec, seed);
}

void BM_CgbdByOrgCount(benchmark::State& state) {
  const auto game = sized_game(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_cgbd(game));
  }
}
BENCHMARK(BM_CgbdByOrgCount)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_DbrByOrgCount(benchmark::State& state) {
  const auto game = sized_game(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_dbr(game));
  }
}
BENCHMARK(BM_DbrByOrgCount)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_BestResponseSingleOrg(benchmark::State& state) {
  const auto game = sized_game(10, 3);
  const auto profile = game.minimal_profile();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::best_response(game, 0, profile));
  }
}
BENCHMARK(BM_BestResponseSingleOrg);

}  // namespace

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  bench::banner("Ablation: algorithm scaling",
                "CGBD is O(I m^|N|) via the master traversal; DBR is O(T L |N| m) "
                "(Lemma 4 and Sec. V-D) — with matching solution quality");

  AsciiTable table({"|N|", "m", "CGBD ms", "CGBD tuples", "DBR ms", "DBR rounds",
                    "potential gap (CGBD - DBR)"});
  CsvWriter csv({"n", "m", "cgbd_ms", "cgbd_tuples", "dbr_ms", "dbr_rounds", "gap"});
  for (std::size_t n : {4u, 6u, 8u, 10u}) {
    for (std::size_t m : {2u, 3u, 4u}) {
      const auto game = sized_game(n, m);
      Stopwatch cgbd_watch;
      const auto cgbd = core::run_cgbd(game);
      const double cgbd_ms = cgbd_watch.elapsed_millis();
      Stopwatch dbr_watch;
      const auto dbr = core::run_dbr(game);
      const double dbr_ms = dbr_watch.elapsed_millis();
      const double gap = game::potential(game, cgbd.profile) -
                         game::potential(game, dbr.profile);
      table.add_row_doubles({static_cast<double>(n), static_cast<double>(m), cgbd_ms,
                             cgbd.diagnostic("master_tuples"), dbr_ms,
                             static_cast<double>(dbr.iterations), gap},
                            5);
      csv.add_row_doubles({static_cast<double>(n), static_cast<double>(m), cgbd_ms,
                           cgbd.diagnostic("master_tuples"), dbr_ms,
                           static_cast<double>(dbr.iterations), gap});
    }
  }
  bench::emit(config, "ablation_scaling", table, &csv);

  // DBR alone scales to sizes where the CGBD traversal is astronomically
  // large — the reason the paper proposes it for real CFL deployments.
  AsciiTable large({"|N|", "DBR ms", "rounds", "NE gain (should be ~0)"});
  for (std::size_t n : {20u, 40u}) {
    const auto game = sized_game(n, 3);
    Stopwatch watch;
    const auto dbr = core::run_dbr(game);
    large.add_row_doubles({static_cast<double>(n), watch.elapsed_millis(),
                           static_cast<double>(dbr.iterations),
                           game.max_unilateral_gain(dbr.profile)},
                          5);
  }
  bench::emit(config, "ablation_scaling_large", large);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
